// Byzantine-robustness suite: scripted adversary scheduling in the fault
// injector, model sanitation bounds, and end-to-end defended-vs-undefended
// poisoning runs — including the two bit-identity contracts (armed-but-idle
// plans and zero-adversary runs with the full defense stack enabled) and
// serial == parallel determinism with adversaries present.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "ml/sanitize.h"
#include "p2pdmt/byzantine.h"
#include "p2pdmt/experiment.h"
#include "p2psim/fault.h"

namespace p2pdt {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Adversary scheduling in the fault injector.

struct Fixture {
  Simulator sim;
  PhysicalNetwork net;
  FaultInjector fault;

  explicit Fixture(std::size_t nodes) : net(sim, {}), fault(sim, net) {
    net.AddNodes(nodes);
  }
};

TEST(AdversaryDirectoryTest, HonestBeforeArmAndOutsideWindow) {
  Fixture f(4);
  f.fault.AddAdversary(2, AdversaryBehavior::kLabelFlip, 5.0, 10.0);
  // Unarmed plans answer honest and install nothing.
  EXPECT_EQ(f.fault.BehaviorAt(2, 6.0), AdversaryBehavior::kHonest);
  EXPECT_EQ(f.net.adversaries(), nullptr);

  f.fault.Arm();
  EXPECT_EQ(f.net.adversaries(), &f.fault);
  EXPECT_EQ(f.fault.num_adversaries(), 1u);
  // Sleeper semantics: honest before the window opens, malicious inside
  // [start, end), honest again after.
  EXPECT_EQ(f.fault.BehaviorAt(2, 4.9), AdversaryBehavior::kHonest);
  EXPECT_EQ(f.fault.BehaviorAt(2, 5.0), AdversaryBehavior::kLabelFlip);
  EXPECT_EQ(f.fault.BehaviorAt(2, 9.9), AdversaryBehavior::kLabelFlip);
  EXPECT_EQ(f.fault.BehaviorAt(2, 10.0), AdversaryBehavior::kHonest);
  // Unscripted nodes are honest at every time.
  EXPECT_EQ(f.fault.BehaviorAt(3, 6.0), AdversaryBehavior::kHonest);
}

TEST(AdversaryDirectoryTest, NoAdversariesInstallsNoDirectory) {
  Fixture f(4);
  f.fault.AddBurstLoss(1.0, 2.0, 1.0);
  f.fault.Arm();
  EXPECT_EQ(f.net.adversaries(), nullptr);
}

TEST(AdversaryDirectoryTest, CorruptionSeedsStablePerNode) {
  Fixture a(4);
  Fixture b(4);
  // Seeds derive from the plan seed and node id only — identical across
  // injectors and calls (pure queries), distinct across nodes.
  EXPECT_EQ(a.fault.CorruptionSeed(1), b.fault.CorruptionSeed(1));
  EXPECT_EQ(a.fault.CorruptionSeed(1), a.fault.CorruptionSeed(1));
  EXPECT_NE(a.fault.CorruptionSeed(1), a.fault.CorruptionSeed(2));
}

TEST(AdversaryPlanTest, DeterministicFractionalSelection) {
  FaultPlanSpec a = MakeAdversaryPlan(10, AdversaryBehavior::kLabelFlip, 0.3,
                                      /*seed=*/777);
  ASSERT_EQ(a.adversaries.size(), 3u);
  for (const auto& adv : a.adversaries) {
    EXPECT_EQ(adv.behavior, AdversaryBehavior::kLabelFlip);
    EXPECT_LT(adv.node, 10u);
  }
  FaultPlanSpec b = MakeAdversaryPlan(10, AdversaryBehavior::kLabelFlip, 0.3,
                                      /*seed=*/777);
  ASSERT_EQ(b.adversaries.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a.adversaries[i].node, b.adversaries[i].node);
  }
  // A positive fraction always poisons at least one peer.
  EXPECT_EQ(MakeAdversaryPlan(10, AdversaryBehavior::kVoteSpam, 0.01, 1)
                .adversaries.size(),
            1u);
  // Honest behavior or zero fraction scripts nothing.
  EXPECT_TRUE(MakeAdversaryPlan(10, AdversaryBehavior::kHonest, 0.5, 1)
                  .empty());
  EXPECT_TRUE(MakeAdversaryPlan(10, AdversaryBehavior::kLabelFlip, 0.0, 1)
                  .empty());
}

// ---------------------------------------------------------------------------
// Sanitation bounds.

TEST(SanitizeTest, RejectsNonFiniteAndOversizedValues) {
  SanitizeOptions opts;
  EXPECT_EQ(SanitizeVector(SparseVector::FromPairs({{3, 1.0}}), opts),
            ModelRejectReason::kNone);
  EXPECT_EQ(SanitizeVector(SparseVector::FromPairs({{3, kNan}}), opts),
            ModelRejectReason::kNonFinite);
  EXPECT_EQ(SanitizeVector(SparseVector::FromPairs({{3, kInf}}), opts),
            ModelRejectReason::kNonFinite);
  EXPECT_EQ(SanitizeVector(SparseVector::FromPairs({{3, 1.0e30}}), opts),
            ModelRejectReason::kNormBound);
  EXPECT_EQ(SanitizeVector(
                SparseVector::FromPairs({{opts.max_dimension, 1.0}}), opts),
            ModelRejectReason::kDimension);

  EXPECT_EQ(SanitizeLinear(LinearSvmModel(SparseVector(), kNan), opts),
            ModelRejectReason::kNonFinite);
}

TEST(SanitizeTest, KernelModelBounds) {
  SanitizeOptions opts;
  auto make = [](double alpha) {
    std::vector<SupportVector> svs;
    SupportVector sv;
    sv.x = SparseVector::FromPairs({{1, 1.0}});
    sv.y = 1.0;
    sv.alpha = alpha;
    svs.push_back(sv);
    return KernelSvmModel(Kernel::Linear(), std::move(svs), 0.0);
  };
  EXPECT_EQ(SanitizeKernelModel(make(0.5), opts), ModelRejectReason::kNone);
  EXPECT_EQ(SanitizeKernelModel(make(kNan), opts),
            ModelRejectReason::kNonFinite);
  EXPECT_EQ(SanitizeKernelModel(make(1.0e9), opts),
            ModelRejectReason::kNormBound);

  opts.max_support_vectors = 0;
  EXPECT_EQ(SanitizeKernelModel(make(0.5), opts),
            ModelRejectReason::kOversized);
}

TEST(SanitizeTest, OneVsAllTagMismatchAndCentroidCaps) {
  SanitizeOptions opts;
  std::vector<std::unique_ptr<BinaryClassifier>> models;
  models.push_back(std::make_unique<ConstantClassifier>(1.0));
  models.push_back(std::make_unique<ConstantClassifier>(-1.0));
  OneVsAllModel model(std::move(models));
  EXPECT_EQ(SanitizeOneVsAll(model, 2, opts), ModelRejectReason::kNone);
  EXPECT_EQ(SanitizeOneVsAll(model, 5, opts), ModelRejectReason::kTagMismatch);
  // Truncated uploads (fewer per-tag models than the corpus has tags) are
  // the dimension-mismatch adversary's signature.
  EXPECT_EQ(SanitizeOneVsAll(model, 1, opts), ModelRejectReason::kTagMismatch);

  std::vector<SparseVector> centroids = {SparseVector::FromPairs({{1, 1.0}})};
  EXPECT_EQ(SanitizeCentroids(centroids, opts), ModelRejectReason::kNone);
  centroids.push_back(SparseVector::FromPairs({{2, kNan}}));
  EXPECT_EQ(SanitizeCentroids(centroids, opts), ModelRejectReason::kNonFinite);
  opts.max_centroids = 1;
  EXPECT_EQ(SanitizeCentroids(centroids, opts), ModelRejectReason::kOversized);
}

TEST(SanitizeTest, ClampAccuracyFixesTrustHole) {
  // The PACE trust-hole fix: self-reported accuracies are clamped at every
  // receipt, so NaN (poisons every weighted vote) and out-of-range claims
  // cannot leak into vote weights. Identity on every honest value.
  EXPECT_DOUBLE_EQ(ClampAccuracy(kNan), 0.0);
  EXPECT_DOUBLE_EQ(ClampAccuracy(-0.25), 0.0);
  EXPECT_DOUBLE_EQ(ClampAccuracy(1.5), 1.0);
  EXPECT_DOUBLE_EQ(ClampAccuracy(kInf), 1.0);
  EXPECT_DOUBLE_EQ(ClampAccuracy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ClampAccuracy(0.73), 0.73);
  EXPECT_DOUBLE_EQ(ClampAccuracy(1.0), 1.0);
}

TEST(SanitizeTest, RejectedModelStatusCarriesReason) {
  Status s = RejectedModelStatus(ModelRejectReason::kNonFinite);
  EXPECT_EQ(s.code(), StatusCode::kRejectedModel);
  EXPECT_NE(s.ToString().find("non_finite"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end poisoning runs. Small IID corpus: the sweep isolates adversary
// effect from data heterogeneity, and IID holdouts keep every contributor
// pair evaluable by cross-validation (see DESIGN.md §10).

const VectorizedCorpus& Corpus() {
  static const VectorizedCorpus corpus = [] {
    CorpusOptions opt;
    opt.num_users = 10;
    opt.min_docs_per_user = 30;
    opt.max_docs_per_user = 40;
    opt.num_tags = 5;
    opt.vocabulary_size = 1000;
    opt.seed = 4242;
    return std::move(MakeVectorizedCorpus(opt)).value();
  }();
  return corpus;
}

ExperimentOptions BaseOptions(AlgorithmType algo, bool defended) {
  ExperimentOptions opt;
  opt.env.num_peers = 10;
  opt.algorithm = algo;
  opt.max_test_documents = 40;
  opt.distribution.cls = ClassDistribution::kIid;
  opt.cempar.regions_per_tag = 3;  // >= 3 votes for the median trim
  opt.cempar.sanitize.enabled = defended;
  opt.pace.sanitize.enabled = defended;
  opt.cempar.reputation.enabled = defended;
  opt.pace.reputation.enabled = defended;
  return opt;
}

ExperimentResult RunWith(AlgorithmType algo, bool defended,
                         FaultPlanSpec plan = {},
                         std::size_t num_threads = 0) {
  ExperimentOptions opt = BaseOptions(algo, defended);
  opt.env.fault = std::move(plan);
  opt.cempar.num_threads = num_threads;
  opt.pace.num_threads = num_threads;
  Result<ExperimentResult> r = RunExperiment(Corpus(), opt);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

/// Cached clean-run baselines (one per algorithm and arm).
const ExperimentResult& Clean(AlgorithmType algo, bool defended) {
  static ExperimentResult cache[2][2];
  static bool have[2][2] = {{false, false}, {false, false}};
  int a = algo == AlgorithmType::kCempar ? 0 : 1;
  int d = defended ? 1 : 0;
  if (!have[a][d]) {
    cache[a][d] = RunWith(algo, defended);
    have[a][d] = true;
  }
  return cache[a][d];
}

void ExpectBitIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_DOUBLE_EQ(a.metrics.micro_f1, b.metrics.micro_f1);
  EXPECT_DOUBLE_EQ(a.metrics.macro_f1, b.metrics.macro_f1);
  EXPECT_EQ(a.train_bytes, b.train_bytes);
  EXPECT_EQ(a.predict_bytes, b.predict_bytes);
  EXPECT_DOUBLE_EQ(a.train_sim_seconds, b.train_sim_seconds);
}

TEST(ByzantineE2eTest, FullDefenseIsBitIdenticalWithoutAdversaries) {
  // Acceptance bar: 0 adversaries + the whole defense stack enabled changes
  // nothing — F1, traffic and simulated time are bit-identical, because
  // every defense is a gate that never triggers for honest peers.
  for (AlgorithmType algo : {AlgorithmType::kCempar, AlgorithmType::kPace}) {
    ExpectBitIdentical(Clean(algo, true), Clean(algo, false));
  }
  EXPECT_EQ(Clean(AlgorithmType::kCempar, true).models_rejected, 0u);
  EXPECT_EQ(Clean(AlgorithmType::kPace, true).quarantined_pairs, 0u);
}

TEST(ByzantineE2eTest, ArmedButIdleSleeperIsBitIdentical) {
  // A sleeper whose window never opens during the run must leave the whole
  // simulation untouched, even though the plan is armed and the directory
  // installed.
  FaultPlanSpec plan =
      MakeAdversaryPlan(10, AdversaryBehavior::kGarbageModel, 0.3, 777);
  for (auto& adv : plan.adversaries) adv.start = 1.0e8;
  ExperimentResult sleeper = RunWith(AlgorithmType::kCempar, true, plan);
  ExpectBitIdentical(Clean(AlgorithmType::kCempar, true), sleeper);
  EXPECT_EQ(sleeper.models_rejected, 0u);
}

TEST(ByzantineE2eTest, CemparDefenseRecoversLabelFlip) {
  FaultPlanSpec plan =
      MakeAdversaryPlan(10, AdversaryBehavior::kLabelFlip, 0.3, 777);
  ExperimentResult defended = RunWith(AlgorithmType::kCempar, true, plan);
  ExperimentResult undefended = RunWith(AlgorithmType::kCempar, false, plan);
  const ExperimentResult& clean = Clean(AlgorithmType::kCempar, true);

  // Acceptance: <= 5-point macro-F1 drop defended, strictly worse without.
  EXPECT_GE(defended.metrics.macro_f1, clean.metrics.macro_f1 - 0.05);
  EXPECT_GT(defended.metrics.macro_f1, undefended.metrics.macro_f1);
  // The defense visibly engaged: distrusted uploads refused, pairs
  // quarantined, trust observed.
  EXPECT_GT(defended.models_rejected, 0u);
  EXPECT_GT(defended.quarantined_pairs, 0u);
  EXPECT_GT(defended.trust_observations, 0u);
  EXPECT_EQ(undefended.models_rejected, 0u);
}

TEST(ByzantineE2eTest, SanitationRejectsGarbageModels) {
  FaultPlanSpec plan =
      MakeAdversaryPlan(10, AdversaryBehavior::kGarbageModel, 0.3, 777);
  for (AlgorithmType algo : {AlgorithmType::kCempar, AlgorithmType::kPace}) {
    ExperimentResult defended = RunWith(algo, true, plan);
    ExperimentResult undefended = RunWith(algo, false, plan);
    const ExperimentResult& clean = Clean(algo, true);
    EXPECT_GE(defended.metrics.macro_f1, clean.metrics.macro_f1 - 0.05)
        << AlgorithmTypeToString(algo);
    EXPECT_GT(defended.metrics.macro_f1, undefended.metrics.macro_f1)
        << AlgorithmTypeToString(algo);
    EXPECT_GT(defended.models_rejected, 0u) << AlgorithmTypeToString(algo);
  }
}

TEST(ByzantineE2eTest, PaceQuarantinesFlippedContributors) {
  FaultPlanSpec plan =
      MakeAdversaryPlan(10, AdversaryBehavior::kLabelFlip, 0.3, 777);
  ExperimentResult defended = RunWith(AlgorithmType::kPace, true, plan);
  const ExperimentResult& clean = Clean(AlgorithmType::kPace, true);
  EXPECT_GE(defended.metrics.macro_f1, clean.metrics.macro_f1 - 0.05);
  EXPECT_GT(defended.quarantined_pairs, 0u);
}

TEST(ByzantineE2eTest, SerialEqualsParallelWithAdversaries) {
  // Determinism survives the adversarial path: corruption seeds key off
  // plan identity, trust updates run on the driver thread, and surviving
  // votes are summed in arrival order.
  FaultPlanSpec plan =
      MakeAdversaryPlan(10, AdversaryBehavior::kLabelFlip, 0.2, 777);
  FaultPlanSpec garbage =
      MakeAdversaryPlan(10, AdversaryBehavior::kGarbageModel, 0.2, 778);
  plan.adversaries.insert(plan.adversaries.end(), garbage.adversaries.begin(),
                          garbage.adversaries.end());
  for (AlgorithmType algo : {AlgorithmType::kCempar, AlgorithmType::kPace}) {
    ExperimentResult serial = RunWith(algo, true, plan, /*num_threads=*/1);
    ExperimentResult parallel = RunWith(algo, true, plan, /*num_threads=*/4);
    ExpectBitIdentical(serial, parallel);
    EXPECT_EQ(serial.models_rejected, parallel.models_rejected);
    EXPECT_EQ(serial.quarantined_pairs, parallel.quarantined_pairs);
  }
}

}  // namespace
}  // namespace p2pdt
