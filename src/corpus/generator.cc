#include "corpus/generator.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "text/stopwords.h"

namespace p2pdt {

namespace corpus_internal {

std::vector<std::string> MakeWordList(std::size_t count, Rng& rng,
                                      const std::string& prefix) {
  static const char* kSyllables[] = {
      "ta", "ri", "mo", "ken", "lo",  "su",  "ve", "na",  "pi", "dor",
      "ga", "le", "shi", "ran", "tu", "bel", "ko", "mi",  "za", "fen",
      "cu", "bra", "del", "vo", "ha", "ser", "ne", "qua", "li", "tor",
      "pa", "gre", "ni",  "sta", "re", "mu", "jo", "wen", "ce", "dal"};
  constexpr std::size_t kNumSyllables =
      sizeof(kSyllables) / sizeof(kSyllables[0]);

  std::unordered_set<std::string> seen;
  std::vector<std::string> words;
  words.reserve(count);
  while (words.size() < count) {
    std::size_t syllables = 2 + rng.NextU64(3);  // 2..4
    std::string w = prefix;
    for (std::size_t s = 0; s < syllables; ++s) {
      w += kSyllables[rng.NextU64(kNumSyllables)];
    }
    if (seen.insert(w).second) words.push_back(std::move(w));
  }
  return words;
}

}  // namespace corpus_internal

namespace {

/// Inflectional endings the Porter stemmer strips; applied at render time
/// so stemming has real work to do.
const char* kInflections[] = {"s", "ing", "ed", "er", "ness", "ation"};

std::string RenderText(const std::vector<std::string>& content_words,
                       const CorpusOptions& options, Rng& rng) {
  const auto& stops = StopWordFilter::DefaultEnglishStopWords();
  std::string text;
  std::size_t words_in_sentence = 0;
  std::size_t sentence_target = 6 + rng.NextU64(9);
  bool sentence_start = true;

  auto append_word = [&](const std::string& w, bool capitalize) {
    if (!text.empty() && !sentence_start) text += ' ';
    if (sentence_start && !text.empty()) text += ' ';
    std::size_t at = text.size();
    text += w;
    if (capitalize && at < text.size()) {
      text[at] = static_cast<char>(std::toupper(
          static_cast<unsigned char>(text[at])));
    }
    sentence_start = false;
  };

  for (const std::string& base : content_words) {
    // Optional stop word first (filtered out later by the pipeline).
    if (rng.Bernoulli(options.stop_word_probability)) {
      append_word(stops[rng.NextU64(stops.size())], sentence_start);
      ++words_in_sentence;
    }
    std::string w = base;
    if (rng.Bernoulli(options.inflection_probability)) {
      w += kInflections[rng.NextU64(sizeof(kInflections) /
                                    sizeof(kInflections[0]))];
    }
    append_word(w, sentence_start);
    if (++words_in_sentence >= sentence_target) {
      text += '.';
      words_in_sentence = 0;
      sentence_target = 6 + rng.NextU64(9);
      sentence_start = true;
    }
  }
  if (!text.empty() && text.back() != '.') text += '.';
  return text;
}

}  // namespace

Result<GeneratedCorpus> GenerateCorpus(const CorpusOptions& options) {
  if (options.num_users == 0 || options.num_tags == 0 ||
      options.vocabulary_size == 0) {
    return Status::InvalidArgument(
        "corpus requires users, tags and vocabulary");
  }
  if (options.min_docs_per_user > options.max_docs_per_user ||
      options.min_doc_words > options.max_doc_words) {
    return Status::InvalidArgument("corpus min/max ranges inverted");
  }
  if (options.topic_words_per_tag > options.vocabulary_size) {
    return Status::InvalidArgument(
        "topic_words_per_tag exceeds vocabulary_size");
  }

  Rng rng(options.seed);
  GeneratedCorpus corpus;

  // Vocabulary and (disjoint) tag names. The "xq" prefix guarantees tag
  // names never collide with document words — per the paper, tags need not
  // occur in the documents at all.
  std::vector<std::string> vocab =
      corpus_internal::MakeWordList(options.vocabulary_size, rng);
  corpus.tag_names =
      corpus_internal::MakeWordList(options.num_tags, rng, "xq");

  // Per-tag topical word sets with Zipf-weighted frequencies.
  corpus.topic_words.resize(options.num_tags);
  std::vector<std::vector<std::size_t>> topic_word_ids(options.num_tags);
  for (std::size_t t = 0; t < options.num_tags; ++t) {
    std::vector<std::size_t> picks = rng.SampleWithoutReplacement(
        options.vocabulary_size, options.topic_words_per_tag);
    topic_word_ids[t] = picks;
    for (std::size_t id : picks) corpus.topic_words[t].push_back(vocab[id]);
  }
  ZipfSampler topic_sampler(options.topic_words_per_tag,
                            options.topic_word_zipf);
  ZipfSampler background_sampler(options.vocabulary_size,
                                 options.background_word_zipf);

  // Global tag popularity (power law, shuffled so tag id != rank).
  ZipfSampler tag_popularity(options.num_tags, options.tag_popularity_zipf);
  std::vector<double> tag_weight(options.num_tags);
  for (std::size_t t = 0; t < options.num_tags; ++t) {
    tag_weight[t] = tag_popularity.Pmf(t);
  }
  rng.Shuffle(tag_weight);

  corpus.user_documents.resize(options.num_users);
  for (std::size_t user = 0; user < options.num_users; ++user) {
    // User interest: Dirichlet-skewed reweighting of global popularity.
    std::vector<double> interest =
        rng.Dirichlet(options.num_tags, options.user_interest_alpha);
    for (std::size_t t = 0; t < options.num_tags; ++t) {
      interest[t] *= tag_weight[t];
    }

    std::size_t num_docs =
        options.min_docs_per_user +
        rng.NextU64(options.max_docs_per_user - options.min_docs_per_user +
                    1);
    for (std::size_t d = 0; d < num_docs; ++d) {
      RawDocument doc;
      doc.user = user;

      // Tags: first from the user's interest, extras with decaying
      // probability.
      std::vector<std::size_t> tags;
      std::size_t first = rng.Categorical(interest);
      if (first >= options.num_tags) first = rng.NextU64(options.num_tags);
      tags.push_back(first);
      while (tags.size() < options.max_tags_per_doc &&
             rng.Bernoulli(options.extra_tag_probability)) {
        std::size_t extra = rng.Categorical(interest);
        if (extra >= options.num_tags) break;
        if (std::find(tags.begin(), tags.end(), extra) == tags.end()) {
          tags.push_back(extra);
        }
      }
      std::sort(tags.begin(), tags.end());
      for (std::size_t t : tags) doc.tags.push_back(corpus.tag_names[t]);

      // Content words: topic mixture plus background noise.
      std::size_t length =
          options.min_doc_words +
          rng.NextU64(options.max_doc_words - options.min_doc_words + 1);
      std::vector<std::string> content;
      content.reserve(length);
      for (std::size_t w = 0; w < length; ++w) {
        if (rng.Bernoulli(options.background_word_fraction)) {
          content.push_back(vocab[background_sampler.Sample(rng)]);
        } else {
          std::size_t topic = tags[rng.NextU64(tags.size())];
          std::size_t rank = topic_sampler.Sample(rng);
          content.push_back(vocab[topic_word_ids[topic][rank]]);
        }
      }

      doc.title = "doc_u" + std::to_string(user) + "_" + std::to_string(d);
      doc.text = RenderText(content, options, rng);

      corpus.user_documents[user].push_back(corpus.documents.size());
      corpus.documents.push_back(std::move(doc));
    }
  }
  return corpus;
}

}  // namespace p2pdt
