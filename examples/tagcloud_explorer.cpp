// FIG4 — tag-based file browsing through the Tag Cloud: tags sized by
// usage, edges between co-occurring tags, clusters of interconnected tags,
// and the "bridge" tags joining them (the paper's Fig. 4 shows two clusters
// "bridged by the word 'navigation'").
//
// Builds a library whose tag structure mirrors Fig. 4, renders the cloud as
// text and as Graphviz DOT (tagcloud.dot — run `dot -Tsvg tagcloud.dot`),
// then demonstrates cloud-driven browsing on a generated corpus.
//
// Build & run:  ./build/examples/tagcloud_explorer

#include <cstdio>

#include "core/doc_tagger.h"
#include "corpus/generator.h"
#include "p2pdmt/visualize.h"

using namespace p2pdt;

int main() {
  std::printf("=== Tag Cloud explorer (Fig. 4) ===\n\n");

  // --- Part 1: the exact Fig. 4 structure --------------------------------
  {
    TagLibrary lib;
    DocId id = 0;
    auto doc = [&id](std::vector<std::string> tags) {
      Document d;
      d.id = id++;
      for (auto& t : tags) d.tags.push_back({t, TagSource::kManual, 1.0});
      return d;
    };
    // A web-design cluster...
    lib.Index(doc({"css", "html"}));
    lib.Index(doc({"css", "design"}));
    lib.Index(doc({"html", "design"}));
    lib.Index(doc({"css", "html", "design"}));
    // ...a mapping cluster...
    lib.Index(doc({"maps", "gps"}));
    lib.Index(doc({"maps", "travel"}));
    lib.Index(doc({"gps", "travel"}));
    // ...bridged by "navigation", exactly as in the paper's screenshot.
    lib.Index(doc({"navigation", "design"}));
    lib.Index(doc({"navigation", "maps"}));

    TagCloud cloud = TagCloud::Build(lib);
    std::printf("-- Fig. 4 reconstruction --\n");
    std::printf("%s", cloud.Render().c_str());
    std::printf("clusters: %zu (connected through the bridge)\n",
                cloud.num_clusters());
    std::printf("bridge tags: ");
    for (const std::string& b : cloud.BridgeTags()) {
      std::printf("%s ", b.c_str());
    }
    std::printf("\n\n");
    WriteDotFile(cloud.ToDot(), "tagcloud_fig4.dot").ToString();
    std::printf("[wrote tagcloud_fig4.dot — render with `dot -Tsvg`]\n\n");
  }

  // --- Part 2: a cloud grown from auto-tagged documents ------------------
  CorpusOptions co;
  co.num_users = 8;
  co.min_docs_per_user = 60;
  co.max_docs_per_user = 80;
  co.num_tags = 10;
  co.vocabulary_size = 1800;
  co.extra_tag_probability = 0.6;  // richer co-occurrence structure
  co.seed = 1234;
  GeneratedCorpus corpus = std::move(GenerateCorpus(co)).value();

  DocTagger tagger;
  for (const RawDocument& doc : corpus.documents) {
    tagger.AddDocument(doc.title, doc.text);
  }
  // Seed-tag a third, train locally, auto-tag the rest.
  std::size_t seed_count = corpus.documents.size() / 3;
  for (DocId id = 0; id < seed_count; ++id) {
    tagger.ManualTag(id, corpus.documents[id].tags).ToString();
  }
  tagger.TrainLocal().ToString();
  tagger.AutoTagAll().status().ToString();

  TagCloud cloud = tagger.BuildTagCloud();
  std::printf("-- cloud from %zu auto-tagged documents --\n",
              tagger.library().num_documents());
  std::printf("%s", cloud.Render().c_str());
  std::printf("clusters: %zu\n", cloud.num_clusters());

  // Cloud-driven browsing: click the biggest tag, then narrow with its
  // strongest neighbor (AND filter).
  std::string biggest;
  std::size_t biggest_count = 0;
  for (const auto& node : cloud.nodes()) {
    if (node.count > biggest_count) {
      biggest_count = node.count;
      biggest = node.tag;
    }
  }
  std::printf("\nclicking '%s' in the cloud -> %zu documents\n",
              biggest.c_str(), tagger.library().WithTag(biggest).size());
  // Strongest edge from the biggest tag.
  std::string partner;
  std::size_t best_w = 0;
  for (const auto& e : cloud.edges()) {
    const std::string& ta = cloud.nodes()[e.a].tag;
    const std::string& tb = cloud.nodes()[e.b].tag;
    if (ta == biggest || tb == biggest) {
      if (e.weight > best_w) {
        best_w = e.weight;
        partner = (ta == biggest) ? tb : ta;
      }
    }
  }
  if (!partner.empty()) {
    std::printf("narrowing by its strongest neighbor '%s' -> %zu documents\n",
                partner.c_str(),
                tagger.library().WithAllTags({biggest, partner}).size());
  }
  WriteDotFile(cloud.ToDot(), "tagcloud_corpus.dot").ToString();
  std::printf("\n[wrote tagcloud_corpus.dot]\n");
  return 0;
}
