#include "p2pdmt/activity_log.h"

#include <cstdio>

#include "common/csv.h"

namespace p2pdt {

void ActivityLog::Record(SimTime time, std::string actor,
                         std::string category, std::string detail,
                         uint64_t trace_id) {
  if (max_entries_ > 0 && entries_.size() == max_entries_) {
    entries_.pop_front();
    ++dropped_;
  }
  entries_.push_back(Entry{time, std::move(actor), std::move(category),
                           std::move(detail), trace_id});
}

std::vector<ActivityLog::Entry> ActivityLog::FilterByCategory(
    const std::string& category) const {
  std::vector<Entry> out;
  for (const Entry& e : entries_) {
    if (e.category == category) out.push_back(e);
  }
  return out;
}

std::size_t ActivityLog::CountCategory(const std::string& category) const {
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.category == category) ++n;
  }
  return n;
}

Status ActivityLog::WriteCsv(const std::string& path) const {
  CsvWriter csv({"time", "actor", "category", "detail", "trace_id"});
  for (const Entry& e : entries_) {
    char time_buf[32];
    std::snprintf(time_buf, sizeof(time_buf), "%.6f", e.time);
    P2PDT_RETURN_IF_ERROR(csv.AddRow({time_buf, e.actor, e.category, e.detail,
                                      std::to_string(e.trace_id)}));
  }
  return csv.WriteFile(path);
}

}  // namespace p2pdt
