#!/usr/bin/env python3
"""Validates the service-robustness CSV emitted by bench_service.

Usage: check_service_csv.py <service.csv> [--strict]

Pure stdlib. Checks the column schema exactly, value ranges, and the
structural invariants every run must satisfy:

- Outcome arithmetic: ok + degraded + cached + failed == completed, and
  completed == offered (every socket request resolves — answered,
  degraded, shed-then-given-up; nothing is silently dropped).
- Zero replay failures and zero lost connections on every arm: the
  daemon answered everything the schedule offered, faults or no faults.
- Every arm's drain completed — SIGTERM-equivalent graceful shutdown
  finished its in-flight work inside the deadline, on both arms.
- Latency quantiles are ordered (p50 <= p95 <= p99).
- Both arms present per algorithm, with MATCHING fingerprints: the
  per-answer digest (session, idx, outcome, tags, scores) of the faulted
  arm equals the clean arm's — socket-level abuse (resets, stalls,
  fragmentation, malformed bytes) changed no prediction.
- The faulted arm actually hurt: resets delivered, typed errors
  received, stalled connections observably reaped by the idle deadline,
  and the final liveness probe passed.

With --strict it additionally enforces the SVC1 latency bar: the clean
arm's p95 under the SLO, and the faulted arm's p95 within 4x the clean
arm's (abuse may not wreck tail latency for well-behaved clients).
Exits non-zero with one message per violation.
"""

import csv
import sys

EXPECTED_COLUMNS = [
    "algorithm", "arm", "offered", "completed", "ok", "degraded", "cached",
    "failed", "shed", "retries", "within_slo", "io_errors", "p50_s", "p95_s",
    "p99_s", "achieved_rate", "wall_s", "train_wall_s", "fingerprint",
    "daemon_accepted", "daemon_requests", "daemon_malformed",
    "daemon_oversized", "daemon_reaped_idle", "daemon_read_errors",
    "daemon_slow_consumer_closed", "drain_completed", "fault_resets",
    "fault_stalls_reaped", "fault_typed_errors", "fault_predicts_ok",
    "fault_liveness_ok",
]

KNOWN_ARMS = {"clean", "faulted"}

SLO_SECONDS = 1.0
FAULTED_P95_FACTOR = 4.0

errors = []


def check(cond, msg):
    if not cond:
        errors.append(msg)


def validate(path, strict):
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        check(reader.fieldnames == EXPECTED_COLUMNS,
              f"header mismatch: got {reader.fieldnames}")
        rows = list(reader)
    check(rows, "no data rows")
    if errors:
        return

    for i, row in enumerate(rows):
        where = f"row {i + 2}"
        check(row["algorithm"] in ("cempar", "pace"),
              f"{where}: unknown algorithm {row['algorithm']!r}")
        check(row["arm"] in KNOWN_ARMS,
              f"{where}: unknown arm {row['arm']!r}")
        for col in ("offered", "completed", "ok", "degraded", "cached",
                    "failed", "shed", "retries", "within_slo", "io_errors",
                    "daemon_accepted", "daemon_requests", "daemon_malformed",
                    "daemon_oversized", "daemon_reaped_idle",
                    "daemon_read_errors", "daemon_slow_consumer_closed",
                    "fault_resets", "fault_stalls_reaped",
                    "fault_typed_errors", "fault_predicts_ok"):
            check(int(row[col]) >= 0, f"{where}: negative {col}")
        offered = int(row["offered"])
        completed = int(row["completed"])
        answered = (int(row["ok"]) + int(row["degraded"]) +
                    int(row["cached"]) + int(row["failed"]))
        check(offered > 0, f"{where}: empty replay")
        check(completed == offered,
              f"{where}: completed {completed} != offered {offered} "
              "(requests went missing)")
        check(answered == completed,
              f"{where}: ok+degraded+cached+failed {answered} != "
              f"completed {completed}")
        check(int(row["within_slo"]) <= completed,
              f"{where}: within_slo exceeds completed")
        # The robustness bar: nothing failed, no connection was lost, and
        # the graceful drain finished — on BOTH arms.
        check(int(row["failed"]) == 0,
              f"{where}: {row['failed']} replay requests failed")
        check(int(row["io_errors"]) == 0,
              f"{where}: {row['io_errors']} replay connections lost")
        check(row["drain_completed"] == "1",
              f"{where}: graceful drain did not complete")
        p50, p95, p99 = (float(row["p50_s"]), float(row["p95_s"]),
                         float(row["p99_s"]))
        check(0.0 <= p50 <= p95 + 1e-12 and p95 <= p99 + 1e-12,
              f"{where}: latency quantiles unordered "
              f"({p50}, {p95}, {p99})")
        check(len(row["fingerprint"]) == 16,
              f"{where}: fingerprint not a 16-hex-digit digest")
        if row["arm"] == "clean":
            check(int(row["daemon_malformed"]) == 0,
                  f"{where}: clean arm saw malformed frames")
            check(int(row["daemon_read_errors"]) == 0,
                  f"{where}: clean arm saw connection resets")
        else:
            check(int(row["fault_resets"]) > 0,
                  f"{where}: faulted arm delivered no resets")
            check(int(row["fault_typed_errors"]) > 0,
                  f"{where}: faulted arm elicited no typed errors")
            check(int(row["fault_stalls_reaped"]) > 0,
                  f"{where}: no stalled connection was reaped within "
                  "the idle deadline")
            check(int(row["daemon_reaped_idle"]) >=
                  int(row["fault_stalls_reaped"]),
                  f"{where}: daemon reap counter below observed reaps")
            check(row["fault_liveness_ok"] == "1",
                  f"{where}: liveness probe failed after the fault script")

    algorithms = sorted({row["algorithm"] for row in rows})
    for algorithm in algorithms:
        arms = {row["arm"]: row for row in rows
                if row["algorithm"] == algorithm}
        check(set(arms) == KNOWN_ARMS,
              f"{algorithm}: arm pair incomplete (have {sorted(arms)})")
        if set(arms) != KNOWN_ARMS:
            continue
        check(arms["clean"]["fingerprint"] == arms["faulted"]["fingerprint"],
              f"{algorithm}: clean/faulted fingerprints differ — "
              "socket-level faults changed a prediction")
        if strict:
            clean_p95 = float(arms["clean"]["p95_s"])
            faulted_p95 = float(arms["faulted"]["p95_s"])
            check(clean_p95 <= SLO_SECONDS,
                  f"{algorithm}: clean p95 {clean_p95:.4f}s over the "
                  f"{SLO_SECONDS}s SLO")
            check(faulted_p95 <= max(FAULTED_P95_FACTOR * clean_p95,
                                     SLO_SECONDS),
                  f"{algorithm}: faulted p95 {faulted_p95:.4f}s more than "
                  f"{FAULTED_P95_FACTOR}x the clean arm's {clean_p95:.4f}s")


def main():
    args = [a for a in sys.argv[1:] if a != "--strict"]
    strict = "--strict" in sys.argv[1:]
    if len(args) != 1:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    validate(args[0], strict)
    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print(f"OK: {args[0]} passed service robustness validation"
          f"{' (strict)' if strict else ''}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
