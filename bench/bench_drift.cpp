// DRIFT1 — drift robustness: stream a non-stationary corpus (sudden
// vocabulary shift, gradual topic rotation, popularity spikes, new-tag
// introduction) through the live protocols and sweep retrain policy ×
// packet loss × churn.
//
// Expected shape: under the frozen policy macro-F1 dips at the drift epoch
// and stays degraded; the retraining policies (periodic / staleness- /
// drift-triggered) re-converge to within a couple of macro-F1 points of the
// pre-drift level within a few epochs, at the cost of refresh traffic —
// even at 20 % loss, because the republish rides the reliable transport.
// Stationary ("none") rows are bit-identical across the non-periodic
// policies wherever the *service* is stationary too (all PACE rows, and
// every zero-loss row): nothing triggers, so the armed machinery is idle.
// CEMPaR under 20 % loss is the deliberate exception — its serving quality
// genuinely erodes as loss starves peers of models, the detector reads
// that erosion as drift, and the triggered republish repairs it
// (self-healing; the frozen arm stays degraded).
//
// `--smoke` runs a small PACE-only grid and writes the same CSV schema for
// CI validation.

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "p2pdmt/drift.h"

using namespace p2pdt_bench;

namespace {

StreamOptions BaseStream() {
  StreamOptions stream;
  stream.base.num_users = 24;
  stream.base.num_tags = 6;
  stream.base.vocabulary_size = 1200;
  stream.base.topic_words_per_tag = 40;
  stream.base.min_doc_words = 30;
  stream.base.max_doc_words = 80;
  stream.base.seed = 20100913;
  stream.num_epochs = 8;
  stream.min_docs_per_user_per_epoch = 4;
  stream.max_docs_per_user_per_epoch = 7;
  stream.reserve_tags = 1;
  return stream;
}

DriftExperimentOptions BaseOptions() {
  DriftExperimentOptions base;
  // The refresh republish rides the reliable transport — that is the whole
  // point of the 20 %-loss arm.
  base.pace.reliable_dissemination = true;
  base.cempar.reliable_transport = true;
  base.window_documents = 40;
  // Tuned to the stream cadence (~5 docs per peer per epoch): the anchor
  // forms during the first post-train epoch or two, a sustained quality
  // collapse fills the window within two epochs, and staleness saturates
  // after about four epochs of neglect. The threshold is calibrated per
  // stream: across 24 peers the stationary per-peer Jaccard-gap noise
  // ceiling (max order statistic of a window-12 mean) measures ~0.22,
  // while a sudden vocabulary shift opens a gap of ~0.5 — 0.30 separates
  // the two with margin on both sides. The benches are deterministic, so
  // zero stationary firings is an exact, checkable property of this
  // config, not a probabilistic hope.
  base.staleness.window = 12;
  base.staleness.min_observations = 8;
  base.staleness.fast_alpha = 0.3;
  base.staleness.slow_alpha = 0.01;
  base.staleness.drift_threshold = 0.30;
  base.staleness.stale_after_docs = 24;
  base.staleness_trigger = 0.5;
  base.periodic_interval_epochs = 2;
  return base;
}

void PrintHeader() {
  std::printf("%-8s %-16s %-10s %5s %5s %8s %8s %8s %5s %8s %7s\n", "algo",
              "scenario", "policy", "loss", "churn", "preF1", "minF1",
              "finalF1", "recov", "retrains", "giveups");
}

DriftSweepOptions CommonSweep() {
  DriftSweepOptions sweep;
  sweep.stream = BaseStream();
  sweep.base = BaseOptions();
  sweep.on_point = [](const DriftRow& row) {
    std::printf("%-8s %-16s %-10s %5.2f %5s %8.4f %8.4f %8.4f %5zu %8llu "
                "%7llu\n",
                row.algorithm.c_str(), row.scenario.c_str(),
                row.policy.c_str(), row.loss_rate, row.churn ? "on" : "off",
                row.pre_drift_f1, row.min_post_drift_f1, row.final_f1,
                row.recovery_epochs,
                static_cast<unsigned long long>(row.retrains),
                static_cast<unsigned long long>(row.give_ups));
  };
  return sweep;
}

int RunSweep(DriftSweepOptions sweep) {
  PrintHeader();
  Result<std::vector<DriftRow>> rows = RunDriftSweep(sweep);
  if (!rows.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 rows.status().ToString().c_str());
    return 1;
  }
  if (rows.value().empty()) {
    std::fprintf(stderr, "sweep produced no rows\n");
    return 1;
  }
  WriteResults(DriftCsv(rows.value()), "drift.csv");
  return 0;
}

int RunSmoke() {
  std::printf("=== DRIFT1 smoke: stationary + sudden vocab shift for CI "
              "===\n");
  DriftSweepOptions sweep = CommonSweep();
  sweep.stream.base.num_users = 10;
  sweep.stream.base.num_tags = 4;
  sweep.stream.base.vocabulary_size = 800;
  sweep.stream.num_epochs = 6;
  sweep.stream.min_docs_per_user_per_epoch = 3;
  sweep.stream.max_docs_per_user_per_epoch = 5;
  // The smoke stream is smaller and harder (baseline Jaccard ~0.42), which
  // compresses both the noise ceiling (~0.034 across 10 peers) and the
  // drift signal (~0.06-0.16) — recalibrate the threshold to its scale.
  sweep.base.staleness.drift_threshold = 0.06;
  sweep.algorithms = {AlgorithmType::kPace};
  sweep.scenarios = {"none", "sudden_vocab"};
  sweep.policies = {RetrainPolicy::kFrozen, RetrainPolicy::kDriftTriggered};
  sweep.loss_rates = {0.2};
  sweep.churn_arm = false;
  return RunSweep(std::move(sweep));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return RunSmoke();

  std::printf("=== DRIFT1: drift scenario x retrain policy x loss x churn "
              "===\n\n");
  return RunSweep(CommonSweep());
}
