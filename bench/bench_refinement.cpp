// CLAIM5 — Tag Refinement (paper Sec. 2): "users can use the tagging
// interface to modify the assigned tags ... P2PDocTagger will automatically
// update the classification model(s) in the back-end, to adapt to their
// personal preference for future tagging."
//
// Protocol: a user whose personal tagging convention *disagrees* with the
// global model on one tag (they use a personal tag for one topic) corrects
// a stream of documents; after each batch of corrections we measure
// accuracy-w.r.t.-the-user on held-out documents. Expected shape: personal
// accuracy climbs with corrections while the untouched tags keep their
// global accuracy.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/doc_tagger.h"
#include "p2pdmt/sim_scorer.h"

using namespace p2pdt_bench;

int main() {
  std::printf("=== CLAIM5: tag refinement personalizes the model ===\n\n");

  // A corpus and a trained CEMPaR backend.
  CorpusOptions co;
  co.num_users = 24;
  co.min_docs_per_user = 50;
  co.max_docs_per_user = 70;
  co.num_tags = 8;
  co.vocabulary_size = 2000;
  co.seed = 77;
  GeneratedCorpus corpus = std::move(GenerateCorpus(co)).value();
  Preprocessor pre;
  VectorizedCorpus vectorized =
      std::move(VectorizeCorpus(corpus, pre)).value();

  ExperimentOptions opt = MacroDefaults(AlgorithmType::kCempar, 24);
  auto env = std::move(Environment::Create(opt.env)).value();
  auto algo = std::move(MakeClassifier(*env, opt)).value();
  CorpusSplit split = SplitCorpus(vectorized, 0.2, 9);
  auto peers = std::move(DistributeData(split.train, 24, opt.distribution,
                                        &split.train_user))
                   .value();
  if (!algo->Setup(std::move(peers), vectorized.dataset.num_tags()).ok()) {
    return 1;
  }
  bool trained = false;
  algo->Train([&](Status) { trained = true; });
  env->RunUntilFlag(trained, 3600);

  // The user's personal convention: whenever the global model would say
  // tag 0, the user wants their own tag "personal" instead.
  const std::string personal_tag = "personal";
  const std::string global_tag0 = corpus.tag_names[0];

  DocTagger tagger;
  tagger.AttachGlobalScorer(MakeSimScorer(*algo, *env, 2),
                            corpus.tag_names);

  // Documents whose ground truth includes tag 0, owned by user 2.
  std::vector<const RawDocument*> tag0_docs;
  for (const RawDocument& doc : corpus.documents) {
    for (const std::string& t : doc.tags) {
      if (t == global_tag0) {
        tag0_docs.push_back(&doc);
        break;
      }
    }
  }
  std::printf("documents carrying the retagged topic: %zu\n\n",
              tag0_docs.size());
  if (tag0_docs.size() < 40) {
    std::fprintf(stderr, "corpus too small for the refinement protocol\n");
    return 1;
  }

  // Split them: a correction stream and a held-out evaluation set.
  std::size_t train_n = tag0_docs.size() / 2;
  auto evaluate = [&](DocTagger& t) {
    // Fraction of held-out docs where suggestions (threshold 0.5) include
    // the personal tag.
    std::size_t hit = 0, total = 0;
    for (std::size_t i = train_n; i < tag0_docs.size(); ++i) {
      DocId id = t.AddDocument("eval", tag0_docs[i]->text);
      Result<std::vector<TagSuggestion>> sug = t.SuggestTags(id, 0.5);
      if (!sug.ok()) continue;
      ++total;
      for (const TagSuggestion& s : sug.value()) {
        if (s.tag == personal_tag) {
          ++hit;
          break;
        }
      }
    }
    return total ? static_cast<double>(hit) / total : 0.0;
  };

  CsvWriter csv({"corrections", "personal_tag_recall"});
  std::printf("%12s %22s\n", "corrections", "personal-tag recall");
  std::size_t applied = 0;
  for (std::size_t batch : {0u, 4u, 8u, 16u, 32u}) {
    while (applied < batch && applied < train_n) {
      DocId id = tagger.AddDocument("corr", tag0_docs[applied]->text);
      tagger.AutoTag(id).status();
      tagger.Refine(id, {personal_tag}).ToString();
      // Keep the local model fresh from all manual tags so far.
      tagger.TrainLocal().ToString();
      ++applied;
    }
    double recall = evaluate(tagger);
    std::printf("%12zu %22.3f\n", applied, recall);
    csv.AddNumericRow({static_cast<double>(applied), recall});
  }
  WriteResults(csv, "claim5_refinement.csv");
  return 0;
}
