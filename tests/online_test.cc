#include "ml/online.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

SparseVector X(std::vector<SparseVector::Entry> f) {
  return SparseVector::FromPairs(std::move(f));
}

TEST(PassiveAggressiveTest, NoUpdateWhenMarginSatisfied) {
  LinearSvmModel model(X({{0, 5.0}}), 0.0);
  SparseVector x = X({{0, 1.0}});
  double before = model.Decision(x);
  double loss = PassiveAggressiveUpdate(model, x, 1.0);
  EXPECT_DOUBLE_EQ(loss, 0.0);
  EXPECT_DOUBLE_EQ(model.Decision(x), before);
}

TEST(PassiveAggressiveTest, UpdateMovesTowardLabel) {
  LinearSvmModel model;  // zero model
  SparseVector x = X({{0, 1.0}});
  double loss = PassiveAggressiveUpdate(model, x, 1.0);
  EXPECT_DOUBLE_EQ(loss, 1.0);  // hinge at zero decision
  EXPECT_GT(model.Decision(x), 0.0);
}

TEST(PassiveAggressiveTest, NegativeLabelMovesDown) {
  LinearSvmModel model;
  SparseVector x = X({{3, 2.0}});
  PassiveAggressiveUpdate(model, x, -1.0);
  EXPECT_LT(model.Decision(x), 0.0);
}

TEST(PassiveAggressiveTest, RepeatedUpdatesConverge) {
  LinearSvmModel model;
  SparseVector x = X({{0, 1.0}});
  for (int i = 0; i < 20; ++i) {
    PassiveAggressiveUpdate(model, x, 1.0);
  }
  // PA converges toward margin 1 on a single example.
  EXPECT_GT(model.Decision(x), 0.8);
  EXPECT_DOUBLE_EQ(PassiveAggressiveUpdate(model, x, 1.0),
                   std::max(0.0, 1.0 - model.Decision(x)));
}

TEST(PassiveAggressiveTest, LargerCMovesFaster) {
  LinearSvmModel slow, fast;
  SparseVector x = X({{0, 1.0}});
  OnlineUpdateOptions small;
  small.c = 0.1;
  OnlineUpdateOptions big;
  big.c = 10.0;
  PassiveAggressiveUpdate(slow, x, 1.0, small);
  PassiveAggressiveUpdate(fast, x, 1.0, big);
  EXPECT_GT(fast.Decision(x), slow.Decision(x));
}

OneVsAllModel TwoTagModel() {
  OneVsAllModel model;
  model.SetModel(0, std::make_unique<LinearSvmModel>(X({{0, 1.0}}), 0.0));
  model.SetModel(1, std::make_unique<LinearSvmModel>(X({{1, 1.0}}), 0.0));
  return model;
}

TEST(RefineTagsTest, PositiveAndNegativeCorrections) {
  OneVsAllModel model = TwoTagModel();
  SparseVector x = X({{0, 1.0}, {1, 1.0}});
  // The system predicted {0, 1}; the user corrected to {1}: tag 0 gets a
  // negative update, tag 1 a positive one.
  std::size_t updated = RefineTags(model, x, /*predicted=*/{0, 1},
                                   /*corrected=*/{1});
  EXPECT_EQ(updated, 2u);
  EXPECT_LT(model.model(0)->Decision(x), 1.0);
  EXPECT_GE(model.model(1)->Decision(x), 1.0);
}

TEST(RefineTagsTest, RepeatedRefinementFlipsPrediction) {
  OneVsAllModel model = TwoTagModel();
  SparseVector x = X({{0, 1.0}});
  ASSERT_GT(model.model(0)->Decision(x), 0.0);
  // The user insists tag 0 does NOT belong on this document.
  for (int i = 0; i < 10; ++i) {
    RefineTags(model, x, {0}, {});
  }
  EXPECT_LT(model.model(0)->Decision(x), 0.0);
}

TEST(RefineTagsTest, UnknownTagsIgnoredGracefully) {
  OneVsAllModel model = TwoTagModel();
  SparseVector x = X({{0, 1.0}});
  // Corrected tag 9 has no model yet; predicted tag 7 neither.
  std::size_t updated = RefineTags(model, x, {7}, {9});
  EXPECT_EQ(updated, 0u);
}

TEST(RefineTagsTest, NonLinearModelsLeftAlone) {
  OneVsAllModel model;
  // No model at all for tag 0 (nullptr).
  model.SetModel(0, nullptr);
  EXPECT_EQ(RefineTags(model, X({{0, 1.0}}), {0}, {0}), 0u);
}

TEST(RefineTagsTest, UnsortedAndDuplicatedCorrectionsNormalize) {
  // Regression: the negative-correction membership test binary-searches the
  // corrected set, which silently misbehaves on unsorted input, and a
  // duplicated corrected tag must not be nudged twice.
  OneVsAllModel a = TwoTagModel();
  OneVsAllModel b = TwoTagModel();
  SparseVector x = X({{0, 1.0}, {1, 1.0}});
  std::size_t ua = RefineTags(a, x, {0, 1}, {1, 0, 1, 0});
  std::size_t ub = RefineTags(b, x, {0, 1}, {0, 1});
  EXPECT_EQ(ua, ub);
  EXPECT_DOUBLE_EQ(a.model(0)->Decision(x), b.model(0)->Decision(x));
  EXPECT_DOUBLE_EQ(a.model(1)->Decision(x), b.model(1)->Decision(x));
}

RefinementUpdate Update(uint64_t doc, uint32_t revision,
                        std::vector<TagId> predicted,
                        std::vector<TagId> corrected) {
  RefinementUpdate u;
  u.doc_id = doc;
  u.revision = revision;
  u.x = X({{0, 1.0}, {1, 1.0}});
  u.predicted_tags = std::move(predicted);
  u.corrected_tags = std::move(corrected);
  return u;
}

TEST(RefinementLogTest, DuplicateDeliveryIsANoOp) {
  OneVsAllModel model = TwoTagModel();
  RefinementLog log;
  RefinementUpdate u = Update(42, 1, {0, 1}, {1});
  EXPECT_TRUE(log.ShouldApply(u));
  EXPECT_GT(log.Apply(model, u), 0u);
  const double d0 = model.model(0)->Decision(u.x);
  const double d1 = model.model(1)->Decision(u.x);
  // A retransmit of the exact same revision must not move the model.
  EXPECT_FALSE(log.ShouldApply(u));
  EXPECT_EQ(log.Apply(model, u), 0u);
  EXPECT_DOUBLE_EQ(model.model(0)->Decision(u.x), d0);
  EXPECT_DOUBLE_EQ(model.model(1)->Decision(u.x), d1);
  EXPECT_EQ(log.applied(), 1u);
  EXPECT_EQ(log.skipped_duplicate(), 1u);
  EXPECT_EQ(log.skipped_stale(), 0u);
}

TEST(RefinementLogTest, StaleRevisionIsDropped) {
  OneVsAllModel model = TwoTagModel();
  RefinementLog log;
  // Revision 2 arrives first (the user re-corrected before the original
  // correction propagated); the late revision 1 must not roll it back.
  EXPECT_GT(log.Apply(model, Update(7, 2, {0, 1}, {})), 0u);
  const double d0 = model.model(0)->Decision(X({{0, 1.0}, {1, 1.0}}));
  EXPECT_EQ(log.Apply(model, Update(7, 1, {0, 1}, {0, 1})), 0u);
  EXPECT_DOUBLE_EQ(model.model(0)->Decision(X({{0, 1.0}, {1, 1.0}})), d0);
  EXPECT_EQ(log.applied(), 1u);
  EXPECT_EQ(log.skipped_stale(), 1u);
}

TEST(RefinementLogTest, ReplicasConvergeDespiteRedelivery) {
  // Two replicas see the same revisions, one with duplicates sprinkled in —
  // exactly-once application keeps their models bit-identical.
  OneVsAllModel clean = TwoTagModel();
  OneVsAllModel noisy = TwoTagModel();
  RefinementLog clean_log, noisy_log;
  RefinementUpdate r1 = Update(9, 1, {0}, {1});
  RefinementUpdate r2 = Update(9, 2, {1}, {0});
  clean_log.Apply(clean, r1);
  clean_log.Apply(clean, r2);
  noisy_log.Apply(noisy, r1);
  noisy_log.Apply(noisy, r1);  // retransmit
  noisy_log.Apply(noisy, r2);
  noisy_log.Apply(noisy, r1);  // straggler
  noisy_log.Apply(noisy, r2);  // retransmit
  SparseVector x = X({{0, 1.0}, {1, 1.0}});
  EXPECT_DOUBLE_EQ(clean.model(0)->Decision(x), noisy.model(0)->Decision(x));
  EXPECT_DOUBLE_EQ(clean.model(1)->Decision(x), noisy.model(1)->Decision(x));
  EXPECT_EQ(noisy_log.applied(), 2u);
  EXPECT_EQ(noisy_log.skipped_duplicate(), 2u);
  EXPECT_EQ(noisy_log.skipped_stale(), 1u);
}

TEST(RefinementLogTest, DocumentsAreIndependent) {
  OneVsAllModel model = TwoTagModel();
  RefinementLog log;
  EXPECT_GT(log.Apply(model, Update(1, 5, {0}, {1})), 0u);
  // A lower revision of a *different* document is not stale.
  EXPECT_GT(log.Apply(model, Update(2, 1, {0}, {1})), 0u);
  EXPECT_EQ(log.applied(), 2u);
  EXPECT_EQ(log.skipped_stale(), 0u);
}

}  // namespace
}  // namespace p2pdt
