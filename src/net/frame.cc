#include "net/frame.h"

#include <cstring>

#include "ml/serialization.h"

namespace p2pdt {

namespace {

bool ValidType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kPredictRequest) &&
         t <= static_cast<uint8_t>(FrameType::kPong);
}

uint32_t ReadU32At(const std::string& buf, std::size_t at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= uint32_t{static_cast<unsigned char>(buf[at + i])} << (8 * i);
  }
  return v;
}

}  // namespace

const char* FrameTypeToString(FrameType t) {
  switch (t) {
    case FrameType::kPredictRequest:
      return "predict_request";
    case FrameType::kPredictResponse:
      return "predict_response";
    case FrameType::kOverload:
      return "overload";
    case FrameType::kError:
      return "error";
    case FrameType::kPing:
      return "ping";
    case FrameType::kPong:
      return "pong";
  }
  return "unknown";
}

const char* WireErrorToString(WireError e) {
  switch (e) {
    case WireError::kMalformed:
      return "malformed";
    case WireError::kOversized:
      return "oversized";
    case WireError::kBadMagic:
      return "bad_magic";
    case WireError::kBadType:
      return "bad_type";
    case WireError::kZeroPayload:
      return "zero_payload";
    case WireError::kUnexpectedType:
      return "unexpected_type";
    case WireError::kTooManyConnections:
      return "too_many_connections";
    case WireError::kDraining:
      return "draining";
    case WireError::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string EncodeFrame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  wire::PutU32(kFrameMagic, out);
  wire::PutU8(static_cast<uint8_t>(type), out);
  wire::PutU32(static_cast<uint32_t>(payload.size()), out);
  out += payload;
  return out;
}

FrameDecoder::FrameDecoder(std::size_t max_payload)
    : max_payload_(max_payload) {}

bool FrameDecoder::Feed(const char* data, std::size_t n) {
  if (poisoned()) return false;
  // Compact lazily: once the consumed prefix dominates, drop it so the
  // buffer stays bounded by one frame plus one read chunk.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  if (buffered() + n > kFrameHeaderBytes + max_payload_) return false;
  buffer_.append(data, n);
  return true;
}

FrameDecoder::Next FrameDecoder::Poll(Frame& out) {
  if (poisoned()) return poisoned_;
  if (buffered() < kFrameHeaderBytes) return Next::kNeedMore;
  // Header validation happens on the 9 raw bytes, before the payload is
  // ever sized: a hostile length field never reaches an allocator.
  const std::size_t at = consumed_;
  if (ReadU32At(buffer_, at) != kFrameMagic) {
    poisoned_ = Next::kBadMagic;
    return poisoned_;
  }
  const uint8_t type = static_cast<unsigned char>(buffer_[at + 4]);
  if (!ValidType(type)) {
    poisoned_ = Next::kBadType;
    return poisoned_;
  }
  const uint32_t len = ReadU32At(buffer_, at + 5);
  if (len == 0) {
    poisoned_ = Next::kZeroPayload;
    return poisoned_;
  }
  if (len > max_payload_) {
    poisoned_ = Next::kOversized;
    return poisoned_;
  }
  if (buffered() < kFrameHeaderBytes + len) return Next::kNeedMore;
  out.type = static_cast<FrameType>(type);
  out.payload.assign(buffer_, at + kFrameHeaderBytes, len);
  consumed_ = at + kFrameHeaderBytes + len;
  return Next::kFrame;
}

WireError FrameDecoder::RejectToError(Next reject) {
  switch (reject) {
    case Next::kBadMagic:
      return WireError::kBadMagic;
    case Next::kBadType:
      return WireError::kBadType;
    case Next::kZeroPayload:
      return WireError::kZeroPayload;
    case Next::kOversized:
      return WireError::kOversized;
    case Next::kFrame:
    case Next::kNeedMore:
      break;
  }
  return WireError::kInternal;
}

// --- Typed payloads --------------------------------------------------------

std::string EncodePredictRequest(const PredictRequest& req) {
  std::string out;
  wire::PutU64(req.id, out);
  wire::PutU64(req.requester, out);
  SerializeSparseVector(req.doc, out);
  return out;
}

Result<PredictRequest> DecodePredictRequest(const std::string& payload) {
  std::size_t offset = 0;
  PredictRequest req;
  Result<uint64_t> id = wire::GetU64(payload, offset);
  if (!id.ok()) return id.status();
  req.id = *id;
  Result<uint64_t> requester = wire::GetU64(payload, offset);
  if (!requester.ok()) return requester.status();
  req.requester = *requester;
  Result<SparseVector> doc = DeserializeSparseVector(payload, offset);
  if (!doc.ok()) return doc.status();
  req.doc = std::move(*doc);
  if (offset != payload.size()) {
    return Status::DataLoss("predict request carries trailing bytes");
  }
  return req;
}

std::string EncodePredictResponse(const PredictResponse& resp) {
  std::string out;
  wire::PutU64(resp.id, out);
  uint8_t flags = 0;
  if (resp.success) flags |= 1;
  if (resp.degraded) flags |= 2;
  if (resp.cached) flags |= 4;
  wire::PutU8(flags, out);
  wire::PutU32(static_cast<uint32_t>(resp.tags.size()), out);
  for (uint32_t t : resp.tags) wire::PutU32(t, out);
  wire::PutU32(static_cast<uint32_t>(resp.scores.size()), out);
  for (double s : resp.scores) wire::PutDouble(s, out);
  return out;
}

Result<PredictResponse> DecodePredictResponse(const std::string& payload) {
  std::size_t offset = 0;
  PredictResponse resp;
  Result<uint64_t> id = wire::GetU64(payload, offset);
  if (!id.ok()) return id.status();
  resp.id = *id;
  Result<uint8_t> flags = wire::GetU8(payload, offset);
  if (!flags.ok()) return flags.status();
  resp.success = (*flags & 1) != 0;
  resp.degraded = (*flags & 2) != 0;
  resp.cached = (*flags & 4) != 0;
  Result<uint32_t> num_tags = wire::GetU32(payload, offset);
  if (!num_tags.ok()) return num_tags.status();
  // Bound every count against the remaining bytes before reserving.
  if (*num_tags > (payload.size() - offset) / 4) {
    return Status::DataLoss("response tag count exceeds payload");
  }
  resp.tags.reserve(*num_tags);
  for (uint32_t i = 0; i < *num_tags; ++i) {
    Result<uint32_t> t = wire::GetU32(payload, offset);
    if (!t.ok()) return t.status();
    resp.tags.push_back(*t);
  }
  Result<uint32_t> num_scores = wire::GetU32(payload, offset);
  if (!num_scores.ok()) return num_scores.status();
  if (*num_scores > (payload.size() - offset) / 8) {
    return Status::DataLoss("response score count exceeds payload");
  }
  resp.scores.reserve(*num_scores);
  for (uint32_t i = 0; i < *num_scores; ++i) {
    Result<double> s = wire::GetDouble(payload, offset);
    if (!s.ok()) return s.status();
    resp.scores.push_back(*s);
  }
  if (offset != payload.size()) {
    return Status::DataLoss("predict response carries trailing bytes");
  }
  return resp;
}

std::string EncodeOverloadReject(const OverloadReject& reject) {
  std::string out;
  wire::PutU64(reject.id, out);
  wire::PutU8(reject.reason, out);
  wire::PutDouble(reject.retry_after, out);
  return out;
}

Result<OverloadReject> DecodeOverloadReject(const std::string& payload) {
  std::size_t offset = 0;
  OverloadReject reject;
  Result<uint64_t> id = wire::GetU64(payload, offset);
  if (!id.ok()) return id.status();
  reject.id = *id;
  Result<uint8_t> reason = wire::GetU8(payload, offset);
  if (!reason.ok()) return reason.status();
  reject.reason = *reason;
  Result<double> retry = wire::GetDouble(payload, offset);
  if (!retry.ok()) return retry.status();
  reject.retry_after = *retry;
  if (offset != payload.size()) {
    return Status::DataLoss("overload reject carries trailing bytes");
  }
  return reject;
}

std::string EncodeErrorReject(const ErrorReject& reject) {
  std::string out;
  wire::PutU64(reject.id, out);
  wire::PutU8(static_cast<uint8_t>(reject.code), out);
  wire::PutBytes(reject.message, out);
  return out;
}

Result<ErrorReject> DecodeErrorReject(const std::string& payload) {
  std::size_t offset = 0;
  ErrorReject reject;
  Result<uint64_t> id = wire::GetU64(payload, offset);
  if (!id.ok()) return id.status();
  reject.id = *id;
  Result<uint8_t> code = wire::GetU8(payload, offset);
  if (!code.ok()) return code.status();
  reject.code = static_cast<WireError>(*code);
  Result<std::string> message = wire::GetBytes(payload, offset);
  if (!message.ok()) return message.status();
  reject.message = std::move(*message);
  if (offset != payload.size()) {
    return Status::DataLoss("error reject carries trailing bytes");
  }
  return reject;
}

std::string EncodePingPayload(uint64_t token) {
  std::string out;
  wire::PutU64(token, out);
  return out;
}

Result<uint64_t> DecodePingPayload(const std::string& payload) {
  std::size_t offset = 0;
  Result<uint64_t> token = wire::GetU64(payload, offset);
  if (!token.ok()) return token.status();
  if (offset != payload.size()) {
    return Status::DataLoss("ping payload carries trailing bytes");
  }
  return *token;
}

}  // namespace p2pdt
