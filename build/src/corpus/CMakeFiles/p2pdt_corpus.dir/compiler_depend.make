# Empty compiler generated dependencies file for p2pdt_corpus.
# This may be replaced when dependencies are built.
