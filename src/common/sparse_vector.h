#ifndef P2PDT_COMMON_SPARSE_VECTOR_H_
#define P2PDT_COMMON_SPARSE_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace p2pdt {

/// Sparse feature vector: the paper's document representation
/// d = {w_1, ..., w_m}^T where only non-zero term weights are stored as
/// (word id, weight) pairs sorted by id.
///
/// This is the unit of data exchanged between peers in P2PDocTagger: only
/// word ids and weights are preserved — no word order, no positions — which
/// is the basis of the paper's privacy argument (Sec. 2). Its serialized
/// size is also what the communication-cost accounting in the simulator
/// charges per vector.
class SparseVector {
 public:
  using Index = uint32_t;
  using Entry = std::pair<Index, double>;

  SparseVector() = default;

  /// Builds from unsorted (id, weight) pairs; duplicates are summed and
  /// zero weights dropped.
  static SparseVector FromPairs(std::vector<Entry> entries);

  /// Builds from a dense array, dropping zeros.
  static SparseVector FromDense(const std::vector<double>& dense);

  /// Appends an entry with an id strictly greater than any existing id.
  /// Fast path used by builders that already emit sorted ids.
  void PushBack(Index id, double weight);

  /// Returns the weight of `id`, or 0 if absent. O(log nnz).
  double Get(Index id) const;

  std::size_t nnz() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<Entry>& entries() const { return entries_; }

  /// Dot product with another sparse vector. O(nnz_a + nnz_b).
  double Dot(const SparseVector& other) const;

  /// Dot product with a dense weight array; ids beyond its size contribute 0.
  double DotDense(const std::vector<double>& dense) const;

  /// Euclidean (L2) norm.
  double Norm() const;

  /// Squared L2 norm.
  double SquaredNorm() const;

  /// Sum of weights (L1 norm for non-negative vectors).
  double Sum() const;

  /// Scales all weights in place.
  void Scale(double factor);

  /// Normalizes to unit L2 norm; no-op on the zero vector.
  void L2Normalize();

  /// this += alpha * other (sparse axpy).
  void Add(const SparseVector& other, double alpha = 1.0);

  /// Squared Euclidean distance to `other`.
  double SquaredDistance(const SparseVector& other) const;

  /// Cosine similarity in [-1, 1]; 0 when either vector is zero.
  double Cosine(const SparseVector& other) const;

  /// Largest id present + 1, or 0 for the empty vector.
  Index DimensionBound() const;

  /// Number of bytes this vector occupies on the (simulated) wire:
  /// 4-byte id + 8-byte weight per entry, plus a 4-byte length header.
  /// The simulator charges exactly this for every vector shipped between
  /// peers.
  std::size_t WireSize() const { return 4 + entries_.size() * 12; }

  /// Debug rendering "{id:weight, ...}".
  std::string ToString() const;

  bool operator==(const SparseVector& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<Entry> entries_;  // sorted by Index, weights non-zero
};

/// Accumulates sparse vectors into a dense buffer; used by centroid and
/// weight-vector computations where repeated sparse merges would be O(n²).
class DenseAccumulator {
 public:
  explicit DenseAccumulator(std::size_t dim) : values_(dim, 0.0) {}

  void Add(const SparseVector& v, double alpha = 1.0);

  /// Scales all accumulated values.
  void Scale(double factor);

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// Converts the accumulated buffer to a sparse vector, dropping zeros.
  SparseVector ToSparse() const;

 private:
  std::vector<double> values_;
};

}  // namespace p2pdt

#endif  // P2PDT_COMMON_SPARSE_VECTOR_H_
