// FIG2 — driving P2PDMT as a standalone simulation toolkit: configure the
// physical network, generate structured and unstructured overlays, plug in
// churn models, distribute data, run a P2P data-mining algorithm, log
// activities and export statistics and network visualizations — every box
// of the paper's Fig. 2 architecture.
//
// Build & run:  ./build/examples/simulation_campaign

#include <cstdio>

#include "p2pdmt/activity_log.h"
#include "p2pdmt/evaluation.h"
#include "p2pdmt/experiment.h"
#include "p2pdmt/visualize.h"

using namespace p2pdt;

int main() {
  std::printf("=== P2PDMT simulation campaign (Fig. 2) ===\n\n");

  // --- 1. Configure the physical network ---------------------------------
  EnvironmentOptions eo;
  eo.num_peers = 48;
  eo.physical.min_latency = 0.02;
  eo.physical.max_latency = 0.15;
  eo.physical.bandwidth_bytes_per_sec = 512.0 * 1024.0;
  eo.physical.loss_rate = 0.01;
  // --- 2. Generate a structured (DHT) overlay with churn -----------------
  eo.overlay = OverlayType::kChord;
  eo.churn = ChurnType::kExponential;
  eo.churn_mean_online_sec = 300.0;
  eo.churn_mean_offline_sec = 60.0;
  eo.seed = 7;

  auto env = std::move(Environment::Create(eo)).value();
  env->StartDynamics();

  // --- 3. Log activities: churn transitions as they happen ---------------
  ActivityLog log;
  env->churn().AddListener([&](NodeId node, bool online) {
    log.Record(env->sim().Now(), "peer/" + std::to_string(node), "churn",
               online ? "rejoined" : "failed");
  });

  // --- 4. Distribute data over the peers ---------------------------------
  CorpusOptions co;
  co.num_users = 48;
  co.min_docs_per_user = 50;
  co.max_docs_per_user = 60;
  co.num_tags = 8;
  co.vocabulary_size = 1600;
  co.seed = 3;
  VectorizedCorpus corpus = std::move(MakeVectorizedCorpus(co)).value();
  CorpusSplit split = SplitCorpus(corpus, 0.2, 5);

  DataDistributionOptions dist;
  dist.size = SizeDistribution::kZipf;
  dist.cls = ClassDistribution::kNonIidDirichlet;
  auto peers =
      std::move(DistributeData(split.train, 48, dist, nullptr)).value();
  DistributionSummary summary =
      SummarizeDistribution(peers, corpus.dataset.num_tags());
  std::printf("data distribution: %s\n\n", summary.ToString().c_str());

  // --- 5. Run a P2P data-mining algorithm under churn --------------------
  ExperimentOptions xo;
  xo.env = eo;
  xo.algorithm = AlgorithmType::kCempar;
  Cempar cempar(env->sim(), env->net(), *env->chord(), xo.cempar);
  cempar.Setup(std::move(peers), corpus.dataset.num_tags()).ToString();

  log.Record(env->sim().Now(), "system", "train", "protocol started");
  bool trained = false;
  cempar.Train([&](Status s) {
    trained = true;
    std::printf("training quiesced at t=%.2fs: %s\n", env->sim().Now(),
                s.ToString().c_str());
  });
  env->RunUntilFlag(trained, 3600);
  log.Record(env->sim().Now(), "system", "train", "protocol quiesced");

  // --- 6. Evaluate at scheduled times while churn continues --------------
  // EvaluationSchedule records the time series; the probe runs the same
  // query burst the paper's demo would drive interactively.
  EvaluationSchedule series(env->sim(), {"micro_f1", "failed", "online"});
  std::printf("\nscheduled evaluations (accuracy over time under churn):\n");
  std::printf("%10s %8s %8s %10s\n", "sim-time", "microF1", "failed",
              "online");
  for (int round = 0; round < 5; ++round) {
    // Let churn act between evaluation points.
    env->sim().RunUntil(env->sim().Now() + 60.0);
    std::size_t n = std::min<std::size_t>(split.test.size(), 80);
    std::vector<std::vector<TagId>> truth(n), predicted(n);
    std::size_t failed = 0, outstanding = n;
    bool done = (n == 0);
    Rng rng(1000 + round);
    for (std::size_t i = 0; i < n; ++i) {
      truth[i] = split.test[i].tags;
      NodeId requester;
      int guard = 0;
      do {
        requester = rng.NextU64(48);
      } while (!env->net().IsOnline(requester) && ++guard < 100);
      cempar.Predict(requester, split.test[i].x, [&, i](P2PPrediction p) {
        if (!p.success) ++failed;
        predicted[i] = std::move(p.tags);
        if (--outstanding == 0) done = true;
      });
    }
    env->RunUntilFlag(done, 600);
    MultiLabelMetrics m =
        EvaluateMultiLabel(truth, predicted, corpus.dataset.num_tags());
    std::printf("%10.1f %8.4f %5zu/%-3zu %7zu/48\n", env->sim().Now(),
                m.micro_f1, failed, n, env->net().num_online());
    log.Record(env->sim().Now(), "system", "evaluate",
               "microF1=" + std::to_string(m.micro_f1));
    series.ScheduleAt({env->sim().Now()}, [&, m, failed] {
      return std::vector<double>{
          m.micro_f1, static_cast<double>(failed),
          static_cast<double>(env->net().num_online())};
    });
    env->sim().RunUntil(env->sim().Now());  // flush the probe event
    // Periodic self-healing, as a deployed system would do.
    bool repaired = false;
    cempar.RepairRound([&] { repaired = true; });
    env->RunUntilFlag(repaired, 600);
  }

  // --- 7. Export statistics, logs and visualizations ---------------------
  std::printf("\nfinal network statistics:\n%s",
              env->net().stats().ToString().c_str());
  std::printf("\nchurn events observed: %zu failures, %zu rejoins\n",
              static_cast<std::size_t>(env->churn().num_failures()),
              static_cast<std::size_t>(env->churn().num_rejoins()));

  series.WriteCsv("campaign_timeseries.csv").ToString();
  std::printf("[wrote campaign_timeseries.csv (%zu evaluation rows)]\n",
              series.rows().size());
  log.WriteCsv("campaign_activity.csv").ToString();
  WriteDotFile(ChordToDot(*env->chord(), env->net()), "campaign_chord.dot")
      .ToString();
  std::printf("\n[wrote campaign_activity.csv (%zu events) and "
              "campaign_chord.dot]\n",
              log.size());

  // Bonus: an unstructured overlay of the same size, for visual contrast.
  {
    Simulator sim2;
    PhysicalNetwork net2(sim2, eo.physical);
    net2.AddNodes(48);
    UnstructuredOverlay flood(sim2, net2, {});
    for (NodeId i = 0; i < 48; ++i) flood.AddNode(i);
    WriteDotFile(UnstructuredToDot(flood, net2),
                 "campaign_unstructured.dot")
        .ToString();
    std::printf("[wrote campaign_unstructured.dot — mean degree %.1f]\n",
                flood.MeanDegree());
  }
  std::printf("\ncampaign complete.\n");
  return 0;
}
