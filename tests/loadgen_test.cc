#include "p2pdmt/loadgen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace p2pdt {
namespace {

enum class StubMode { kEcho, kShedFirstCall, kShedAlways };

/// Deterministic in-sim classifier double: answers every request with fixed
/// tags after a fixed delay, optionally shedding (typed overload reject)
/// per mode. Records enough to assert what the generator asked for.
class StubClassifier : public P2PClassifier {
 public:
  StubClassifier(Simulator& sim, double delay, StubMode mode = StubMode::kEcho)
      : sim_(sim), delay_(delay), mode_(mode) {}

  Status Setup(std::vector<MultiLabelDataset>, TagId) override {
    return Status::OK();
  }
  void Train(std::function<void(Status)> done) override { done(Status::OK()); }
  std::string name() const override { return "stub"; }

  void Predict(NodeId requester, const SparseVector& x,
               std::function<void(P2PPrediction)> done) override {
    const std::size_t call = ++calls_;
    requested_.push_back(&x);
    const int now_inflight = ++inflight_[requester];
    max_inflight_ = std::max(max_inflight_, now_inflight);
    sim_.Schedule(delay_, [this, requester, call, done = std::move(done)] {
      --inflight_[requester];
      P2PPrediction out;
      const bool shed =
          mode_ == StubMode::kShedAlways ||
          (mode_ == StubMode::kShedFirstCall && call == 1);
      if (shed) {
        out.success = false;
        out.overloaded = true;
      } else {
        out.tags = {1};
        out.scores = {0.9};
      }
      done(std::move(out));
    });
  }

  std::size_t calls() const { return calls_; }
  const std::vector<const SparseVector*>& requested() const {
    return requested_;
  }
  int max_inflight() const { return max_inflight_; }

 private:
  Simulator& sim_;
  double delay_;
  StubMode mode_;
  std::size_t calls_ = 0;
  std::vector<const SparseVector*> requested_;
  std::map<NodeId, int> inflight_;
  int max_inflight_ = 0;
};

struct Catalog {
  std::vector<SparseVector> storage;
  std::vector<const SparseVector*> docs;

  explicit Catalog(std::size_t n) {
    storage.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      SparseVector v;
      v.PushBack(static_cast<uint32_t>(i), 1.0);
      storage.push_back(std::move(v));
    }
    for (const SparseVector& v : storage) docs.push_back(&v);
  }
};

LoadGenResult RunLoad(Simulator& sim, StubClassifier& stub,
                      const Catalog& catalog, LoadGenOptions options,
                      std::size_t num_requesters = 4) {
  MetricsRegistry metrics;
  std::vector<NodeId> requesters;
  for (std::size_t i = 0; i < num_requesters; ++i) requesters.push_back(i);
  SessionLoadGenerator gen(sim, stub, options, catalog.docs, requesters,
                           metrics);
  LoadGenResult result;
  bool done = false;
  gen.Run([&](const LoadGenResult& r) {
    result = r;
    done = true;
  });
  sim.RunUntil(1e6);
  EXPECT_TRUE(done);
  return result;
}

LoadGenOptions SmallOptions() {
  LoadGenOptions opt;
  opt.enabled = true;
  opt.sessions = 6;
  opt.min_docs = 2;
  opt.max_docs = 5;
  opt.arrival_rate = 12.0;
  opt.seed = 17;
  return opt;
}

TEST(LoadGenTest, SameSeedSameSchedule) {
  Catalog catalog(32);
  LoadGenResult a, b;
  {
    Simulator sim;
    StubClassifier stub(sim, 0.01);
    a = RunLoad(sim, stub, catalog, SmallOptions());
  }
  {
    Simulator sim;
    StubClassifier stub(sim, 0.01);
    b = RunLoad(sim, stub, catalog, SmallOptions());
  }
  EXPECT_GT(a.offered, 0u);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);

  LoadGenOptions other = SmallOptions();
  other.seed = 18;
  Simulator sim;
  StubClassifier stub(sim, 0.01);
  LoadGenResult c = RunLoad(sim, stub, catalog, other);
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

TEST(LoadGenTest, CompletesEveryOfferedRequest) {
  Catalog catalog(32);
  Simulator sim;
  StubClassifier stub(sim, 0.01);
  LoadGenOptions opt = SmallOptions();
  LoadGenResult r = RunLoad(sim, stub, catalog, opt);
  // Session lengths were drawn from [min_docs, max_docs].
  EXPECT_GE(r.offered, opt.sessions * opt.min_docs);
  EXPECT_LE(r.offered, opt.sessions * opt.max_docs);
  EXPECT_EQ(r.completed, r.offered);
  EXPECT_EQ(r.ok, r.offered);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(stub.calls(), r.offered);
  EXPECT_GT(r.makespan, 0.0);
}

TEST(LoadGenTest, SloSeparatesFastFromSlowAnswers) {
  Catalog catalog(16);
  LoadGenOptions opt = SmallOptions();
  opt.slo_latency = 1.0;
  {
    Simulator sim;
    StubClassifier stub(sim, 0.01);  // fast: everything inside SLO
    LoadGenResult r = RunLoad(sim, stub, catalog, opt);
    EXPECT_EQ(r.within_slo, r.completed);
    EXPECT_GT(r.goodput_within_slo, 0.0);
    EXPECT_LE(r.p99_latency, 1.0);
  }
  {
    Simulator sim;
    StubClassifier stub(sim, 2.5);  // slow: everything blows the SLO
    LoadGenResult r = RunLoad(sim, stub, catalog, opt);
    EXPECT_EQ(r.within_slo, 0u);
    EXPECT_DOUBLE_EQ(r.goodput_within_slo, 0.0);
    EXPECT_GE(r.max_latency, 2.5);
    EXPECT_GE(r.p50_latency, 1.0);
  }
}

TEST(LoadGenTest, FlashCrowdTargetsHotDocuments) {
  Catalog catalog(64);
  LoadGenOptions opt = SmallOptions();
  opt.sessions = 8;
  opt.min_docs = 5;
  opt.max_docs = 5;
  FlashCrowdBurst burst;
  burst.start = 0.0;
  burst.duration = 1e9;  // covers the whole run
  burst.rate_multiplier = 1.0;
  burst.hot_fraction = 1.0;
  burst.hot_docs = 3;
  opt.bursts = {burst};

  Simulator sim;
  StubClassifier stub(sim, 0.01);
  LoadGenResult r = RunLoad(sim, stub, catalog, opt);
  EXPECT_EQ(r.completed, r.offered);
  ASSERT_EQ(stub.requested().size(), r.offered);
  for (const SparseVector* doc : stub.requested()) {
    const auto it =
        std::find(catalog.docs.begin(), catalog.docs.end(), doc);
    ASSERT_NE(it, catalog.docs.end());
    EXPECT_LT(static_cast<std::size_t>(it - catalog.docs.begin()), 3u);
  }
}

TEST(LoadGenTest, RetriesOnceAfterOverloadReject) {
  Catalog catalog(4);
  Simulator sim;
  StubClassifier stub(sim, 0.01, StubMode::kShedFirstCall);
  LoadGenOptions opt;
  opt.enabled = true;
  opt.sessions = 1;
  opt.min_docs = 1;
  opt.max_docs = 1;
  opt.arrival_rate = 1.0;
  opt.max_retries = 1;
  opt.retry_backoff = 0.5;
  LoadGenResult r = RunLoad(sim, stub, catalog, opt);
  EXPECT_EQ(r.offered, 1u);
  EXPECT_EQ(r.shed, 1u);
  EXPECT_EQ(r.retries, 1u);
  EXPECT_EQ(r.completed, 1u);
  EXPECT_EQ(r.ok, 1u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(stub.calls(), 2u);
  // The retry waited for the backoff, so total latency includes it.
  EXPECT_GE(r.max_latency, opt.retry_backoff);
}

TEST(LoadGenTest, GivesUpAfterRetryBudget) {
  Catalog catalog(4);
  Simulator sim;
  StubClassifier stub(sim, 0.01, StubMode::kShedAlways);
  LoadGenOptions opt;
  opt.enabled = true;
  opt.sessions = 1;
  opt.min_docs = 1;
  opt.max_docs = 1;
  opt.arrival_rate = 1.0;
  opt.max_retries = 2;
  LoadGenResult r = RunLoad(sim, stub, catalog, opt);
  EXPECT_EQ(r.offered, 1u);
  EXPECT_EQ(r.retries, 2u);
  EXPECT_EQ(r.shed, 3u);  // initial + both retries observed a shed
  EXPECT_EQ(r.completed, 1u);
  EXPECT_EQ(r.failed, 1u);
  EXPECT_EQ(r.ok, 0u);
  EXPECT_EQ(r.within_slo, 0u);
}

TEST(LoadGenTest, ClosedLoopNeverOverlapsWithinSession) {
  Catalog catalog(16);
  LoadGenOptions opt;
  opt.enabled = true;
  opt.closed_loop = true;
  opt.sessions = 3;
  opt.min_docs = 4;
  opt.max_docs = 6;
  opt.think_time = 0.01;
  Simulator sim;
  StubClassifier stub(sim, 0.2);
  // 3 sessions on 3 distinct requesters: closed-loop sessions wait for the
  // answer, so no requester ever has two requests in flight.
  LoadGenResult r = RunLoad(sim, stub, catalog, opt, /*num_requesters=*/3);
  EXPECT_EQ(r.completed, r.offered);
  EXPECT_EQ(stub.max_inflight(), 1);
}

TEST(LoadGenTest, OpenLoopOverloadsASlowServer) {
  Catalog catalog(16);
  LoadGenOptions opt;
  opt.enabled = true;
  opt.sessions = 4;
  opt.min_docs = 8;
  opt.max_docs = 8;
  opt.arrival_rate = 100.0;  // far faster than the 0.2s service time
  Simulator sim;
  StubClassifier stub(sim, 0.2);
  LoadGenResult r = RunLoad(sim, stub, catalog, opt, /*num_requesters=*/4);
  EXPECT_EQ(r.completed, r.offered);
  // Open loop keeps issuing regardless of completions — requests pile up.
  EXPECT_GT(stub.max_inflight(), 1);
}

}  // namespace
}  // namespace p2pdt
