#include "p2psim/simulator.h"

#include <algorithm>

namespace p2pdt {

void Simulator::Schedule(SimTime delay, Callback fn) {
  ScheduleAt(now_ + std::max(delay, 0.0), std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, Callback fn) {
  queue_.Push(std::max(when, now_), std::move(fn));
}

Simulator::EventId Simulator::ScheduleCancelable(SimTime delay, Callback fn) {
  const EventId id =
      queue_.Push(now_ + std::max(delay, 0.0), std::move(fn));
  cancelable_.insert(id);
  return id;
}

bool Simulator::Cancel(EventId id) {
  // Only ids still tracked are pending: ran events are erased in Step and
  // cancelled ones here, so CalendarQueue's cancel-once contract holds.
  if (cancelable_.erase(id) == 0) return false;
  queue_.Cancel(id);
  return true;
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // The calendar queue hands the event out by value — the callback moves
  // out cleanly (no const_cast, no copy), so move-only payloads work.
  SimEvent ev = queue_.PopMin();
  now_ = ev.time;
  ++executed_;
  if (!cancelable_.empty()) cancelable_.erase(ev.seq);
  ev.fn();
  return true;
}

std::size_t Simulator::RunUntil(SimTime until) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.MinTime() <= until) {
    Step();
    ++count;
  }
  if (now_ < until) now_ = until;
  return count;
}

std::size_t Simulator::RunAll() {
  std::size_t count = 0;
  while (Step()) ++count;
  return count;
}

}  // namespace p2pdt
