# Empty compiler generated dependencies file for doc_tagger_test.
# This may be replaced when dependencies are built.
