#ifndef P2PDT_P2PSIM_STATS_H_
#define P2PDT_P2PSIM_STATS_H_

#include <array>
#include <cstdint>
#include <string>

namespace p2pdt {

/// Classification of simulated messages, so experiments can break
/// communication cost down by purpose (training vs. prediction vs. overlay
/// maintenance) the way the CEMPaR/PACE papers report it.
enum class MessageType : uint8_t {
  kOverlayMaintenance = 0,  // joins, stabilization, finger fixes
  kLookup,                  // DHT routing hops
  kModelUpload,             // CEMPaR: SVs to super-peer
  kModelBroadcast,          // PACE: linear models + centroids to all peers
  kPredictionRequest,       // untagged vector sent for tagging
  kPredictionResponse,      // predicted tags coming back
  kDataTransfer,            // raw training data (centralized baseline)
  kGossip,                  // unstructured overlay dissemination
  kCount,                   // sentinel
};

const char* MessageTypeToString(MessageType type);

/// Message/byte accounting for one simulation run. The headline
/// "communication cost" numbers in the experiments come straight from here.
class NetworkStats {
 public:
  static constexpr std::size_t kNumTypes =
      static_cast<std::size_t>(MessageType::kCount);

  void RecordSend(MessageType type, std::size_t bytes);
  void RecordDelivery(MessageType type);
  void RecordDrop(MessageType type);

  uint64_t messages_sent() const { return total_sent_; }
  uint64_t messages_delivered() const { return total_delivered_; }
  uint64_t messages_dropped() const { return total_dropped_; }
  uint64_t bytes_sent() const { return total_bytes_; }

  uint64_t messages_sent(MessageType type) const {
    return sent_[static_cast<std::size_t>(type)];
  }
  uint64_t bytes_sent(MessageType type) const {
    return bytes_[static_cast<std::size_t>(type)];
  }
  uint64_t dropped(MessageType type) const {
    return dropped_[static_cast<std::size_t>(type)];
  }

  void Reset();

  /// Multi-line per-type breakdown.
  std::string ToString() const;

 private:
  std::array<uint64_t, kNumTypes> sent_{};
  std::array<uint64_t, kNumTypes> bytes_{};
  std::array<uint64_t, kNumTypes> delivered_{};
  std::array<uint64_t, kNumTypes> dropped_{};
  uint64_t total_sent_ = 0;
  uint64_t total_delivered_ = 0;
  uint64_t total_dropped_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PSIM_STATS_H_
