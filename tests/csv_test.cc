#include "common/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(CsvEscapeTest, PlainFieldUnchanged) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscapeTest, QuotesCommasAndNewlines) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, HeaderAndRows) {
  CsvWriter csv({"x", "y"});
  EXPECT_TRUE(csv.AddRow({"1", "2"}).ok());
  EXPECT_TRUE(csv.AddRow({"3", "4"}).ok());
  EXPECT_EQ(csv.ToString(), "x,y\n1,2\n3,4\n");
  EXPECT_EQ(csv.num_rows(), 2u);
  EXPECT_EQ(csv.num_columns(), 2u);
}

TEST(CsvWriterTest, RejectsWrongWidth) {
  CsvWriter csv({"a", "b"});
  Status s = csv.AddRow({"only-one"});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(csv.num_rows(), 0u);
}

TEST(CsvWriterTest, NumericRowFormatting) {
  CsvWriter csv({"v", "w"});
  ASSERT_TRUE(csv.AddNumericRow({1.5, 0.000012}).ok());
  EXPECT_EQ(csv.ToString(), "v,w\n1.5,1.2e-05\n");
}

TEST(CsvWriterTest, WriteFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/p2pdt_csv_test.csv";
  CsvWriter csv({"name"});
  ASSERT_TRUE(csv.AddRow({"value,with,commas"}).ok());
  ASSERT_TRUE(csv.WriteFile(path).ok());
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "name\n\"value,with,commas\"\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, WriteFileBadPathFails) {
  CsvWriter csv({"a"});
  EXPECT_EQ(csv.WriteFile("/nonexistent_dir_xyz/file.csv").code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace p2pdt
