#ifndef P2PDT_COMMON_THREAD_POOL_H_
#define P2PDT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace p2pdt {

/// Fixed-size worker pool with a bounded task queue and a dynamically
/// scheduled ParallelFor.
///
/// The pool exists for the one embarrassingly-parallel hot loop in this
/// codebase: the (peer × tag) local-training grid. Per-tag work is heavily
/// skewed (tag popularity is Zipf-like), so ParallelFor hands out small
/// chunks from a shared counter — a work-queue form of work stealing —
/// instead of static range splits.
///
/// Determinism contract: the pool never introduces randomness of its own.
/// Callers must make every iteration of a ParallelFor body a pure function
/// of its index (seed RNGs from data identity such as (peer, tag), never
/// from thread or chunk identity) and write only to per-index slots; under
/// that contract results are bit-identical for every pool size, including
/// the serial (zero-worker) pool.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (0 = everything runs inline on the
  /// calling thread). `max_queued` bounds the task queue; Submit blocks
  /// while the queue is full so bursty producers cannot accumulate
  /// unbounded closures.
  explicit ThreadPool(std::size_t num_workers, std::size_t max_queued = 256);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task. Blocks while the queue is full. With
  /// zero workers the task runs inline before Submit returns. Tasks must
  /// not throw; a throwing task is caught and logged.
  void Submit(std::function<void()> task);

  /// Runs `body(lo, hi)` over subranges of [begin, end) in chunks of
  /// `chunk` iterations, using the calling thread plus up to
  /// `max_threads - 1` workers (max_threads = 0 means "all workers").
  /// Blocks until every iteration completed. Chunks are claimed from a
  /// shared atomic counter, so skewed per-iteration cost balances
  /// dynamically. If any chunk throws, the exception from the
  /// lowest-indexed throwing chunk is rethrown here (deterministic
  /// regardless of scheduling).
  ///
  /// Nested calls from inside a pool worker run inline (serial) — this
  /// keeps per-peer tasks free to call parallel trainers without deadlock
  /// or oversubscription.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t chunk,
                   const std::function<void(std::size_t, std::size_t)>& body,
                   std::size_t max_threads = 0);

  /// True when called from one of this process's pool worker threads.
  static bool InWorker();

  /// Process-wide pool shared by the ML layer. Sized by the P2PDT_THREADS
  /// environment variable on first use (default: hardware_concurrency;
  /// 1 = fully serial). The value T is total concurrency — the global pool
  /// holds T-1 workers and ParallelFor callers contribute the Tth thread.
  static ThreadPool& Global();

  /// The resolved global concurrency T (>= 1).
  static std::size_t GlobalConcurrency();

  /// Overrides the global concurrency (0 = re-resolve from the environment)
  /// and rebuilds the global pool. Not safe while tasks are in flight;
  /// intended for tests and benchmark sweeps.
  static void SetGlobalConcurrency(std::size_t threads);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  std::size_t max_queued_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Convenience wrapper over the global pool: `threads` = 1 runs serially
/// with zero pool involvement, 0 uses the full global concurrency, N > 1
/// caps concurrency at N (never exceeding the global pool size). This is
/// the knob every parallelized trainer exposes as `num_threads`.
void ParallelFor(std::size_t begin, std::size_t end, std::size_t chunk,
                 std::size_t threads,
                 const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace p2pdt

#endif  // P2PDT_COMMON_THREAD_POOL_H_
