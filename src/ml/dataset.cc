#include "ml/dataset.h"

#include <algorithm>
#include <cassert>

namespace p2pdt {

bool MultiLabelExample::HasTag(TagId tag) const {
  return std::binary_search(tags.begin(), tags.end(), tag);
}

void MultiLabelDataset::Add(MultiLabelExample example) {
  std::sort(example.tags.begin(), example.tags.end());
  example.tags.erase(std::unique(example.tags.begin(), example.tags.end()),
                     example.tags.end());
  for (TagId t : example.tags) {
    if (t >= num_tags_) num_tags_ = t + 1;
  }
  examples_.push_back(std::move(example));
}

std::vector<Example> MultiLabelDataset::OneAgainstAll(TagId tag) const {
  std::vector<Example> out;
  out.reserve(examples_.size());
  for (const auto& ex : examples_) {
    out.push_back({ex.x, ex.HasTag(tag) ? 1.0 : -1.0});
  }
  return out;
}

std::vector<std::size_t> MultiLabelDataset::TagCounts() const {
  std::vector<std::size_t> counts(num_tags_, 0);
  for (const auto& ex : examples_) {
    // Tags beyond the declared universe (a mis-sized or hostile dataset)
    // must not write out of bounds.
    for (TagId t : ex.tags) {
      if (t < counts.size()) ++counts[t];
    }
  }
  return counts;
}

std::pair<MultiLabelDataset, MultiLabelDataset> MultiLabelDataset::Split(
    double train_fraction, Rng& rng) const {
  assert(train_fraction >= 0.0 && train_fraction <= 1.0);
  std::vector<std::size_t> order(examples_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  std::size_t n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(examples_.size()) + 0.5);
  MultiLabelDataset train(num_tags_), test(num_tags_);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& ex = examples_[order[i]];
    if (i < n_train) {
      train.Add(ex);
    } else {
      test.Add(ex);
    }
  }
  return {std::move(train), std::move(test)};
}

void MultiLabelDataset::Merge(const MultiLabelDataset& other) {
  num_tags_ = std::max(num_tags_, other.num_tags_);
  examples_.insert(examples_.end(), other.examples_.begin(),
                   other.examples_.end());
}

std::size_t MultiLabelDataset::WireSize() const {
  std::size_t bytes = 0;
  for (const auto& ex : examples_) {
    bytes += ex.x.WireSize() + 4 + 4 * ex.tags.size();
  }
  return bytes;
}

void FeatureRemapper::Observe(const SparseVector& v) {
  for (const auto& [id, _] : v.entries()) {
    auto [it, inserted] = global_to_compact_.try_emplace(
        id, static_cast<uint32_t>(compact_to_global_.size()));
    if (inserted) compact_to_global_.push_back(id);
  }
}

SparseVector FeatureRemapper::ToCompact(const SparseVector& v) const {
  std::vector<SparseVector::Entry> entries;
  entries.reserve(v.nnz());
  for (const auto& [id, w] : v.entries()) {
    auto it = global_to_compact_.find(id);
    if (it != global_to_compact_.end()) entries.emplace_back(it->second, w);
  }
  return SparseVector::FromPairs(std::move(entries));
}

SparseVector FeatureRemapper::ToGlobal(const SparseVector& v) const {
  std::vector<SparseVector::Entry> entries;
  entries.reserve(v.nnz());
  for (const auto& [id, w] : v.entries()) {
    assert(id < compact_to_global_.size());
    entries.emplace_back(compact_to_global_[id], w);
  }
  return SparseVector::FromPairs(std::move(entries));
}

SparseVector FeatureRemapper::DenseToGlobal(
    const std::vector<double>& dense) const {
  std::vector<SparseVector::Entry> entries;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0.0) {
      assert(i < compact_to_global_.size());
      entries.emplace_back(compact_to_global_[i], dense[i]);
    }
  }
  return SparseVector::FromPairs(std::move(entries));
}

}  // namespace p2pdt
