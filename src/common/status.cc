#include "common/status.h"

namespace p2pdt {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kRejectedModel:
      return "REJECTED_MODEL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace p2pdt
