# Empty compiler generated dependencies file for cempar_test.
# This may be replaced when dependencies are built.
