#include "p2psim/churn.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(ChurnModelTest, NoChurnNeverEnds) {
  NoChurn model;
  Rng rng(1);
  EXPECT_GE(model.NextOnlineDuration(rng), 1e17);
  EXPECT_DOUBLE_EQ(model.NextOfflineDuration(rng), 0.0);
  EXPECT_EQ(model.name(), "none");
}

TEST(ChurnModelTest, ExponentialMeansMatch) {
  ExponentialChurn model(100.0, 25.0);
  Rng rng(2);
  double on = 0, off = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    on += model.NextOnlineDuration(rng);
    off += model.NextOfflineDuration(rng);
  }
  EXPECT_NEAR(on / n, 100.0, 3.0);
  EXPECT_NEAR(off / n, 25.0, 1.0);
}

TEST(ChurnModelTest, ParetoMeanAndMinimum) {
  ParetoChurn model(90.0, 10.0, 1.5);
  Rng rng(3);
  double sum = 0, min_seen = 1e18;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double d = model.NextOnlineDuration(rng);
    sum += d;
    min_seen = std::min(min_seen, d);
  }
  // xm = mean*(a-1)/a = 30; heavy tail → generous tolerance on the mean.
  EXPECT_NEAR(min_seen, 30.0, 1.0);
  EXPECT_NEAR(sum / n, 90.0, 10.0);
}

TEST(ChurnDriverTest, NoChurnSchedulesNothing) {
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(10);
  ChurnDriver driver(sim, net, std::make_shared<NoChurn>());
  driver.Start();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(ChurnDriverTest, TransitionsToggleAndNotify) {
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(20);
  ChurnDriver driver(sim, net,
                     std::make_shared<ExponentialChurn>(10.0, 5.0), 77);
  int offline_events = 0, online_events = 0;
  driver.AddListener([&](NodeId, bool online) {
    (online ? online_events : offline_events) += 1;
  });
  driver.Start();
  sim.RunUntil(100.0);

  EXPECT_GT(driver.num_failures(), 0u);
  EXPECT_GT(driver.num_rejoins(), 0u);
  EXPECT_EQ(driver.num_failures(),
            static_cast<uint64_t>(offline_events));
  EXPECT_EQ(driver.num_rejoins(), static_cast<uint64_t>(online_events));
  // Transitions alternate per node, so failures ≥ rejoins ≥ failures - N.
  EXPECT_GE(driver.num_failures(), driver.num_rejoins());
  EXPECT_LE(driver.num_failures() - driver.num_rejoins(), 20u);
}

TEST(ChurnDriverTest, SteadyStateOnlineFractionMatchesTheory) {
  // With mean online 30 and offline 10, availability → 0.75.
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(200);
  ChurnDriver driver(sim, net, std::make_shared<ExponentialChurn>(30.0, 10.0),
                     5);
  driver.Start();
  sim.RunUntil(300.0);  // burn-in
  double sum = 0;
  int samples = 0;
  for (int i = 0; i < 50; ++i) {
    sim.RunUntil(sim.Now() + 5.0);
    sum += static_cast<double>(net.num_online()) / 200.0;
    ++samples;
  }
  EXPECT_NEAR(sum / samples, 0.75, 0.06);
}

TEST(ChurnDriverTest, DeterministicInSeed) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    PhysicalNetwork net(sim);
    net.AddNodes(30);
    ChurnDriver driver(sim, net,
                       std::make_shared<ExponentialChurn>(5.0, 5.0), seed);
    driver.Start();
    sim.RunUntil(50.0);
    std::vector<bool> state;
    for (NodeId n = 0; n < 30; ++n) state.push_back(net.IsOnline(n));
    return std::make_pair(driver.num_failures(), state);
  };
  auto [f1, s1] = run(11);
  auto [f2, s2] = run(11);
  auto [f3, s3] = run(12);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(s1, s2);
  EXPECT_TRUE(f1 != f3 || s1 != s3);
}

}  // namespace
}  // namespace p2pdt
