#include "p2pdmt/visualize.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(VisualizeTest, UnstructuredDotHasNodesAndEdges) {
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(10);
  UnstructuredOverlay overlay(sim, net, {});
  for (NodeId n = 0; n < 10; ++n) overlay.AddNode(n);
  net.SetOnline(3, false);

  std::string dot = UnstructuredToDot(overlay, net);
  EXPECT_NE(dot.find("graph unstructured"), std::string::npos);
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_NE(dot.find(" -- "), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // offline node
}

TEST(VisualizeTest, UnstructuredEdgesEmittedOnce) {
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(6);
  UnstructuredOverlay overlay(sim, net, {});
  for (NodeId n = 0; n < 6; ++n) overlay.AddNode(n);
  std::string dot = UnstructuredToDot(overlay, net);
  std::size_t edges_in_dot = 0;
  for (std::size_t at = dot.find(" -- "); at != std::string::npos;
       at = dot.find(" -- ", at + 1)) {
    ++edges_in_dot;
  }
  std::size_t degree_sum = 0;
  for (NodeId n = 0; n < 6; ++n) degree_sum += overlay.Neighbors(n).size();
  EXPECT_EQ(edges_in_dot, degree_sum / 2);
}

TEST(VisualizeTest, ChordDotHasRingEdges) {
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(12);
  ChordOverlay chord(sim, net, {});
  for (NodeId n = 0; n < 12; ++n) chord.AddNode(n);
  chord.Bootstrap();
  std::string dot = ChordToDot(chord, net);
  EXPECT_NE(dot.find("digraph chord"), std::string::npos);
  EXPECT_NE(dot.find("penwidth=2"), std::string::npos);      // successor
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);    // fingers
}

TEST(VisualizeTest, WriteDotFile) {
  std::string path = ::testing::TempDir() + "/p2pdt_viz.dot";
  ASSERT_TRUE(WriteDotFile("graph g {}\n", path).ok());
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "graph g {}\n");
  std::remove(path.c_str());
  EXPECT_FALSE(WriteDotFile("x", "/nonexistent_dir_xyz/f.dot").ok());
}

}  // namespace
}  // namespace p2pdt
