// Ablations of the design choices DESIGN.md calls out:
//
//   A1  CEMPaR cascade fan-in        — merge-tree width vs quality/SV count
//   A2  CEMPaR regions per tag       — 1 home vs R regional homes per tag
//   A3  PACE ensemble size (top-k)   — selective vs broad voting
//   A4  PACE clusters per peer       — centroid granularity
//   A5  hashed-lexicon width         — feature collisions vs accuracy
//
// Each row is a full simulated experiment (64 peers, by-user data).

#include <cstdio>

#include "bench/bench_util.h"

using namespace p2pdt_bench;

namespace {

Result<ExperimentResult> RunWith(const VectorizedCorpus& corpus,
                                 ExperimentOptions opt) {
  opt.max_test_documents = 250;
  return RunExperiment(corpus, opt);
}

}  // namespace

int main() {
  std::printf("=== Ablations ===\n\n");
  const VectorizedCorpus& corpus = SharedCorpus(64, 12);
  CsvWriter csv({"ablation", "setting", "micro_f1", "train_MiB", "extra"});

  // A1: cascade fan-in.
  std::printf("-- A1: CEMPaR cascade fan-in --\n");
  std::printf("%8s %10s %12s\n", "fan-in", "microF1", "train(MiB)");
  for (std::size_t fan_in : {2u, 4u, 8u, 16u}) {
    ExperimentOptions opt = MacroDefaults(AlgorithmType::kCempar, 64);
    opt.cempar.cascade_fan_in = fan_in;
    Result<ExperimentResult> r = RunWith(corpus, opt);
    if (!r.ok()) continue;
    std::printf("%8zu %10.4f %12.2f\n", fan_in, r->metrics.micro_f1,
                r->train_bytes / 1048576.0);
    csv.AddRow({"cascade_fan_in", std::to_string(fan_in),
                std::to_string(r->metrics.micro_f1),
                std::to_string(r->train_bytes / 1048576.0), ""});
  }

  // A2: regions per tag.
  std::printf("\n-- A2: CEMPaR regions per tag --\n");
  std::printf("%8s %10s %12s %12s\n", "regions", "microF1", "train(MiB)",
              "pred(MiB)");
  for (std::size_t regions : {1u, 2u, 4u}) {
    ExperimentOptions opt = MacroDefaults(AlgorithmType::kCempar, 64);
    opt.cempar.regions_per_tag = regions;
    Result<ExperimentResult> r = RunWith(corpus, opt);
    if (!r.ok()) continue;
    std::printf("%8zu %10.4f %12.2f %12.2f\n", regions, r->metrics.micro_f1,
                r->train_bytes / 1048576.0, r->predict_bytes / 1048576.0);
    csv.AddRow({"regions_per_tag", std::to_string(regions),
                std::to_string(r->metrics.micro_f1),
                std::to_string(r->train_bytes / 1048576.0),
                std::to_string(r->predict_bytes / 1048576.0)});
  }

  // A3: PACE top-k.
  std::printf("\n-- A3: PACE ensemble size (top-k of 64 models) --\n");
  std::printf("%8s %10s\n", "top-k", "microF1");
  for (std::size_t k : {1u, 4u, 8u, 12u, 24u, 64u}) {
    ExperimentOptions opt = MacroDefaults(AlgorithmType::kPace, 64);
    opt.pace.top_k = k;
    Result<ExperimentResult> r = RunWith(corpus, opt);
    if (!r.ok()) continue;
    std::printf("%8zu %10.4f\n", k, r->metrics.micro_f1);
    csv.AddRow({"pace_top_k", std::to_string(k),
                std::to_string(r->metrics.micro_f1), "", ""});
  }

  // A4: PACE clusters per peer.
  std::printf("\n-- A4: PACE centroids per peer --\n");
  std::printf("%9s %10s %12s\n", "clusters", "microF1", "train(MiB)");
  for (std::size_t clusters : {1u, 4u, 8u, 16u}) {
    ExperimentOptions opt = MacroDefaults(AlgorithmType::kPace, 64);
    opt.pace.clustering.k = clusters;
    Result<ExperimentResult> r = RunWith(corpus, opt);
    if (!r.ok()) continue;
    std::printf("%9zu %10.4f %12.2f\n", clusters, r->metrics.micro_f1,
                r->train_bytes / 1048576.0);
    csv.AddRow({"pace_clusters", std::to_string(clusters),
                std::to_string(r->metrics.micro_f1),
                std::to_string(r->train_bytes / 1048576.0), ""});
  }

  // A5: hashed-lexicon width (feature collisions). Rebuild the corpus at
  // each width so the vectors actually change.
  std::printf("\n-- A5: hashed-lexicon width (CEMPaR accuracy) --\n");
  std::printf("%10s %10s\n", "dims", "microF1");
  for (uint32_t bits : {8u, 10u, 12u, 14u, 18u}) {
    CorpusOptions co;
    co.num_users = 64;
    co.min_docs_per_user = 50;
    co.max_docs_per_user = 80;
    co.num_tags = 12;
    co.vocabulary_size = 3000;
    co.seed = 20100913;
    Result<GeneratedCorpus> raw = GenerateCorpus(co);
    if (!raw.ok()) continue;
    PreprocessorOptions po;
    po.hashed_dimensions = 1u << bits;
    Preprocessor pre(po);
    Result<VectorizedCorpus> vec = VectorizeCorpus(raw.value(), pre);
    if (!vec.ok()) continue;
    ExperimentOptions opt = MacroDefaults(AlgorithmType::kCempar, 64);
    Result<ExperimentResult> r = RunWith(vec.value(), opt);
    if (!r.ok()) continue;
    std::printf("%10u %10.4f\n", 1u << bits, r->metrics.micro_f1);
    csv.AddRow({"hashed_dims", std::to_string(1u << bits),
                std::to_string(r->metrics.micro_f1), "", ""});
  }

  WriteResults(csv, "ablations.csv");
  return 0;
}
