#ifndef P2PDT_ML_DATASET_H_
#define P2PDT_ML_DATASET_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/sparse_vector.h"

namespace p2pdt {

/// Tag identifier. Tags are open-vocabulary strings at the application
/// layer (core/); the learning layer works on dense integer ids.
using TagId = uint32_t;

/// One binary training example: feature vector and label y ∈ {-1, +1}.
struct Example {
  SparseVector x;
  double y = 1.0;
};

/// One multi-label example: a document vector and the set of tags assigned
/// to it (sorted, unique).
struct MultiLabelExample {
  SparseVector x;
  std::vector<TagId> tags;

  bool HasTag(TagId tag) const;
};

/// A multi-label dataset with a known tag-universe size.
///
/// This is the paper's D = {d_1, ..., d_l}: what a single peer holds
/// locally, or the pooled corpus in the centralized baseline.
class MultiLabelDataset {
 public:
  MultiLabelDataset() = default;
  explicit MultiLabelDataset(TagId num_tags) : num_tags_(num_tags) {}

  void Add(MultiLabelExample example);

  std::size_t size() const { return examples_.size(); }
  bool empty() const { return examples_.empty(); }
  TagId num_tags() const { return num_tags_; }
  void set_num_tags(TagId n) { num_tags_ = n; }

  const MultiLabelExample& operator[](std::size_t i) const {
    return examples_[i];
  }
  const std::vector<MultiLabelExample>& examples() const { return examples_; }

  /// Reduces to the binary one-against-all problem for `tag`: examples
  /// carrying the tag become +1, all others −1 (paper Sec. 2: "data from a
  /// target tag belongs to one class and all data from other tags belong to
  /// another class").
  std::vector<Example> OneAgainstAll(TagId tag) const;

  /// Number of examples carrying each tag.
  std::vector<std::size_t> TagCounts() const;

  /// Splits into (train, test) with the given train fraction, shuffled
  /// deterministically by `rng`. The paper's demonstration uses a 20/80
  /// split (train_fraction = 0.2).
  std::pair<MultiLabelDataset, MultiLabelDataset> Split(double train_fraction,
                                                        Rng& rng) const;

  /// Merges another dataset into this one (tag universes must agree or be
  /// resizable: num_tags becomes the max of both).
  void Merge(const MultiLabelDataset& other);

  /// Total wire size of all vectors plus tag lists — what shipping this
  /// dataset to a central site would cost.
  std::size_t WireSize() const;

 private:
  std::vector<MultiLabelExample> examples_;
  TagId num_tags_ = 0;
};

/// Flyweight view of a peer's local data: a shared immutable corpus plus
/// the indices of the examples this peer holds.
///
/// At 100k+ peers, giving every peer a materialized `MultiLabelDataset`
/// copy multiplies the corpus by the replication factor of the data
/// distribution; the shard keeps exactly one copy of every document (the
/// shared corpus, `shared_ptr<const>` so it is immutable and thread-safe to
/// read) and charges each peer only a `uint32_t` per held document.
///
/// The accessor surface mirrors the subset of MultiLabelDataset the
/// classifiers use — size/empty/operator[]/OneAgainstAll/TagCounts — and
/// every accessor returns bit-identical results to the materialized
/// equivalent (`Materialize()`), which is what keeps the flyweight engine's
/// trained models byte-for-byte equal to the legacy copy-out engine's.
class DatasetShard {
 public:
  DatasetShard() = default;
  /// View of `indices` (in order) into `corpus`. The corpus must outlive
  /// nothing — the shard shares ownership.
  DatasetShard(std::shared_ptr<const MultiLabelDataset> corpus,
               std::vector<uint32_t> indices);

  /// Wraps an already-materialized per-peer dataset (the legacy Setup path):
  /// the shard owns the data as its own single-peer corpus.
  static DatasetShard Own(MultiLabelDataset data);

  std::size_t size() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }
  TagId num_tags() const;
  /// Grows the visible tag universe (mirrors
  /// MultiLabelDataset::set_num_tags; never shrinks below the corpus').
  void set_num_tags(TagId n);

  const MultiLabelExample& operator[](std::size_t i) const {
    return (*corpus_)[indices_[i]];
  }

  /// Same reduction as MultiLabelDataset::OneAgainstAll, over the shard.
  std::vector<Example> OneAgainstAll(TagId tag) const;

  /// Same per-tag counts as MultiLabelDataset::TagCounts, over the shard.
  std::vector<std::size_t> TagCounts() const;

  /// Copies the shard out into a standalone dataset — exact same examples
  /// in the exact same order.
  MultiLabelDataset Materialize() const;

  /// Wire size of the held documents (what shipping them would cost).
  std::size_t WireSize() const;

  /// Bytes this peer's flyweight state costs *beyond* the shared corpus:
  /// the index list. This is the per-peer footprint the 100k-peer memory
  /// budget is about.
  std::size_t FootprintBytes() const {
    return sizeof(DatasetShard) + indices_.capacity() * sizeof(uint32_t);
  }

  const std::shared_ptr<const MultiLabelDataset>& corpus() const {
    return corpus_;
  }
  const std::vector<uint32_t>& indices() const { return indices_; }

 private:
  std::shared_ptr<const MultiLabelDataset> corpus_;
  std::vector<uint32_t> indices_;
  /// Visible tag universe; >= corpus num_tags (0 = follow the corpus).
  TagId num_tags_override_ = 0;
};

/// Builds a compact feature space over a set of sparse vectors so trainers
/// can use small dense arrays even when the global (hashed) feature space is
/// huge. Maps observed feature ids to [0, num_features) and back.
class FeatureRemapper {
 public:
  FeatureRemapper() = default;

  /// Observes every feature id in `v`.
  void Observe(const SparseVector& v);

  std::size_t num_features() const { return compact_to_global_.size(); }

  /// Remaps a vector into the compact space; unseen features are dropped.
  SparseVector ToCompact(const SparseVector& v) const;

  /// Remaps a compact-space vector back into the global space.
  SparseVector ToGlobal(const SparseVector& v) const;

  /// Remaps a dense compact-space weight array back to a sparse global
  /// vector.
  SparseVector DenseToGlobal(const std::vector<double>& dense) const;

 private:
  std::unordered_map<uint32_t, uint32_t> global_to_compact_;
  std::vector<uint32_t> compact_to_global_;
};

}  // namespace p2pdt

#endif  // P2PDT_ML_DATASET_H_
