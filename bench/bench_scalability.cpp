// DEMO2 — "modifying the network parameters, such as the network size"
// (paper Sec. 3): accuracy and communication cost as the number of peers
// grows from 16 to 512 on the same corpus, then the scale tier: 1k / 10k /
// 100k peers on the flyweight + calendar-queue + sharded engine, with
// wall-clock and peak-RSS recorded per row.
//
// Expected shape: accuracy roughly flat for CEMPaR / Centralized (the same
// pooled knowledge, just spread thinner per peer); PACE degrades slightly
// at scale (top-k of ever-more ever-smaller models); LocalOnly collapses as
// per-peer data shrinks. CEMPaR train bytes grow ~O(N); PACE grows ~O(N²).
//
// `--smoke` runs only the 10k-peer tier and enforces a peak-RSS ceiling —
// CI's cheap guard that the flyweight path has not regressed to per-peer
// dataset copies.

#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "common/memory.h"

using namespace p2pdt_bench;

namespace {

constexpr double kMiB = 1024.0 * 1024.0;
// Smoke ceiling for the 10k-peer tier. The shared corpus plus 10k flyweight
// peers measure well under 1 GiB; materialized per-peer copies blow far
// past this.
constexpr double kSmokeRssCeilingMib = 4096.0;

/// Scale-tier settings: sharded training, windowed dissemination, sampled
/// evaluation. Every knob is bit-identical-by-construction or
/// measurement-only, so rows stay comparable with the legacy tier.
ExperimentOptions ScaleDefaults(AlgorithmType algorithm,
                                std::size_t num_peers) {
  ExperimentOptions opt = MacroDefaults(algorithm, num_peers);
  opt.sim_shards = 8;
  opt.max_eval_peers = 64;
  opt.max_test_documents = 150;
  opt.pace.max_concurrent_broadcasts = 64;
  return opt;
}

struct RowStats {
  double wall_sec = 0.0;
  double peak_rss_mib = 0.0;
};

void PrintAndRecord(CsvWriter& csv, const ExperimentResult& r,
                    std::size_t peers, const RowStats& stats) {
  std::printf("%-12s %7zu %8.4f %12.2f %14.1f %12.2f %10.1f %10.1f\n",
              r.algorithm.c_str(), peers, r.metrics.micro_f1,
              r.train_bytes / kMiB, r.train_bytes_per_peer() / 1024.0,
              r.predict_bytes / kMiB, stats.wall_sec, stats.peak_rss_mib);
  csv.AddRow({r.algorithm, std::to_string(peers),
              std::to_string(r.metrics.micro_f1),
              std::to_string(r.train_bytes / kMiB),
              std::to_string(r.train_bytes_per_peer() / 1024.0),
              std::to_string(r.predict_bytes / kMiB),
              std::to_string(r.failed_predictions),
              std::to_string(stats.wall_sec),
              std::to_string(stats.peak_rss_mib)});
}

bool RunOne(CsvWriter& csv, const VectorizedCorpus& corpus,
            const ExperimentOptions& opt, std::size_t peers,
            RowStats* out_stats = nullptr) {
  const auto t0 = std::chrono::steady_clock::now();
  Result<ExperimentResult> r = RunExperiment(corpus, opt);
  const auto t1 = std::chrono::steady_clock::now();
  if (!r.ok()) {
    std::fprintf(stderr, "%s/%zu failed: %s\n",
                 AlgorithmTypeToString(opt.algorithm), peers,
                 r.status().ToString().c_str());
    return false;
  }
  RowStats stats;
  stats.wall_sec = std::chrono::duration<double>(t1 - t0).count();
  stats.peak_rss_mib = static_cast<double>(PeakRssBytes()) / kMiB;
  PrintAndRecord(csv, r.value(), peers, stats);
  if (out_stats != nullptr) *out_stats = stats;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::printf("=== DEMO2: scalability with network size ===\n\n");
  const VectorizedCorpus& corpus = SharedCorpus(/*num_users=*/512,
                                                /*num_tags=*/16);
  CsvWriter csv({"algorithm", "peers", "micro_f1", "train_MiB",
                 "train_KiB_per_peer", "predict_MiB", "failed",
                 "wall_clock_sec", "peak_rss_mib"});
  std::printf("%-12s %7s %8s %12s %14s %12s %10s %10s\n", "algorithm",
              "peers", "microF1", "train(MiB)", "KiB/peer", "pred(MiB)",
              "wall(s)", "rss(MiB)");

  if (smoke) {
    // CI guard: one 10k-peer run per protocol under the scale knobs, then
    // assert the process footprint. Peak RSS is process-wide and monotone,
    // so the ceiling bounds the sum of both runs plus the corpus.
    bool ok = true;
    for (AlgorithmType algo : {AlgorithmType::kCempar, AlgorithmType::kPace}) {
      ok = RunOne(csv, corpus, ScaleDefaults(algo, 10240), 10240) && ok;
    }
    const double rss_mib = static_cast<double>(PeakRssBytes()) / kMiB;
    WriteResults(csv, "demo2_scalability_smoke.csv");
    if (!ok) return 1;
    if (rss_mib > kSmokeRssCeilingMib) {
      std::fprintf(stderr,
                   "SMOKE FAIL: peak RSS %.1f MiB exceeds ceiling %.1f MiB\n",
                   rss_mib, kSmokeRssCeilingMib);
      return 1;
    }
    std::printf("\nSMOKE PASS: peak RSS %.1f MiB <= %.1f MiB ceiling\n",
                rss_mib, kSmokeRssCeilingMib);
    return 0;
  }

  // Legacy tier: identical options to the pre-refactor bench — these rows'
  // quality and traffic columns are the bit-compatibility reference.
  for (std::size_t peers : {16u, 32u, 64u, 128u, 256u, 512u}) {
    for (AlgorithmType algo :
         {AlgorithmType::kCempar, AlgorithmType::kPace,
          AlgorithmType::kCentralized, AlgorithmType::kLocalOnly}) {
      RunOne(csv, corpus, MacroDefaults(algo, peers), peers);
    }
    std::printf("\n");
  }

  // Scale tier: the engine's headline — 1k/10k/100k peers per protocol.
  for (std::size_t peers : {1024u, 10240u, 102400u}) {
    for (AlgorithmType algo : {AlgorithmType::kCempar, AlgorithmType::kPace}) {
      RunOne(csv, corpus, ScaleDefaults(algo, peers), peers);
    }
    std::printf("\n");
  }

  WriteResults(csv, "demo2_scalability.csv");
  return 0;
}
