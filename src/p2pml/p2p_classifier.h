#ifndef P2PDT_P2PML_P2P_CLASSIFIER_H_
#define P2PDT_P2PML_P2P_CLASSIFIER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"
#include "ml/multilabel.h"
#include "p2psim/network.h"

namespace p2pdt {

/// Outcome of one asynchronous tag prediction.
struct P2PPrediction {
  /// Predicted tags (sorted). May be empty on total failure.
  std::vector<TagId> tags;
  /// Raw per-tag scores (confidence values surfaced by SuggestTag in the
  /// demo UI, Fig. 3).
  std::vector<double> scores;
  /// False when the request could not be answered (e.g. all super-peers
  /// unreachable under churn).
  bool success = true;
  /// True when the answer came from a degraded path — the reliable
  /// transport exhausted its retries and the peer fell back to its local
  /// model instead of the distributed one. Such answers count as successes
  /// but with reduced expected quality.
  bool degraded = false;
  /// True when the request was shed by admission control at an overloaded
  /// serving peer (the typed `kOverloaded` reject). Callers may retry with
  /// backoff; unlike a transport give-up this carries no liveness signal.
  bool overloaded = false;
  /// True when the answer was served from the requester's prediction cache
  /// without any network traffic.
  bool cached = false;
};

/// Aggregate counters from the Byzantine-defense stack (sanitation +
/// reputation), surfaced uniformly so the experiment harness and the
/// poisoning sweep can report them per run. All zero when the defenses are
/// disabled or nothing was hostile.
struct DefenseStats {
  /// Ingestion-point rejections (sanitation failures + distrusted uploads).
  uint64_t models_rejected = 0;
  /// Votes excluded at aggregation time (quarantined contributors,
  /// out-of-bounds or outlier partials).
  uint64_t votes_discarded = 0;
  /// (observer, contributor) pairs currently quarantined.
  uint64_t quarantined = 0;
  /// Cross-validation observations folded into trust scores.
  uint64_t trust_observations = 0;
};

/// The pluggable P2P classification component of P2PDocTagger (paper
/// Sec. 2: "the P2P classification algorithm in P2PDocTagger is a pluggable
/// component"). Implementations run *as protocols inside the simulator*:
/// training and prediction exchange real simulated messages, so accuracy
/// and communication cost come from the same run.
///
/// Lifecycle: Setup(per-peer data) → Train(completion callback) → any
/// number of Predict() calls, all driven by Simulator::RunUntil.
class P2PClassifier {
 public:
  virtual ~P2PClassifier() = default;

  /// Installs the per-peer training datasets; peer_data[i] belongs to
  /// underlay node i. Must be called once before Train.
  virtual Status Setup(std::vector<MultiLabelDataset> peer_data,
                       TagId num_tags) = 0;

  /// Flyweight setup: per-peer DatasetShard views into a shared immutable
  /// corpus (see DistributeDataShared). The default materializes each shard
  /// and delegates to Setup, so every protocol accepts shards; protocols
  /// built for scale (CEMPaR, PACE) override this to store the views
  /// directly and never copy a document. Results are bit-identical either
  /// way.
  virtual Status SetupShards(std::vector<DatasetShard> peer_data,
                             TagId num_tags) {
    std::vector<MultiLabelDataset> materialized;
    materialized.reserve(peer_data.size());
    for (const DatasetShard& shard : peer_data) {
      materialized.push_back(shard.Materialize());
    }
    return Setup(std::move(materialized), num_tags);
  }

  /// Starts the distributed training protocol. `on_complete` fires (in
  /// simulated time) when the protocol quiesces.
  virtual void Train(std::function<void(Status)> on_complete) = 0;

  /// Predicts tags for `x` on behalf of peer `requester`; `done` fires in
  /// simulated time.
  virtual void Predict(NodeId requester, const SparseVector& x,
                       std::function<void(P2PPrediction)> done) = 0;

  /// Protocol name for reports ("cempar", "pace", ...).
  virtual std::string name() const = 0;

  /// Byzantine-defense counters; all-zero default for protocols without a
  /// defense stack.
  virtual DefenseStats defense_stats() const { return {}; }

  // --- Durability hooks (optional) -----------------------------------------
  //
  // A peer's trained state normally lives only in memory: a crash loses it
  // and a rejoin starts cold. Protocols that override these hooks let a
  // RecoveryCoordinator checkpoint per-peer state to durable storage and
  // warm-restore it on rejoin. The defaults make every protocol safely
  // non-durable (Snapshot/Restore report Unavailable; eviction and cold
  // restart are no-ops).

  /// True when Snapshot/Restore are meaningful for this protocol.
  virtual bool SupportsDurability() const { return false; }

  /// Serializes everything peer-local that would be lost in a crash:
  /// trained models plus whatever received/replicated state the peer holds.
  /// The blob is opaque to callers; only Restore of the same protocol can
  /// consume it. Integrity (checksums, atomic writes) is the storage
  /// layer's job, not encoded here.
  virtual Result<std::string> Snapshot(NodeId peer) const {
    (void)peer;
    return Status::Unavailable(name() + " does not support snapshots");
  }

  /// Reinstates a peer's state from a Snapshot blob. Malformed blobs are
  /// rejected with a non-OK status and leave the peer evicted (cold).
  virtual Status Restore(NodeId peer, const std::string& blob) {
    (void)peer;
    (void)blob;
    return Status::Unavailable(name() + " does not support restore");
  }

  /// Drops the peer's volatile state, simulating what a crash destroys.
  virtual void EvictPeer(NodeId peer) { (void)peer; }

  /// Cold-start path: retrains the peer's local models from its retained
  /// training data. Returns the number of training examples refit — the
  /// retrain-work metric warm rejoin avoids (0 when nothing to retrain).
  virtual std::size_t ColdRestart(NodeId peer) {
    (void)peer;
    return 0;
  }

  /// One anti-entropy round bringing a rejoined peer (and any state it was
  /// responsible for) back in sync with the network: CEMPaR re-uploads to
  /// repair dead homes, PACE re-fetches missed model bundles. `done` fires
  /// in simulated time when the repair traffic quiesces.
  virtual void ResyncPeer(NodeId peer, std::function<void()> done) {
    (void)peer;
    done();
  }

  // --- Online-refresh hooks (optional) -------------------------------------
  //
  // Non-stationary workloads (tag drift, vocabulary growth) make a
  // trained-once model rot. Protocols that override these hooks let the
  // drift harness swap a peer's training window and republish a refreshed,
  // version-stamped model through the protocol's own dissemination path —
  // reusing its reliable-transport / sanitation / reputation gates, so a
  // refreshed model is vetted exactly like an initial one. The defaults
  // make every protocol safely refresh-less.

  /// True when ReplacePeerData / RefreshPeer are meaningful.
  virtual bool SupportsOnlineRefresh() const { return false; }

  /// Replaces the peer's training data with a new sliding window (old
  /// documents aged out, fresh ones in). Does not retrain — pair with
  /// RefreshPeer.
  virtual Status ReplacePeerData(NodeId peer, DatasetShard window) {
    (void)peer;
    (void)window;
    return Status::Unavailable(name() + " does not support online refresh");
  }

  /// Retrains the peer's local model(s) on its current window and
  /// republishes them with a bumped version stamp: PACE re-broadcasts the
  /// bundle, CEMPaR re-uploads to the responsible super-peers (which
  /// replace the peer's old-version model — stale-vs-fresh reconciliation).
  /// `done` fires in simulated time once the republication traffic settles.
  virtual void RefreshPeer(NodeId peer, std::function<void()> done) {
    (void)peer;
    done();
  }

  /// Version stamp of the peer's currently published model (0 until the
  /// first refresh; bumped by each RefreshPeer).
  virtual uint64_t ModelVersion(NodeId peer) const {
    (void)peer;
    return 0;
  }
};

}  // namespace p2pdt

#endif  // P2PDT_P2PML_P2P_CLASSIFIER_H_
