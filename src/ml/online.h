#ifndef P2PDT_ML_ONLINE_H_
#define P2PDT_ML_ONLINE_H_

#include <cstdint>
#include <unordered_map>

#include "ml/dataset.h"
#include "ml/linear_svm.h"
#include "ml/multilabel.h"

namespace p2pdt {

/// Passive-aggressive online update (Crammer et al. 2006), used to
/// implement the paper's Tag Refinement step: "Upon the refinement of tags,
/// P2PDocTagger will automatically update the classification model(s) in
/// the back-end, to adapt to their personal preference" (Sec. 2).
struct OnlineUpdateOptions {
  /// Aggressiveness bound C for PA-II; larger values move the model more
  /// per correction.
  double c = 1.0;
};

/// Applies one PA-II update to `model` for example (x, y), y ∈ {-1, +1}.
/// Returns the hinge loss *before* the update (0 means the model already
/// agreed with margin ≥ 1 and nothing changed).
double PassiveAggressiveUpdate(LinearSvmModel& model, const SparseVector& x,
                               double y,
                               const OnlineUpdateOptions& options = {});

/// Refines a one-vs-all model from a corrected tag assignment: for every
/// tag in `corrected_tags` the per-tag model is nudged positive on x, for
/// every previously-predicted tag not in the corrected set it is nudged
/// negative. `corrected_tags` need not be sorted or deduplicated — it is
/// normalized internally. Only linear per-tag models are updated (kernel
/// models are cascade-owned and rebuilt on the next training round);
/// returns the number of per-tag models actually updated.
std::size_t RefineTags(OneVsAllModel& model, const SparseVector& x,
                       const std::vector<TagId>& predicted_tags,
                       const std::vector<TagId>& corrected_tags,
                       const OnlineUpdateOptions& options = {});

/// One version-stamped tag-refinement update. In a P2P deployment the
/// correction for a document may be delivered more than once (retransmits)
/// or out of order (a user re-corrects before the first correction has
/// propagated); `revision` orders corrections of the same document, larger
/// is newer.
struct RefinementUpdate {
  /// Identity of the corrected document.
  uint64_t doc_id = 0;
  /// Correction revision for this document (larger supersedes smaller).
  uint32_t revision = 0;
  SparseVector x;
  std::vector<TagId> predicted_tags;
  std::vector<TagId> corrected_tags;
};

/// Idempotent, order-tolerant application of RefinementUpdates to a model:
/// per document, only the first delivery of each strictly-newer revision is
/// applied; duplicates and stale (out-of-order) revisions are no-ops. PA
/// updates are not commutative, so exactly-once application per revision is
/// what keeps replicas that saw different delivery schedules from diverging
/// arbitrarily.
class RefinementLog {
 public:
  /// Whether Apply would touch the model (newer revision than applied).
  bool ShouldApply(const RefinementUpdate& update) const;

  /// Applies `update` via RefineTags iff it is new; returns the number of
  /// per-tag models updated (0 for duplicate / stale deliveries).
  std::size_t Apply(OneVsAllModel& model, const RefinementUpdate& update,
                    const OnlineUpdateOptions& options = {});

  uint64_t applied() const { return applied_; }
  uint64_t skipped_duplicate() const { return skipped_duplicate_; }
  uint64_t skipped_stale() const { return skipped_stale_; }

 private:
  /// doc_id -> highest revision applied so far.
  std::unordered_map<uint64_t, uint32_t> applied_revision_;
  uint64_t applied_ = 0;
  uint64_t skipped_duplicate_ = 0;
  uint64_t skipped_stale_ = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_ML_ONLINE_H_
