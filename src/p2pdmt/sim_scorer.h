#ifndef P2PDT_P2PDMT_SIM_SCORER_H_
#define P2PDT_P2PDMT_SIM_SCORER_H_

#include "core/doc_tagger.h"
#include "p2pdmt/environment.h"
#include "p2pml/p2p_classifier.h"

namespace p2pdt {

/// Bridges a trained P2PClassifier running inside a simulation to the
/// synchronous GlobalScorer interface DocTagger consumes: each call issues
/// a prediction on behalf of peer `self` and drives the simulator until
/// the answer arrives (bounded by `max_sim_seconds`). On failure (e.g. the
/// peer's super-peers are unreachable), returns all-zero scores.
///
/// This is exactly the demo's architecture: the UI thread asks the P2P
/// back-end for suggestions and blocks briefly while the network answers.
GlobalScorer MakeSimScorer(P2PClassifier& algo, Environment& env, NodeId self,
                           double max_sim_seconds = 120.0);

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_SIM_SCORER_H_
