#ifndef P2PDT_NET_FRAME_H_
#define P2PDT_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sparse_vector.h"
#include "common/status.h"

namespace p2pdt {

/// Length-prefixed framing for the real-socket service mode (p2pdtd).
///
/// Every frame is
///
///   magic "P2DF" (u32 LE) | type (u8) | payload length (u32 LE) | payload
///
/// with a hard payload bound checked at header-parse time — an oversized or
/// zero length field is rejected *before any allocation is sized from it*,
/// extending the PR 5 kDataLoss wire discipline to the socket path. The
/// payload bytes reuse the existing `wire::` little-endian primitives, so a
/// model or document serialized for the simulator is byte-identical on the
/// real wire.
///
/// TCP delivers a byte stream, not frames: the decoder accepts input split
/// at arbitrary points (byte-by-byte included) and reassembles bit-identical
/// frames. After any reject the stream is unsynchronized and the decoder is
/// poisoned — the connection must be closed, there is no resync scan.

constexpr uint32_t kFrameMagic = 0x46443250;  // "P2DF" little-endian
constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 4;
/// Hard payload bound. A tagging request carries one sparse document vector
/// (a few KiB); 1 MiB leaves generous headroom while keeping a hostile
/// length field from sizing a giant allocation.
constexpr std::size_t kMaxFramePayload = 1u << 20;

enum class FrameType : uint8_t {
  kPredictRequest = 1,
  kPredictResponse = 2,
  kOverload = 3,  // typed admission-control reject, carries retry-after
  kError = 4,     // typed protocol error (malformed / oversized / ...)
  kPing = 5,
  kPong = 6,
};

const char* FrameTypeToString(FrameType t);

/// Error codes carried by a kError frame.
enum class WireError : uint8_t {
  kMalformed = 1,       // payload failed to parse
  kOversized = 2,       // declared length beyond kMaxFramePayload
  kBadMagic = 3,        // stream out of sync / not speaking the protocol
  kBadType = 4,         // unknown frame type byte
  kZeroPayload = 5,     // zero-length frame (every type carries a payload)
  kUnexpectedType = 6,  // well-formed frame the server does not accept
  kTooManyConnections = 7,
  kDraining = 8,  // server is shutting down gracefully
  kInternal = 9,
};

const char* WireErrorToString(WireError e);

struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Encodes a complete frame (header + payload). The payload must respect
/// the bounds the decoder enforces; violating them is a programming error
/// surfaced at the peer as a reject.
std::string EncodeFrame(FrameType type, const std::string& payload);

/// Incremental decoder over a bounded buffer. Feed() appends raw bytes;
/// Poll() extracts the next complete frame or reports a typed reject.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload);

  enum class Next : uint8_t {
    kFrame = 0,
    kNeedMore,
    kBadMagic,
    kBadType,
    kZeroPayload,
    kOversized,
  };

  /// Appends bytes. Returns false when the internal buffer would exceed
  /// header + max_payload — only possible after a poisoning reject, since a
  /// healthy stream is drained frame-by-frame below the bound.
  bool Feed(const char* data, std::size_t n);

  /// Extracts the next frame into `out`. On any reject the decoder is
  /// poisoned: every later Poll repeats the same verdict and Feed is
  /// rejected. Rejects are detected from the 9 header bytes alone, before
  /// the payload is buffered or allocated.
  Next Poll(Frame& out);

  /// Maps a reject verdict to the matching typed wire error.
  static WireError RejectToError(Next reject);

  std::size_t buffered() const { return buffer_.size() - consumed_; }
  bool poisoned() const { return poisoned_ != Next::kFrame; }

 private:
  std::size_t max_payload_;
  std::string buffer_;
  std::size_t consumed_ = 0;  // prefix already handed out as frames
  Next poisoned_ = Next::kFrame;
};

// ---------------------------------------------------------------------------
// Typed messages carried in frame payloads. Every length field is bounded
// against the remaining payload before any allocation (kDataLoss on
// violation), mirroring the model-serialization hardening.

struct PredictRequest {
  uint64_t id = 0;         // echoed verbatim in the response
  uint64_t requester = 0;  // logical peer the request is issued as
  SparseVector doc;
};

struct PredictResponse {
  uint64_t id = 0;
  bool success = false;
  bool degraded = false;
  bool cached = false;
  std::vector<uint32_t> tags;
  std::vector<double> scores;
};

struct OverloadReject {
  uint64_t id = 0;
  uint8_t reason = 0;  // AdmitOutcome value from the serving queue
  double retry_after = 0.0;
};

struct ErrorReject {
  uint64_t id = 0;  // 0 when the offending request could not be parsed
  WireError code = WireError::kInternal;
  std::string message;
};

std::string EncodePredictRequest(const PredictRequest& req);
Result<PredictRequest> DecodePredictRequest(const std::string& payload);

std::string EncodePredictResponse(const PredictResponse& resp);
Result<PredictResponse> DecodePredictResponse(const std::string& payload);

std::string EncodeOverloadReject(const OverloadReject& reject);
Result<OverloadReject> DecodeOverloadReject(const std::string& payload);

std::string EncodeErrorReject(const ErrorReject& reject);
Result<ErrorReject> DecodeErrorReject(const std::string& payload);

/// Ping/pong payload is a single u64 token echoed back.
std::string EncodePingPayload(uint64_t token);
Result<uint64_t> DecodePingPayload(const std::string& payload);

}  // namespace p2pdt

#endif  // P2PDT_NET_FRAME_H_
