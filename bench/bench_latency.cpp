// Interactive responsiveness — the demo lets the audience "interact with
// the system to assign or refine the tags" (Sec. 3), so time-to-answer for
// a Suggest/AutoTag request matters. This bench measures the *simulated*
// latency distribution of predictions (request issue → answer) for each
// algorithm, at two network scales.
//
// Expected shape: PACE answers locally (≈0 network latency); CEMPaR pays
// one DHT resolution (first query per requester) then cached
// request/response round-trips; centralized pays exactly one RTT to the
// coordinator. Cold (first query, cache misses) vs warm separates the
// lookup cost.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

using namespace p2pdt_bench;

namespace {

struct LatencyStats {
  double p50 = 0, p95 = 0, max = 0;
};

LatencyStats Percentiles(std::vector<double> samples) {
  LatencyStats out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.p50 = samples[samples.size() / 2];
  out.p95 = samples[static_cast<std::size_t>(
      static_cast<double>(samples.size() - 1) * 0.95)];
  out.max = samples.back();
  return out;
}

}  // namespace

int main() {
  std::printf("=== prediction latency (simulated seconds) ===\n\n");
  const VectorizedCorpus& corpus = SharedCorpus(64, 12);
  CorpusSplit split = SplitCorpus(corpus, 0.2, 21);
  CsvWriter csv({"algorithm", "peers", "phase", "p50_ms", "p95_ms",
                 "max_ms"});

  for (std::size_t peers : {64u, 128u}) {
    std::printf("-- %zu peers --\n", peers);
    std::printf("%-12s %-6s %10s %10s %10s\n", "algorithm", "phase",
                "p50(ms)", "p95(ms)", "max(ms)");
    for (AlgorithmType algo :
         {AlgorithmType::kCempar, AlgorithmType::kPace,
          AlgorithmType::kCentralized}) {
      ExperimentOptions opt = MacroDefaults(algo, peers);
      auto env = std::move(Environment::Create(opt.env)).value();
      auto classifier = std::move(MakeClassifier(*env, opt)).value();
      auto peer_data =
          std::move(DistributeData(split.train, peers, opt.distribution,
                                   &split.train_user))
              .value();
      if (!classifier->Setup(std::move(peer_data),
                             corpus.dataset.num_tags())
               .ok()) {
        continue;
      }
      bool trained = false;
      classifier->Train([&](Status) { trained = true; });
      env->RunUntilFlag(trained, 3600);

      // Cold phase: every requester's first query (lookup-heavy for
      // CEMPaR). Warm phase: repeat queries from the same requesters.
      Rng rng(500 + peers);
      auto measure = [&](std::size_t count, bool reuse_requester) {
        std::vector<double> latencies;
        NodeId fixed = rng.NextU64(peers);
        for (std::size_t i = 0; i < count; ++i) {
          const auto& ex = split.test[i % split.test.size()];
          NodeId requester = reuse_requester ? fixed : rng.NextU64(peers);
          double issued = env->sim().Now();
          bool done = false;
          classifier->Predict(requester, ex.x, [&](P2PPrediction) {
            done = true;
          });
          // Step event-by-event so Now() stops exactly at the answer
          // (RunUntilFlag's coarse slices would quantize latencies).
          while (!done && env->sim().Step()) {
          }
          latencies.push_back((env->sim().Now() - issued) * 1e3);
        }
        return Percentiles(std::move(latencies));
      };

      LatencyStats cold = measure(60, /*reuse_requester=*/false);
      LatencyStats warm = measure(60, /*reuse_requester=*/true);
      std::printf("%-12s %-6s %10.1f %10.1f %10.1f\n",
                  classifier->name().c_str(), "cold", cold.p50, cold.p95,
                  cold.max);
      std::printf("%-12s %-6s %10.1f %10.1f %10.1f\n",
                  classifier->name().c_str(), "warm", warm.p50, warm.p95,
                  warm.max);
      csv.AddRow({classifier->name(), std::to_string(peers), "cold",
                  std::to_string(cold.p50), std::to_string(cold.p95),
                  std::to_string(cold.max)});
      csv.AddRow({classifier->name(), std::to_string(peers), "warm",
                  std::to_string(warm.p50), std::to_string(warm.p95),
                  std::to_string(warm.max)});
    }
    std::printf("\n");
  }
  WriteResults(csv, "latency.csv");
  return 0;
}
