#include "core/tag_cloud.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>

namespace p2pdt {

TagCloud TagCloud::Build(const TagLibrary& library, Options options) {
  TagCloud cloud;
  auto counts = library.TagCounts();  // alphabetical
  cloud.nodes_.reserve(counts.size());
  std::size_t max_count = 1;
  for (const auto& [tag, count] : counts) {
    max_count = std::max(max_count, count);
  }
  for (const auto& [tag, count] : counts) {
    Node n;
    n.tag = tag;
    n.count = count;
    // Log-scaled font size: 1.0 for singletons up to max_font_scale.
    double t = std::log(1.0 + static_cast<double>(count)) /
               std::log(1.0 + static_cast<double>(max_count));
    n.font_scale = 1.0 + t * (options.max_font_scale - 1.0);
    cloud.nodes_.push_back(std::move(n));
  }

  cloud.adjacency_.resize(cloud.nodes_.size());
  for (std::size_t i = 0; i < cloud.nodes_.size(); ++i) {
    for (std::size_t j = i + 1; j < cloud.nodes_.size(); ++j) {
      std::size_t w =
          library.CoOccurrence(cloud.nodes_[i].tag, cloud.nodes_[j].tag);
      if (w >= options.min_edge_weight && w > 0) {
        cloud.adjacency_[i].push_back(cloud.edges_.size());
        cloud.adjacency_[j].push_back(cloud.edges_.size());
        cloud.edges_.push_back(Edge{i, j, w});
      }
    }
  }

  // Connected components = clusters.
  std::vector<std::size_t> cluster(cloud.nodes_.size(),
                                   static_cast<std::size_t>(-1));
  std::size_t next_cluster = 0;
  for (std::size_t start = 0; start < cloud.nodes_.size(); ++start) {
    if (cluster[start] != static_cast<std::size_t>(-1)) continue;
    std::vector<std::size_t> stack{start};
    cluster[start] = next_cluster;
    while (!stack.empty()) {
      std::size_t at = stack.back();
      stack.pop_back();
      for (std::size_t e : cloud.adjacency_[at]) {
        std::size_t other =
            cloud.edges_[e].a == at ? cloud.edges_[e].b : cloud.edges_[e].a;
        if (cluster[other] == static_cast<std::size_t>(-1)) {
          cluster[other] = next_cluster;
          stack.push_back(other);
        }
      }
    }
    ++next_cluster;
  }
  for (std::size_t i = 0; i < cloud.nodes_.size(); ++i) {
    cloud.nodes_[i].cluster = cluster[i];
  }
  cloud.num_clusters_ = next_cluster;
  return cloud;
}

std::vector<std::string> TagCloud::BridgeTags() const {
  // Tarjan articulation points (iterative-friendly recursive DFS; tag
  // graphs are small).
  const std::size_t n = nodes_.size();
  std::vector<int> disc(n, -1), low(n, 0);
  std::vector<bool> articulation(n, false);
  int timer = 0;

  std::function<void(std::size_t, std::size_t)> dfs =
      [&](std::size_t u, std::size_t parent) {
        disc[u] = low[u] = timer++;
        std::size_t children = 0;
        for (std::size_t e : adjacency_[u]) {
          std::size_t v = edges_[e].a == u ? edges_[e].b : edges_[e].a;
          if (v == parent) continue;
          if (disc[v] != -1) {
            low[u] = std::min(low[u], disc[v]);
            continue;
          }
          ++children;
          dfs(v, u);
          low[u] = std::min(low[u], low[v]);
          if (parent != static_cast<std::size_t>(-1) && low[v] >= disc[u]) {
            articulation[u] = true;
          }
        }
        if (parent == static_cast<std::size_t>(-1) && children > 1) {
          articulation[u] = true;
        }
      };

  for (std::size_t i = 0; i < n; ++i) {
    if (disc[i] == -1) dfs(i, static_cast<std::size_t>(-1));
  }

  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (articulation[i]) out.push_back(nodes_[i].tag);
  }
  return out;
}

std::string TagCloud::ToDot() const {
  std::string out = "graph tagcloud {\n  layout=fdp;\n";
  char buf[160];
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "  t%zu [label=\"%s\", fontsize=%.0f];\n", i,
                  nodes_[i].tag.c_str(), 10.0 * nodes_[i].font_scale);
    out += buf;
  }
  for (const Edge& e : edges_) {
    std::snprintf(buf, sizeof(buf), "  t%zu -- t%zu [penwidth=%.1f];\n", e.a,
                  e.b, 0.5 + 0.5 * static_cast<double>(e.weight));
    out += buf;
  }
  out += "}\n";
  return out;
}

std::string TagCloud::Render() const {
  std::string out;
  char buf[256];
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    // Strongest co-occurring neighbor, if any.
    std::size_t best_edge = static_cast<std::size_t>(-1);
    std::size_t best_w = 0;
    for (std::size_t e : adjacency_[i]) {
      if (edges_[e].weight > best_w) {
        best_w = edges_[e].weight;
        best_edge = e;
      }
    }
    std::string neighbor = "-";
    if (best_edge != static_cast<std::size_t>(-1)) {
      const Edge& e = edges_[best_edge];
      neighbor = nodes_[e.a == i ? e.b : e.a].tag;
    }
    int stars = static_cast<int>(std::lround(nodes_[i].font_scale));
    std::snprintf(buf, sizeof(buf), "%-18s %-4.*s count=%-5zu cluster=%zu "
                                    "strongest-link=%s\n",
                  nodes_[i].tag.c_str(), stars, "****", nodes_[i].count,
                  nodes_[i].cluster, neighbor.c_str());
    out += buf;
  }
  return out;
}

}  // namespace p2pdt
