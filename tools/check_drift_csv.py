#!/usr/bin/env python3
"""Validates the drift-sweep CSV emitted by bench_drift.

Usage: check_drift_csv.py <drift.csv> [--strict]

Pure stdlib. Checks the column schema exactly, value ranges, and the
structural invariants every sweep must satisfy:

- A stationary ("none") scenario and at least one drift scenario per
  algorithm.
- Idle-machinery bit-identity: within each (algorithm, loss, churn) group
  of stationary rows, the non-periodic policy arms (frozen / staleness /
  drift) that recorded zero retrains must share one fingerprint — the
  armed detector changes nothing unless it fires.
- At zero loss the stationary non-periodic arms must not fire at all
  (retrains == 0). Lossy stationary rows MAY legitimately retrain:
  packet loss erodes CEMPaR's serving quality, the detector reads the
  erosion as drift, and the republish repairs it (self-healing).
- Frozen arms never retrain, anywhere.
- Recovery bookkeeping is internally consistent (reconverged implies
  recovery_epochs < num_epochs, and vice versa).

With --strict it additionally enforces the DRIFT1 acceptance bar: for at
least one sudden-drift scenario at >= 20 % loss, some retraining policy
re-converges to within 2 macro-F1 points of its pre-drift level while the
frozen arm of the same group stays >= 5 points degraded. Exits non-zero
with one message per violation.
"""

import csv
import sys

EXPECTED_COLUMNS = [
    "algorithm", "scenario", "policy", "loss_rate", "churn", "num_epochs",
    "first_drift_epoch", "pre_drift_f1", "min_post_drift_f1", "final_f1",
    "max_dip", "recovery_epochs", "reconverged", "retrains",
    "drift_detections", "give_ups", "suspected_peers", "total_messages",
    "total_bytes", "fingerprint",
]

KNOWN_SCENARIOS = {
    "none", "sudden_vocab", "gradual_rotation", "popularity_spike",
    "new_tag",
}

KNOWN_POLICIES = {"frozen", "periodic", "staleness", "drift"}

SUDDEN_SCENARIOS = {"sudden_vocab", "new_tag"}

RECONVERGE_MARGIN = 0.02
FROZEN_DEGRADATION = 0.05

errors = []


def check(cond, msg):
    if not cond:
        errors.append(msg)


def validate(path, strict):
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        check(reader.fieldnames == EXPECTED_COLUMNS,
              f"header mismatch: got {reader.fieldnames}")
        rows = list(reader)
    check(rows, "no data rows")
    if errors:
        return

    for i, row in enumerate(rows):
        where = f"row {i + 2}"
        check(row["algorithm"] in ("cempar", "pace"),
              f"{where}: unknown algorithm {row['algorithm']!r}")
        check(row["scenario"] in KNOWN_SCENARIOS,
              f"{where}: unknown scenario {row['scenario']!r}")
        check(row["policy"] in KNOWN_POLICIES,
              f"{where}: unknown policy {row['policy']!r}")
        check(row["churn"] in ("0", "1"),
              f"{where}: churn must be 0/1, got {row['churn']!r}")
        check(row["reconverged"] in ("0", "1"),
              f"{where}: reconverged must be 0/1")
        loss = float(row["loss_rate"])
        check(0.0 <= loss <= 1.0, f"{where}: loss_rate {loss}")
        for col in ("pre_drift_f1", "min_post_drift_f1", "final_f1"):
            v = float(row[col])
            check(0.0 <= v <= 1.0, f"{where}: {col}={v} outside [0, 1]")
        check(float(row["max_dip"]) >= 0.0, f"{where}: negative max_dip")
        for col in ("num_epochs", "retrains", "drift_detections",
                    "give_ups", "suspected_peers", "total_messages",
                    "total_bytes"):
            check(int(row[col]) >= 0, f"{where}: negative {col}")
        epochs = int(row["num_epochs"])
        recovery = int(row["recovery_epochs"])
        check(recovery <= epochs,
              f"{where}: recovery_epochs {recovery} > num_epochs {epochs}")
        check((row["reconverged"] == "1") == (recovery < epochs),
              f"{where}: reconverged={row['reconverged']} inconsistent with "
              f"recovery_epochs={recovery} of {epochs}")
        check(len(row["fingerprint"]) == 16,
              f"{where}: fingerprint not a 16-hex-digit digest")
        if row["scenario"] == "none":
            check(int(row["first_drift_epoch"]) >= epochs,
                  f"{where}: stationary row has first_drift_epoch "
                  f"{row['first_drift_epoch']} inside the run")
        if row["policy"] == "frozen":
            check(int(row["retrains"]) == 0,
                  f"{where}: frozen arm recorded retrains")

    algorithms = sorted({row["algorithm"] for row in rows})
    for algorithm in algorithms:
        check(any(r["algorithm"] == algorithm and r["scenario"] == "none"
                  for r in rows),
              f"{algorithm}: no stationary baseline rows")
        check(any(r["algorithm"] == algorithm and r["scenario"] != "none"
                  for r in rows),
              f"{algorithm}: no drift scenario rows")

    # Idle-machinery bit-identity over stationary groups.
    groups = {}
    for row in rows:
        if row["scenario"] != "none" or row["policy"] == "periodic":
            continue
        key = (row["algorithm"], row["loss_rate"], row["churn"])
        groups.setdefault(key, []).append(row)
    for key, group in sorted(groups.items()):
        label = "/".join(key)
        idle = [r for r in group if int(r["retrains"]) == 0]
        check(len({r["fingerprint"] for r in idle}) <= 1,
              f"stationary {label}: zero-retrain policy arms disagree on "
              f"fingerprint (idle drift machinery must be invisible)")
        if float(key[1]) == 0.0:
            for r in group:
                check(int(r["retrains"]) == 0,
                      f"stationary {label}: {r['policy']} arm retrained "
                      f"{r['retrains']} peers with no drift and no loss")

    if not strict:
        return

    # Acceptance bar: one sudden-drift group at >= 20 % loss where a
    # retraining policy re-converges while frozen stays degraded.
    witnesses = []
    for row in rows:
        if (row["scenario"] not in SUDDEN_SCENARIOS
                or float(row["loss_rate"]) < 0.2
                or row["policy"] == "frozen"):
            continue
        frozen = next(
            (r for r in rows
             if r["policy"] == "frozen"
             and (r["algorithm"], r["scenario"], r["loss_rate"], r["churn"])
             == (row["algorithm"], row["scenario"], row["loss_rate"],
                 row["churn"])), None)
        if frozen is None:
            continue
        pre = float(row["pre_drift_f1"])
        reconverged = (row["reconverged"] == "1"
                       or float(row["final_f1"]) >= pre - RECONVERGE_MARGIN)
        frozen_stuck = (float(frozen["final_f1"])
                        <= float(frozen["pre_drift_f1"]) - FROZEN_DEGRADATION)
        if reconverged and frozen_stuck:
            witnesses.append(
                f"{row['algorithm']}/{row['scenario']}@{row['loss_rate']}"
                f" via {row['policy']}")
    check(witnesses,
          "acceptance bar not met: no sudden-drift scenario at >= 20% loss "
          "where a retraining policy re-converges (within "
          f"{RECONVERGE_MARGIN} macro-F1 of pre-drift) while the frozen arm "
          f"stays >= {FROZEN_DEGRADATION} degraded")
    if witnesses:
        print(f"acceptance witnesses: {', '.join(sorted(set(witnesses)))}")


def main():
    args = [a for a in sys.argv[1:] if a != "--strict"]
    strict = "--strict" in sys.argv[1:]
    if len(args) != 1:
        print(__doc__)
        return 2
    validate(args[0], strict)
    if errors:
        for msg in errors:
            print(f"FAIL: {msg}")
        return 1
    print(f"OK: {args[0]} passes schema and drift invariants"
          + (" (strict)" if strict else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
