#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace p2pdt {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", bytes, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  }
  return buf;
}

}  // namespace p2pdt
