file(REMOVE_RECURSE
  "CMakeFiles/bench_data_distribution.dir/bench_data_distribution.cpp.o"
  "CMakeFiles/bench_data_distribution.dir/bench_data_distribution.cpp.o.d"
  "bench_data_distribution"
  "bench_data_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
