#include <gtest/gtest.h>

#include "p2psim/transport.h"

namespace p2pdt {
namespace {

struct Fixture {
  Simulator sim;
  PhysicalNetwork net;
  ReliableTransport transport;

  explicit Fixture(std::size_t nodes, PhysicalNetworkOptions popt = {},
                   ReliableTransportOptions topt = {})
      : net(sim, popt), transport(sim, net, topt) {
    net.AddNodes(nodes);
  }
};

TEST(OverloadTransportTest, NullHookLeavesDeliveryUnchanged) {
  Fixture f(4);
  int delivered = 0, acked = 0;
  f.transport.SendReliable(
      0, 1, 1000, MessageType::kPredictionRequest, [&] { ++delivered; },
      [&] { ++acked; }, nullptr);
  f.sim.RunUntil(60.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(acked, 1);
  EXPECT_EQ(f.net.stats().dropped(DropReason::kOverloadShed), 0u);
  EXPECT_EQ(f.transport.overload_rejects(), 0u);
}

TEST(OverloadTransportTest, AcceptingHookDelaysDelivery) {
  Fixture f(4);
  f.transport.SetAdmissionHook([](NodeId, MessageType) {
    AdmissionVerdict v;
    v.delay = 0.5;
    return v;
  });
  int delivered = 0;
  double delivered_at = -1.0;
  f.transport.SendReliable(
      0, 1, 1000, MessageType::kPredictionRequest,
      [&] {
        ++delivered;
        delivered_at = f.sim.Now();
      },
      nullptr, nullptr);
  f.sim.RunUntil(60.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(delivered_at, 0.5);
  // Delayed service must not look like loss: no retransmits of the data.
  EXPECT_EQ(f.net.stats().give_ups(), 0u);
}

TEST(OverloadTransportTest, ShedThenAcceptRetriesAtRetryAfter) {
  Fixture f(4);
  int sheds_left = 1;
  f.transport.SetAdmissionHook([&](NodeId, MessageType) {
    AdmissionVerdict v;
    if (sheds_left > 0) {
      --sheds_left;
      v.accept = false;
      v.retry_after = 2.0;
    }
    return v;
  });
  int delivered = 0, acked = 0, gave_up = 0;
  double delivered_at = -1.0;
  f.transport.SendReliable(
      0, 1, 1000, MessageType::kPredictionRequest,
      [&] {
        ++delivered;
        delivered_at = f.sim.Now();
      },
      [&] { ++acked; }, [&] { ++gave_up; });
  f.sim.RunUntil(120.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(acked, 1);
  EXPECT_EQ(gave_up, 0);
  // The retry honored the server-suggested retry-after (plus jitter), not
  // the much-shorter default RTO backoff.
  EXPECT_GE(delivered_at, 2.0);
  EXPECT_EQ(f.net.stats().dropped(DropReason::kOverloadShed), 1u);
  EXPECT_EQ(f.transport.overload_rejects(), 1u);
  EXPECT_GT(f.net.stats().messages_sent(MessageType::kOverloadNack), 0u);
}

TEST(OverloadTransportTest, PersistentOverloadGivesUpWithoutSuspicion) {
  ReliableTransportOptions topt;
  topt.max_overload_retries = 2;
  Fixture f(4, {}, topt);
  f.transport.SetAdmissionHook([](NodeId, MessageType) {
    AdmissionVerdict v;
    v.accept = false;
    v.retry_after = 0.5;
    return v;
  });
  int delivered = 0, gave_up = 0;
  f.transport.SendReliable(
      0, 1, 1000, MessageType::kPredictionRequest, [&] { ++delivered; },
      nullptr, [&] { ++gave_up; });
  f.sim.RunUntil(300.0);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(gave_up, 1);
  // Initial attempt + max_overload_retries retries, each shed and NACKed.
  EXPECT_EQ(f.net.stats().dropped(DropReason::kOverloadShed), 3u);
  EXPECT_EQ(f.transport.overload_rejects(), 3u);
  // An overloaded server answered every attempt — that is proof of life,
  // not death: the failure detector must NOT suspect it.
  EXPECT_FALSE(f.transport.IsSuspected(1));
}

TEST(OverloadTransportTest, OverloadDropReasonIsDistinct) {
  // One shed on a clean network: the overload ledger moves, the loss /
  // churn / fault ledgers do not.
  Fixture f(4);
  bool first = true;
  f.transport.SetAdmissionHook([&](NodeId, MessageType) {
    AdmissionVerdict v;
    if (first) {
      first = false;
      v.accept = false;
      v.retry_after = 0.2;
    }
    return v;
  });
  int delivered = 0;
  f.transport.SendReliable(0, 1, 100, MessageType::kPredictionRequest,
                           [&] { ++delivered; }, nullptr, nullptr);
  f.sim.RunUntil(60.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(f.net.stats().dropped(DropReason::kOverloadShed), 1u);
  EXPECT_EQ(f.net.stats().dropped(DropReason::kRandomLoss), 0u);
  EXPECT_EQ(f.net.stats().dropped(DropReason::kInjectedFault), 0u);
  EXPECT_EQ(f.net.stats().dropped(DropReason::kSendOffline), 0u);
  EXPECT_EQ(f.net.stats().dropped(DropReason::kRecvOffline), 0u);
}

TEST(OverloadTransportTest, HookOnlySeesFreshArrivals) {
  // Drop ACKs for a while so the data is retransmitted: the admission hook
  // must be consulted once per payload, not once per duplicate arrival.
  Fixture f(4);
  f.net.SetFaultHook([&](NodeId, NodeId, MessageType type, SimTime now) {
    FaultDecision d;
    d.drop = (type == MessageType::kAck && now < 2.0);
    return d;
  });
  int hook_calls = 0;
  f.transport.SetAdmissionHook([&](NodeId, MessageType) {
    ++hook_calls;
    return AdmissionVerdict{};
  });
  int delivered = 0, acked = 0;
  f.transport.SendReliable(
      0, 1, 1000, MessageType::kPredictionRequest, [&] { ++delivered; },
      [&] { ++acked; }, nullptr);
  f.sim.RunUntil(120.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(acked, 1);
  EXPECT_GT(f.net.stats().retransmits(), 0u);
  EXPECT_EQ(hook_calls, 1);
}

TEST(OverloadTransportTest, OverloadNackClearsPriorSuspicion) {
  // A peer that earlier timed out (suspected) but now sheds under load is
  // alive: the NACK must clear the suspicion like an ACK would.
  ReliableTransportOptions topt;
  topt.max_retries = 1;
  topt.suspicion_threshold = 1;
  Fixture f(4, {}, topt);

  // Phase 1: all traffic to node 1 is dropped — give-up raises suspicion.
  f.net.SetFaultHook([&](NodeId, NodeId to, MessageType, SimTime now) {
    FaultDecision d;
    d.drop = (to == 1 && now < 5.0);
    return d;
  });
  int gave_up = 0;
  f.transport.SendReliable(0, 1, 100, MessageType::kPredictionRequest,
                           nullptr, nullptr, [&] { ++gave_up; });
  f.sim.RunUntil(20.0);
  EXPECT_EQ(gave_up, 1);
  EXPECT_TRUE(f.transport.IsSuspected(1));

  // Phase 2: node 1 is reachable but overloaded; the shed NACK proves life.
  bool shed_once = true;
  f.transport.SetAdmissionHook([&](NodeId, MessageType) {
    AdmissionVerdict v;
    if (shed_once) {
      shed_once = false;
      v.accept = false;
      v.retry_after = 0.2;
    }
    return v;
  });
  int delivered = 0;
  f.transport.SendReliable(0, 1, 100, MessageType::kPredictionRequest,
                           [&] { ++delivered; }, nullptr, nullptr);
  f.sim.RunUntil(60.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_FALSE(f.transport.IsSuspected(1));
}

}  // namespace
}  // namespace p2pdt
