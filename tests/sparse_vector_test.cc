#include "common/sparse_vector.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace p2pdt {
namespace {

SparseVector Make(std::vector<SparseVector::Entry> e) {
  return SparseVector::FromPairs(std::move(e));
}

TEST(SparseVectorTest, FromPairsSortsAndMergesDuplicates) {
  SparseVector v = Make({{5, 1.0}, {2, 2.0}, {5, 3.0}});
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_DOUBLE_EQ(v.Get(2), 2.0);
  EXPECT_DOUBLE_EQ(v.Get(5), 4.0);
  EXPECT_DOUBLE_EQ(v.Get(7), 0.0);
}

TEST(SparseVectorTest, FromPairsDropsCancellingDuplicates) {
  SparseVector v = Make({{3, 1.0}, {3, -1.0}, {1, 2.0}});
  EXPECT_EQ(v.nnz(), 1u);
  EXPECT_DOUBLE_EQ(v.Get(1), 2.0);
}

TEST(SparseVectorTest, FromDenseDropsZeros) {
  SparseVector v = SparseVector::FromDense({0.0, 1.5, 0.0, -2.0});
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_DOUBLE_EQ(v.Get(1), 1.5);
  EXPECT_DOUBLE_EQ(v.Get(3), -2.0);
}

TEST(SparseVectorTest, PushBackKeepsOrderAndSkipsZero) {
  SparseVector v;
  v.PushBack(1, 1.0);
  v.PushBack(2, 0.0);
  v.PushBack(3, 2.0);
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.DimensionBound(), 4u);
}

TEST(SparseVectorTest, DotDisjointIsZero) {
  EXPECT_DOUBLE_EQ(Make({{0, 1}, {2, 1}}).Dot(Make({{1, 5}, {3, 5}})), 0.0);
}

TEST(SparseVectorTest, DotOverlap) {
  SparseVector a = Make({{0, 1.0}, {2, 2.0}, {4, 3.0}});
  SparseVector b = Make({{2, 5.0}, {4, -1.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 10.0 - 3.0);
  EXPECT_DOUBLE_EQ(a.Dot(b), b.Dot(a));
}

TEST(SparseVectorTest, DotDense) {
  SparseVector a = Make({{1, 2.0}, {3, 4.0}, {100, 9.0}});
  std::vector<double> w = {0.0, 3.0, 0.0, 0.5};  // id 100 out of range → 0
  EXPECT_DOUBLE_EQ(a.DotDense(w), 6.0 + 2.0);
}

TEST(SparseVectorTest, NormAndNormalize) {
  SparseVector v = Make({{0, 3.0}, {1, 4.0}});
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
  v.L2Normalize();
  EXPECT_NEAR(v.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(v.Get(0), 0.6, 1e-12);
}

TEST(SparseVectorTest, NormalizeZeroVectorIsNoop) {
  SparseVector v;
  v.L2Normalize();
  EXPECT_TRUE(v.empty());
}

TEST(SparseVectorTest, ScaleByZeroClears) {
  SparseVector v = Make({{0, 1.0}});
  v.Scale(0.0);
  EXPECT_TRUE(v.empty());
}

TEST(SparseVectorTest, AddMergesAndCancels) {
  SparseVector a = Make({{0, 1.0}, {2, 2.0}});
  SparseVector b = Make({{1, 5.0}, {2, -2.0}});
  a.Add(b);
  EXPECT_DOUBLE_EQ(a.Get(0), 1.0);
  EXPECT_DOUBLE_EQ(a.Get(1), 5.0);
  EXPECT_DOUBLE_EQ(a.Get(2), 0.0);
  EXPECT_EQ(a.nnz(), 2u);  // the cancelled entry is removed
}

TEST(SparseVectorTest, AddWithAlpha) {
  SparseVector a = Make({{0, 1.0}});
  a.Add(Make({{0, 2.0}, {1, 3.0}}), 0.5);
  EXPECT_DOUBLE_EQ(a.Get(0), 2.0);
  EXPECT_DOUBLE_EQ(a.Get(1), 1.5);
}

TEST(SparseVectorTest, SquaredDistanceMatchesIdentity) {
  SparseVector a = Make({{0, 1.0}, {3, 2.0}});
  SparseVector b = Make({{0, 4.0}, {1, 1.0}});
  double expected =
      a.SquaredNorm() + b.SquaredNorm() - 2.0 * a.Dot(b);
  EXPECT_NEAR(a.SquaredDistance(b), expected, 1e-12);
  EXPECT_NEAR(a.SquaredDistance(a), 0.0, 1e-12);
}

TEST(SparseVectorTest, CosineBounds) {
  SparseVector a = Make({{0, 1.0}});
  SparseVector b = Make({{0, 7.0}});
  SparseVector c = Make({{0, -2.0}});
  SparseVector zero;
  EXPECT_NEAR(a.Cosine(b), 1.0, 1e-12);
  EXPECT_NEAR(a.Cosine(c), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.Cosine(zero), 0.0);
}

TEST(SparseVectorTest, WireSizeScalesWithNnz) {
  SparseVector v = Make({{0, 1.0}, {1, 1.0}, {2, 1.0}});
  EXPECT_EQ(v.WireSize(), 4u + 3u * 12u);
  EXPECT_EQ(SparseVector().WireSize(), 4u);
}

TEST(SparseVectorTest, ToStringReadable) {
  SparseVector v = Make({{1, 2.0}});
  EXPECT_EQ(v.ToString(), "{1:2}");
}

// Property test: sparse ops agree with dense reference on random vectors.
class SparseVectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparseVectorPropertyTest, AgreesWithDenseReference) {
  Rng rng(GetParam());
  const std::size_t dim = 40;
  auto random_pair = [&] {
    std::vector<double> dense(dim, 0.0);
    for (std::size_t i = 0; i < dim; ++i) {
      if (rng.Bernoulli(0.3)) dense[i] = rng.Uniform(-2.0, 2.0);
    }
    return std::make_pair(SparseVector::FromDense(dense), dense);
  };
  auto [a, da] = random_pair();
  auto [b, db] = random_pair();

  double dot = 0, dist2 = 0, na = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    dot += da[i] * db[i];
    dist2 += (da[i] - db[i]) * (da[i] - db[i]);
    na += da[i] * da[i];
  }
  EXPECT_NEAR(a.Dot(b), dot, 1e-9);
  EXPECT_NEAR(a.SquaredDistance(b), dist2, 1e-9);
  EXPECT_NEAR(a.SquaredNorm(), na, 1e-9);

  SparseVector sum = a;
  sum.Add(b, 0.7);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(sum.Get(static_cast<uint32_t>(i)), da[i] + 0.7 * db[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SparseVectorPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

TEST(DenseAccumulatorTest, AccumulatesAndGrows) {
  DenseAccumulator acc(2);
  acc.Add(Make({{0, 1.0}, {5, 2.0}}));  // grows past initial dim
  acc.Add(Make({{0, 3.0}}), 2.0);
  SparseVector out = acc.ToSparse();
  EXPECT_DOUBLE_EQ(out.Get(0), 7.0);
  EXPECT_DOUBLE_EQ(out.Get(5), 2.0);
}

TEST(DenseAccumulatorTest, Scale) {
  DenseAccumulator acc(4);
  acc.Add(Make({{1, 2.0}}));
  acc.Scale(0.5);
  EXPECT_DOUBLE_EQ(acc.ToSparse().Get(1), 1.0);
}

}  // namespace
}  // namespace p2pdt
