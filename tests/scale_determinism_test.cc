// Scale regression: the sharded simulation path must be bit-identical to
// the serial one. A 10k-peer experiment runs once fully serial (one shard,
// one thread) and once sharded across the pool; macro-F1, per-phase message
// counts and the deterministic slice of the metrics snapshot must match
// exactly. Fault and adversary plans are armed with windows that never
// open, pinning the contract that an idle defense/fault stack leaves
// baselines untouched at scale.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "corpus/vectorize.h"
#include "p2pdmt/evaluation.h"
#include "p2pdmt/experiment.h"
#include "p2psim/fault.h"
#include "p2psim/sharding.h"

namespace p2pdt {
namespace {

// A compact generated corpus shared by every case in this binary; small
// document counts keep the 10k-peer runs fast while the *network* is what
// scales.
const VectorizedCorpus& Corpus() {
  static const VectorizedCorpus corpus = [] {
    CorpusOptions opt;
    opt.num_users = 32;
    opt.min_docs_per_user = 8;
    opt.max_docs_per_user = 14;
    opt.num_tags = 6;
    opt.vocabulary_size = 400;
    opt.seed = 90210;
    Result<VectorizedCorpus> r = MakeVectorizedCorpus(opt);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }();
  return corpus;
}

/// The deterministic slice of a metrics snapshot: every counter/gauge value
/// plus histogram observation *counts*. Histogram sums are excluded — the
/// phase_seconds families observe wall-clock time, which legitimately
/// differs across thread counts.
std::string DeterministicFingerprint(const MetricsSnapshot& snap) {
  std::ostringstream out;
  for (const MetricsSnapshot::Entry& e : snap.entries) {
    out << e.key() << '|' << static_cast<int>(e.kind) << '|';
    if (e.kind == MetricsSnapshot::Kind::kHistogram) {
      out << e.count;
    } else {
      out << e.value;
    }
    out << '\n';
  }
  return out.str();
}

/// Arms fault + adversary machinery with windows far past the run horizon:
/// the directory and injector are installed and consulted, but never fire.
void ArmIdleFaultsAndAdversaries(ExperimentOptions& opt) {
  FaultPlanSpec::BurstLoss burst;
  burst.start = 1e17;
  burst.end = 2e17;
  burst.drop_prob = 1.0;
  opt.env.fault.burst_loss.push_back(burst);
  FaultPlanSpec::Adversary sleeper;
  sleeper.node = 3;
  sleeper.behavior = AdversaryBehavior::kLabelFlip;
  sleeper.start = 1e17;
  sleeper.end = 2e17;
  opt.env.fault.adversaries.push_back(sleeper);
}

struct RunFingerprint {
  double macro_f1 = 0.0;
  double micro_f1 = 0.0;
  uint64_t train_messages = 0;
  uint64_t train_bytes = 0;
  uint64_t predict_messages = 0;
  uint64_t predict_bytes = 0;
  std::size_t failed = 0;
  double coverage = -1.0;
  std::string metrics;
  CostCounts train_cost;
  CostCounts predict_cost;

  bool operator==(const RunFingerprint& o) const {
    return macro_f1 == o.macro_f1 && micro_f1 == o.micro_f1 &&
           train_messages == o.train_messages && train_bytes == o.train_bytes &&
           predict_messages == o.predict_messages &&
           predict_bytes == o.predict_bytes && failed == o.failed &&
           coverage == o.coverage && metrics == o.metrics &&
           train_cost == o.train_cost && predict_cost == o.predict_cost;
  }
};

RunFingerprint Fingerprint(const ExperimentResult& r) {
  RunFingerprint f;
  f.macro_f1 = r.metrics.macro_f1;
  f.micro_f1 = r.metrics.micro_f1;
  f.train_messages = r.train_messages;
  f.train_bytes = r.train_bytes;
  f.predict_messages = r.predict_messages;
  f.predict_bytes = r.predict_bytes;
  f.failed = r.failed_predictions;
  f.coverage = r.model_coverage;
  f.metrics = DeterministicFingerprint(r.observability);
  f.train_cost = r.train_cost;
  f.predict_cost = r.predict_cost;
  return f;
}

ExperimentOptions ScaleOptions(AlgorithmType algo, std::size_t peers) {
  ExperimentOptions opt;
  opt.algorithm = algo;
  opt.env.num_peers = peers;
  opt.env.overlay =
      algo == AlgorithmType::kCempar ? OverlayType::kChord
                                     : OverlayType::kUnstructured;
  opt.env.observe.metrics = true;
  // The cost ledger joins the fingerprint: op counts and wire bytes must
  // also be bit-identical for any shard/thread partition.
  opt.env.observe.cost_ledger = true;
  opt.distribution.cls = ClassDistribution::kByUser;
  opt.max_test_documents = 40;
  opt.max_eval_peers = 64;  // sampled evaluation at scale
  opt.seed = 1337;
  ArmIdleFaultsAndAdversaries(opt);
  return opt;
}

RunFingerprint RunWith(ExperimentOptions opt, std::size_t shards,
                       std::size_t threads) {
  opt.sim_shards = shards;
  opt.cempar.num_threads = threads;
  opt.pace.num_threads = threads;
  Result<ExperimentResult> r = RunExperiment(Corpus(), opt);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return Fingerprint(r.value());
}

class ScaleDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { ThreadPool::SetGlobalConcurrency(4); }
  void TearDown() override { ThreadPool::SetGlobalConcurrency(0); }
};

TEST_F(ScaleDeterminismTest, Pace10kSerialEqualsSharded) {
  ExperimentOptions opt = ScaleOptions(AlgorithmType::kPace, 10000);
  RunFingerprint serial = RunWith(opt, /*shards=*/1, /*threads=*/1);
  RunFingerprint sharded = RunWith(opt, /*shards=*/8, /*threads=*/4);
  EXPECT_TRUE(serial == sharded);
  EXPECT_EQ(serial.metrics, sharded.metrics);
  EXPECT_EQ(serial.macro_f1, sharded.macro_f1);
  EXPECT_EQ(serial.train_messages, sharded.train_messages);
  EXPECT_GT(serial.train_messages, 0u);
  // Ledger partition-invariance, stated explicitly for diagnostics.
  EXPECT_TRUE(serial.train_cost == sharded.train_cost)
      << serial.train_cost.ToString() << "\nvs\n"
      << sharded.train_cost.ToString();
  EXPECT_TRUE(serial.predict_cost == sharded.predict_cost);
  EXPECT_GT(serial.train_cost.total_wire_bytes(), 0u);
}

TEST_F(ScaleDeterminismTest, Pace10kBroadcastWindowPreservesResults) {
  // A finite dissemination window only re-times event-queue pressure; every
  // contributor still broadcasts, so coverage and quality are unchanged.
  ExperimentOptions opt = ScaleOptions(AlgorithmType::kPace, 10000);
  RunFingerprint unlimited = RunWith(opt, 8, 4);
  opt.pace.max_concurrent_broadcasts = 4;
  RunFingerprint windowed = RunWith(opt, 8, 4);
  EXPECT_EQ(unlimited.macro_f1, windowed.macro_f1);
  EXPECT_EQ(unlimited.coverage, windowed.coverage);
  EXPECT_EQ(unlimited.train_messages, windowed.train_messages);
  EXPECT_EQ(unlimited.failed, windowed.failed);
}

TEST_F(ScaleDeterminismTest, Cempar2kSerialEqualsSharded) {
  // CEMPaR exercises the Chord path; 2k keeps DHT stabilization affordable
  // in sanitizer builds while still far above every tier-1 network size.
  ExperimentOptions opt = ScaleOptions(AlgorithmType::kCempar, 2048);
  opt.cempar.svm.kernel = Kernel::Linear();
  RunFingerprint serial = RunWith(opt, 1, 1);
  RunFingerprint sharded = RunWith(opt, 8, 4);
  EXPECT_TRUE(serial == sharded);
  EXPECT_GT(serial.train_messages, 0u);
}

TEST_F(ScaleDeterminismTest, ShardedPhaseCommitsInItemOrderForAnyShardCount) {
  for (std::size_t shards : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                             std::size_t{17}, std::size_t{64}}) {
    std::vector<int> order;
    ShardPlanOptions plan;
    plan.shards = shards;
    plan.num_threads = 4;
    std::size_t resolved =
        ShardedPhase(37, plan, [&](std::size_t item, Rng&) -> UniqueFunction {
          return [&order, item] { order.push_back(static_cast<int>(item)); };
        });
    EXPECT_EQ(resolved, std::min<std::size_t>(shards, 37));
    std::vector<int> expected(37);
    for (int i = 0; i < 37; ++i) expected[static_cast<std::size_t>(i)] = i;
    EXPECT_EQ(order, expected) << "shards=" << shards;
  }
}

TEST_F(ScaleDeterminismTest, ShardedPhaseRngStreamsAreStablePerShard) {
  auto draws_with_threads = [](std::size_t threads) {
    std::vector<uint64_t> draws(8);
    ShardPlanOptions plan;
    plan.shards = 4;
    plan.num_threads = threads;
    plan.seed = 99;
    ShardedPhase(8, plan, [&](std::size_t item, Rng& rng) -> UniqueFunction {
      draws[item] = rng.NextU64();
      return {};
    });
    return draws;
  };
  // Same shard count => same per-shard streams, at any thread count.
  EXPECT_EQ(draws_with_threads(1), draws_with_threads(4));
}

TEST_F(ScaleDeterminismTest, DeterministicSampleIsStable) {
  std::vector<std::size_t> a = DeterministicSample(100000, 64, 7);
  std::vector<std::size_t> b = DeterministicSample(100000, 64, 7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 64u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  // Distinct seeds give distinct pools; k >= n degrades to the full range.
  EXPECT_NE(a, DeterministicSample(100000, 64, 8));
  std::vector<std::size_t> full = DeterministicSample(5, 10, 7);
  EXPECT_EQ(full, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace p2pdt
