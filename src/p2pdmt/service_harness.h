#ifndef P2PDT_P2PDMT_SERVICE_HARNESS_H_
#define P2PDT_P2PDMT_SERVICE_HARNESS_H_

#include <memory>
#include <vector>

#include "corpus/vectorize.h"
#include "p2pdmt/experiment.h"
#include "p2pml/service_host.h"

namespace p2pdt {

/// What BuildTrainedService assembles for the real-socket daemon: a trained
/// classifier inside its environment, the synchronous ServiceHost bridge,
/// and an owned popularity-ordered request catalog (test-split documents the
/// daemon's clients tag). Everything the dispatch closure references lives
/// here, so keep the struct alive as long as the daemon serves.
struct TrainedService {
  std::unique_ptr<Environment> env;
  std::unique_ptr<P2PClassifier> classifier;
  std::unique_ptr<ServiceHost> host;
  /// Owned copies (unlike the experiment harnesses' borrowed views — the
  /// split this was cut from is gone by the time the daemon serves).
  std::vector<SparseVector> catalog;
  std::size_t num_peers = 0;
  double train_sim_seconds = 0.0;

  /// Serves one request on the caller's thread: the wire requester id maps
  /// onto a real peer by modulo, then ServiceHost drives the protocol to
  /// an answer. Matches ServiceDaemon::Dispatch.
  P2PPrediction Serve(NodeId requester, const SparseVector& x) {
    return host->Predict(requester % num_peers, x);
  }
};

struct ServiceHarnessOptions {
  AlgorithmType algorithm = AlgorithmType::kPace;
  EnvironmentOptions env;
  DataDistributionOptions distribution;
  CemparOptions cempar;
  PaceOptions pace;
  double train_fraction = 0.2;
  /// Cap on the catalog drawn from the test split (0 = all).
  std::size_t max_docs = 0;
  double max_train_sim_seconds = 3600.0;
  uint64_t seed = 777;
};

/// Trains `algorithm` on `corpus` exactly the way the experiment harnesses
/// do (same split, distribution, shard setup and training drive), then
/// packages it for synchronous serving. Churn is left to the caller's env
/// options; the daemon defaults assume none (a serving deployment, not a
/// churn study).
Result<std::unique_ptr<TrainedService>> BuildTrainedService(
    const VectorizedCorpus& corpus, const ServiceHarnessOptions& options);

/// The catalog a *client* of a daemon built from the same corpus + split
/// parameters sees: byte-identical to TrainedService::catalog. This is how
/// p2pdt_client reconstructs the documents to tag without any transfer —
/// both sides derive them deterministically from (corpus seed, split seed).
std::vector<SparseVector> BuildServiceCatalog(const VectorizedCorpus& corpus,
                                              double train_fraction,
                                              std::size_t max_docs,
                                              uint64_t seed);

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_SERVICE_HARNESS_H_
