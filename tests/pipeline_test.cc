// Integration test for the complete Fig. 1 pipeline: corpus → preprocess →
// distribute to peers → P2P collaborative learning in the simulator →
// DocTagger consuming the global model through the sim bridge → suggest /
// AutoTag / refine / browse.

#include <gtest/gtest.h>

#include "core/doc_tagger.h"
#include "corpus/vectorize.h"
#include "p2pdmt/experiment.h"
#include "p2pdmt/sim_scorer.h"

namespace p2pdt {
namespace {

struct PipelineFixture {
  GeneratedCorpus corpus;
  VectorizedCorpus vectorized;
  std::unique_ptr<Environment> env;
  std::unique_ptr<P2PClassifier> algo;
  ExperimentOptions options;

  PipelineFixture() {
    CorpusOptions co;
    co.num_users = 10;
    co.min_docs_per_user = 40;
    co.max_docs_per_user = 50;
    co.num_tags = 5;
    co.vocabulary_size = 1000;
    co.seed = 31337;
    corpus = std::move(GenerateCorpus(co)).value();
    Preprocessor pre;
    vectorized = std::move(VectorizeCorpus(corpus, pre)).value();

    options.env.num_peers = 10;
    options.algorithm = AlgorithmType::kCempar;
    options.distribution.cls = ClassDistribution::kByUser;
    env = std::move(Environment::Create(options.env)).value();
    algo = std::move(MakeClassifier(*env, options)).value();
  }

  Status TrainOnSplit(const CorpusSplit& split) {
    Result<std::vector<MultiLabelDataset>> peers =
        DistributeData(split.train, 10, options.distribution,
                       &split.train_user);
    P2PDT_RETURN_IF_ERROR(peers.status());
    P2PDT_RETURN_IF_ERROR(algo->Setup(std::move(peers).value(),
                                      vectorized.dataset.num_tags()));
    bool done = false;
    Status status = Status::OK();
    algo->Train([&](Status s) {
      status = s;
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);
    return status;
  }
};

TEST(PipelineTest, EndToEndCollaborativeTagging) {
  PipelineFixture f;
  CorpusSplit split = SplitCorpus(f.vectorized, 0.2, 5);
  ASSERT_TRUE(f.TrainOnSplit(split).ok());

  // The local user (peer 3) runs a DocTagger fed by the P2P backend.
  DocTagger tagger;
  tagger.AttachGlobalScorer(MakeSimScorer(*f.algo, *f.env, /*self=*/3),
                            f.corpus.tag_names);

  // Re-add raw documents owned by user 3 and auto-tag them via the global
  // model; compare against generator ground truth.
  std::size_t correct = 0, total = 0;
  for (std::size_t doc_idx : f.corpus.user_documents[3]) {
    const RawDocument& raw = f.corpus.documents[doc_idx];
    DocId id = tagger.AddDocument(raw.title, raw.text);
    Result<std::vector<std::string>> assigned = tagger.AutoTag(id);
    ASSERT_TRUE(assigned.ok());
    for (const std::string& tag : assigned.value()) {
      ++total;
      for (const std::string& truth : raw.tags) {
        if (tag == truth) {
          ++correct;
          break;
        }
      }
    }
  }
  ASSERT_GT(total, 0u);
  double precision = static_cast<double>(correct) / total;
  EXPECT_GT(precision, 0.8) << correct << "/" << total;

  // The library and tag cloud reflect the auto-tagging.
  EXPECT_GT(tagger.library().num_documents(), 0u);
  TagCloud cloud = tagger.BuildTagCloud();
  EXPECT_GT(cloud.nodes().size(), 0u);
}

TEST(PipelineTest, SuggestionsExposeGlobalConfidences) {
  PipelineFixture f;
  CorpusSplit split = SplitCorpus(f.vectorized, 0.2, 6);
  ASSERT_TRUE(f.TrainOnSplit(split).ok());

  DocTagger tagger;
  tagger.AttachGlobalScorer(MakeSimScorer(*f.algo, *f.env, 0),
                            f.corpus.tag_names);
  const RawDocument& raw = f.corpus.documents[f.corpus.user_documents[0][0]];
  DocId id = tagger.AddDocument(raw.title, raw.text);
  Result<std::vector<TagSuggestion>> suggestions = tagger.SuggestTags(id);
  ASSERT_TRUE(suggestions.ok());
  ASSERT_FALSE(suggestions->empty());
  // Alphabetical order, confidences in (0,1).
  for (std::size_t i = 0; i < suggestions->size(); ++i) {
    EXPECT_GT((*suggestions)[i].confidence, 0.0);
    EXPECT_LT((*suggestions)[i].confidence, 1.0);
    if (i > 0) {
      EXPECT_LT((*suggestions)[i - 1].tag, (*suggestions)[i].tag);
    }
  }
  // The ground-truth tag should be among the most confident.
  double truth_conf = 0, max_conf = 0;
  for (const TagSuggestion& s : suggestions.value()) {
    max_conf = std::max(max_conf, s.confidence);
    for (const std::string& t : raw.tags) {
      if (s.tag == t) truth_conf = std::max(truth_conf, s.confidence);
    }
  }
  EXPECT_NEAR(truth_conf, max_conf, 0.35);
}

TEST(PipelineTest, RefinementPersonalizesOverGlobalModel) {
  PipelineFixture f;
  CorpusSplit split = SplitCorpus(f.vectorized, 0.2, 7);
  ASSERT_TRUE(f.TrainOnSplit(split).ok());

  DocTagger tagger;
  tagger.AttachGlobalScorer(MakeSimScorer(*f.algo, *f.env, 1),
                            f.corpus.tag_names);
  const RawDocument& raw = f.corpus.documents[f.corpus.user_documents[1][0]];
  DocId id = tagger.AddDocument(raw.title, raw.text);
  ASSERT_TRUE(tagger.AutoTag(id).ok());

  // The user disagrees with the global model and insists on a personal tag.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(tagger.Refine(id, {"mytag"}).ok());
  }
  const Document& doc = *tagger.GetDocument(id).value();
  EXPECT_EQ(doc.TagNames(), (std::vector<std::string>{"mytag"}));
  // Refinement also trains the local side for future docs.
  ASSERT_TRUE(tagger.TrainLocal().ok());
  EXPECT_TRUE(tagger.has_local_model());
}

}  // namespace
}  // namespace p2pdt
