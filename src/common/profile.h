#ifndef P2PDT_COMMON_PROFILE_H_
#define P2PDT_COMMON_PROFILE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace p2pdt {

/// Hierarchical wall-clock phase profiler with a collapsed-stack
/// (flamegraph / pprof -raw style) export.
///
/// The sim-time Tracer answers "what caused what" across messages; this
/// profiler answers "where did the CPU go" *inside* a phase — the
/// `local_train → smo_solve → kernel_matrix` attribution the kernel
/// optimization work is graded on. Scopes nest lexically per thread:
/// each thread keeps its own stack, and a pool worker's stack is rooted
/// at the ambient phase the driver declared before fanning out, so
/// worker time still lands under `train;local_train;...`.
///
/// Determinism contract: the profiler reads clocks and nothing else — no
/// RNG draws, no event scheduling, no branching visible to protocol code
/// — so runs with profiling on and off execute identical event
/// sequences. Durations are wall-clock and therefore *advisory*; the
/// deterministic story lives in CostLedger.
///
/// Cost: one relaxed atomic load per scope when no profiler is
/// installed; two steady_clock reads plus one short mutex hold (at
/// close) when one is.
class PhaseProfiler {
 public:
  PhaseProfiler() = default;
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// Process-wide active profiler (null = profiling off). Install returns
  /// the previous one so scopes/environments can restore it.
  static PhaseProfiler* Current();
  static PhaseProfiler* Install(PhaseProfiler* profiler);

  /// Ambient root segment prepended to every stack ("train", "predict").
  /// Call only at a pool quiesce point — phase boundaries — so in-flight
  /// scopes never straddle a change.
  void SetPhase(std::string phase);

  /// Collapsed-stack text: one `seg;seg;seg <micros>` line per distinct
  /// stack, sorted, self-time attribution (a parent line carries only the
  /// time not accounted to its children). Loadable by flamegraph.pl /
  /// speedscope / `pprof -raw`-style tooling.
  std::string ToCollapsed() const;
  Status WriteCollapsed(const std::string& path) const;

  /// Total self-microseconds recorded (0 until a scope closes).
  uint64_t total_micros() const;
  bool empty() const;

 private:
  friend class PhaseScope;
  void Accumulate(const std::string& path, uint64_t self_micros);
  std::string PhasePrefix() const;

  mutable std::mutex mu_;
  std::string phase_;
  std::map<std::string, uint64_t> self_micros_;
};

/// RAII profiling scope. Near-free when no profiler is installed; safe on
/// any thread. Names must be string literals (stored by pointer while the
/// scope is open).
class PhaseScope {
 public:
  explicit PhaseScope(const char* name);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseProfiler* profiler_;
  std::chrono::steady_clock::time_point start_;
};

/// Installs `profiler` for the lifetime of the scope (null = disable),
/// restoring the previous one on exit.
class ScopedProfiler {
 public:
  explicit ScopedProfiler(PhaseProfiler* profiler)
      : prev_(PhaseProfiler::Install(profiler)) {}
  ~ScopedProfiler() { PhaseProfiler::Install(prev_); }
  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;

 private:
  PhaseProfiler* prev_;
};

}  // namespace p2pdt

#endif  // P2PDT_COMMON_PROFILE_H_
