#ifndef P2PDT_P2PSIM_TRANSPORT_H_
#define P2PDT_P2PSIM_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "p2psim/network.h"
#include "p2psim/trace.h"

namespace p2pdt {

/// Tuning knobs for the reliable transport. Defaults are sized for the
/// simulated underlay (tens of milliseconds RTT): an initial timeout of a
/// few RTTs, doubling per retry with ±jitter, capped attempts.
struct ReliableTransportOptions {
  /// Retransmissions after the first attempt; attempts = max_retries + 1.
  std::size_t max_retries = 6;
  /// Initial retransmission timeout = rto_multiplier × estimated RTT
  /// (propagation both ways plus data and ACK transmission time).
  double rto_multiplier = 3.0;
  /// Floor / ceiling on any single timeout (seconds).
  double rto_min = 0.05;
  double rto_max = 30.0;
  /// Timeout growth per retry (exponential backoff).
  double backoff_factor = 2.0;
  /// Jitter: each timeout is scaled by a factor drawn uniformly from
  /// [1 - jitter, 1 + jitter] with a DeriveSeed(seed, msg_id, attempt)
  /// stream, so backoff schedules are bit-reproducible at any thread count.
  double jitter = 0.1;
  /// Wire size of an acknowledgement.
  std::size_t ack_bytes = 24;
  /// Consecutive give-ups targeting one peer before it is suspected dead.
  std::size_t suspicion_threshold = 2;
  /// Overload rejects tolerated per message before giving up. Deliberately
  /// much smaller than max_retries: hammering an overloaded peer with the
  /// full retry budget is the retry storm that amplifies a flash crowd.
  std::size_t max_overload_retries = 2;
  /// Wire size of an overload NACK.
  std::size_t nack_bytes = 24;
  uint64_t seed = 0x5EED7A6;
};

/// Receiver-side admission verdict for one arriving message. `accept=false`
/// sheds the request: the payload never runs and the sender gets a typed
/// overload NACK carrying `retry_after` instead of an ACK. On accept,
/// `delay` defers the payload (queueing + service time) while the ACK still
/// returns immediately — the wire-level accept is not the serving latency.
struct AdmissionVerdict {
  bool accept = true;
  double delay = 0.0;
  double retry_after = 0.0;
};

/// Reliable, at-most-once-effect delivery on top of the lossy
/// PhysicalNetwork: positive ACKs, per-message timeouts derived from the
/// estimated RTT, exponential backoff with deterministic jitter, bounded
/// retries, and dead-peer suspicion.
///
/// Semantics:
///  - `on_deliver` runs at the receiver exactly once per logical message,
///    no matter how many retransmissions arrive (duplicates are ACKed but
///    deduplicated by message id) — protocols get idempotent delivery for
///    free.
///  - Exactly one of `on_acked` / `on_give_up` eventually runs at the
///    sender, so barrier-style completion accounting never hangs.
///  - A peer that accumulates `suspicion_threshold` consecutive give-ups
///    is *suspected* dead; any later ACK from it clears the suspicion.
///    The suspicion listener fires on the transition into suspicion — the
///    hook CEMPaR uses to promote a standby super-peer.
///
/// Determinism: all calls run on the simulator driver thread; message ids
/// increase in scheduling order and jitter streams are keyed by
/// (seed, msg_id, attempt), never by wall clock or thread identity.
class ReliableTransport {
 public:
  using MsgId = uint64_t;
  using SuspicionListener = std::function<void(NodeId suspect)>;
  using AdmissionHook =
      std::function<AdmissionVerdict(NodeId to, MessageType type)>;

  ReliableTransport(Simulator& sim, PhysicalNetwork& net,
                    ReliableTransportOptions options = {});

  /// Sends `bytes` from `from` to `to` with retries. Any callback may be
  /// empty. Returns the logical message id.
  MsgId SendReliable(NodeId from, NodeId to, std::size_t bytes,
                     MessageType type, std::function<void()> on_deliver,
                     std::function<void()> on_acked = nullptr,
                     std::function<void()> on_give_up = nullptr);

  /// Estimated round-trip time for a (data, ACK) exchange between two
  /// peers, used to derive the initial retransmission timeout.
  double EstimateRtt(NodeId from, NodeId to, std::size_t bytes) const;

  /// Timeout armed for attempt `attempt` (0-based) of message `id`.
  double RetransmissionTimeout(MsgId id, std::size_t attempt,
                               double base_rto) const;

  bool IsSuspected(NodeId node) const;
  std::size_t SuspicionLevel(NodeId node) const;
  void ClearSuspicion(NodeId node);
  void SetSuspicionListener(SuspicionListener listener) {
    suspicion_listener_ = std::move(listener);
  }

  /// Installs receiver-side admission control. Consulted once per *fresh*
  /// data arrival (duplicates of an already-delivered message are just
  /// re-ACKed); null (the default) keeps the pre-overload behavior
  /// bit-identical. A rejected message costs an overload-capped retry
  /// schedule driven by the server's retry_after, not the standard backoff
  /// ladder.
  void SetAdmissionHook(AdmissionHook hook) { admission_ = std::move(hook); }

  /// Overload NACKs processed at senders (counts retries and give-ups).
  uint64_t overload_rejects() const { return overload_rejects_; }

  /// Messages currently awaiting an ACK.
  std::size_t in_flight() const { return pending_.size(); }

  const ReliableTransportOptions& options() const { return options_; }

 private:
  struct Pending {
    MsgId id = 0;
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    std::size_t bytes = 0;
    MessageType type = MessageType::kCount;
    std::size_t attempts = 0;  // attempts issued so far
    bool settled = false;      // acked or given up
    /// Overload NACKs received; capped by max_overload_retries.
    std::size_t overload_rejects = 0;
    /// True while waiting out a server-suggested retry-after; suppresses
    /// the standard timeout path so a shed message is retried exactly once
    /// per NACK instead of storming.
    bool overload_wait = false;
    /// Message ended in give-up because the peer shed it (peer is alive —
    /// give-up must not raise dead-peer suspicion).
    bool overloaded = false;
    SimTime sent_at = 0.0;  // first-attempt time, for settle latency
    /// Logical-message span: every physical attempt (and its ACK) nests
    /// under it, so one trace shows the full retry history.
    TraceContext trace;
    std::function<void()> on_deliver;
    std::function<void()> on_acked;
    std::function<void()> on_give_up;
  };

  void Attempt(std::shared_ptr<Pending> p);
  void HandleTimeout(std::shared_ptr<Pending> p, std::size_t attempt);
  void HandleAck(std::shared_ptr<Pending> p);
  void HandleOverloadNack(std::shared_ptr<Pending> p, double retry_after);
  void GiveUp(std::shared_ptr<Pending> p);
  void RaiseSuspicion(NodeId node);

  Simulator& sim_;
  PhysicalNetwork& net_;
  ReliableTransportOptions options_;
  MsgId next_id_ = 1;
  std::unordered_map<MsgId, std::shared_ptr<Pending>> pending_;
  /// Message ids whose payload already ran at the receiver (dedup).
  std::unordered_set<MsgId> delivered_;
  /// Consecutive give-ups per target peer.
  std::vector<std::size_t> suspicion_;
  SuspicionListener suspicion_listener_;
  AdmissionHook admission_;
  uint64_t overload_rejects_ = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PSIM_TRANSPORT_H_
