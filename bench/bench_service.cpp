// SVC1 — real-socket service robustness: train CEMPaR and PACE, stand the
// epoll daemon up on an ephemeral loopback port, and replay the PR 8
// session schedule over real TCP connections. Two arms per algorithm:
//
//   clean    the replay alone — the latency/goodput baseline
//   faulted  the same replay with the SocketFaultInjector running
//            concurrently (abrupt RSTs, slowloris stalls, one-byte frame
//            drip, the malformed-bytes set)
//
// The robustness claim: the faulted arm loses nothing. Same request count
// served, zero replay failures, zero lost connections, and a per-answer
// fingerprint identical to the clean arm's — socket-level abuse changes no
// prediction. Each arm gets a freshly trained service (same seed), so the
// fingerprints are comparable by construction. Every arm ends with a
// graceful drain that must complete inside the deadline.
//
// `--smoke` runs a small grid and writes the same CSV schema for CI.

#include <cstdio>
#include <cstring>
#include <thread>

#include "bench/bench_util.h"
#include "net/daemon.h"
#include "net/socket_fault.h"
#include "p2pdmt/service_harness.h"
#include "p2pdmt/service_loadgen.h"

using namespace p2pdt_bench;

namespace {

struct ServiceRow {
  std::string algorithm;
  std::string arm;
  ServiceLoadResult replay;
  SocketFaultReport faults;  // zero-initialised on the clean arm
  DaemonStats daemon;
  double train_wall_s = 0.0;
};

struct ServiceBenchOptions {
  std::size_t num_peers = 24;
  std::size_t num_tags = 6;
  std::size_t sessions = 16;
  std::size_t min_docs = 10;
  std::size_t max_docs = 20;
  double arrival_rate = 200.0;
  std::size_t catalog_cap = 256;
  double idle_timeout = 2.0;
  double max_wall_seconds = 300.0;
};

void PrintHeader() {
  std::printf("%-8s %-8s %8s %8s %7s %7s %7s %8s %8s %7s %6s %6s\n", "algo",
              "arm", "offered", "ok", "failed", "shed", "io_err", "p95_s",
              "rate/s", "reaped", "drain", "alive");
}

void PrintRow(const ServiceRow& row) {
  std::printf(
      "%-8s %-8s %8llu %8llu %7llu %7llu %7llu %8.4f %8.1f %7llu %6d %6d\n",
      row.algorithm.c_str(), row.arm.c_str(),
      static_cast<unsigned long long>(row.replay.load.offered),
      static_cast<unsigned long long>(row.replay.load.ok),
      static_cast<unsigned long long>(row.replay.load.failed),
      static_cast<unsigned long long>(row.replay.load.shed),
      static_cast<unsigned long long>(row.replay.io_errors),
      row.replay.load.p95_latency, row.replay.achieved_rate,
      static_cast<unsigned long long>(row.daemon.reaped_idle),
      row.daemon.drain_completed ? 1 : 0, row.faults.liveness_ok ? 1 : 0);
}

/// One trained daemon, one replay, optional concurrent fault script, then a
/// graceful drain. The daemon runs on its own thread; it is fully
/// constructed before the thread starts (that construction is the
/// happens-before edge handing the classifier to the loop thread), and
/// after Run() returns only this thread reads the stats.
Result<ServiceRow> RunArm(const VectorizedCorpus& corpus,
                          AlgorithmType algorithm, bool faulted,
                          const ServiceBenchOptions& bench) {
  ServiceRow row;
  row.algorithm = algorithm == AlgorithmType::kCempar ? "cempar" : "pace";
  row.arm = faulted ? "faulted" : "clean";

  ServiceHarnessOptions harness;
  harness.algorithm = algorithm;
  harness.env.num_peers = bench.num_peers;
  harness.max_docs = bench.catalog_cap;
  harness.seed = 20100913;
  const double t0 = MonotonicSeconds();
  Result<std::unique_ptr<TrainedService>> service =
      BuildTrainedService(corpus, harness);
  P2PDT_RETURN_IF_ERROR(service.status());
  row.train_wall_s = MonotonicSeconds() - t0;
  TrainedService& trained = **service;

  DaemonOptions options;
  options.port = 0;  // ephemeral — no collisions across arms
  options.idle_timeout = bench.idle_timeout;
  ServiceDaemon daemon(options,
                      [&trained](NodeId requester, const SparseVector& x) {
                        return trained.Serve(requester, x);
                      });
  P2PDT_RETURN_IF_ERROR(daemon.Start());
  std::thread loop([&daemon] { daemon.Run(); });

  SocketFaultReport faults;
  Status fault_status = Status::OK();
  std::thread abuse;
  if (faulted) {
    SocketFaultOptions fo;
    fo.port = daemon.port();
    fo.io_timeout = bench.idle_timeout + 5.0;
    if (!trained.catalog.empty()) fo.doc = trained.catalog[0];
    abuse = std::thread([fo, &faults, &fault_status] {
      Result<SocketFaultReport> r = RunSocketFaults(fo);
      if (r.ok()) {
        faults = *r;
      } else {
        fault_status = r.status();
      }
    });
  }

  ServiceLoadOptions load;
  load.port = daemon.port();
  load.max_wall_seconds = bench.max_wall_seconds;
  load.schedule.sessions = bench.sessions;
  load.schedule.min_docs = bench.min_docs;
  load.schedule.max_docs = bench.max_docs;
  load.schedule.arrival_rate = bench.arrival_rate;
  load.schedule.seed = 20100913;
  Result<ServiceLoadResult> replay = RunServiceLoad(load, trained.catalog);

  if (abuse.joinable()) abuse.join();
  daemon.RequestDrain();
  loop.join();

  P2PDT_RETURN_IF_ERROR(replay.status());
  P2PDT_RETURN_IF_ERROR(fault_status);
  row.replay = *replay;
  row.faults = faults;
  row.daemon = daemon.stats();
  return row;
}

CsvWriter ServiceCsv(const std::vector<ServiceRow>& rows) {
  CsvWriter csv({"algorithm", "arm", "offered", "completed", "ok", "degraded",
                 "cached", "failed", "shed", "retries", "within_slo",
                 "io_errors", "p50_s", "p95_s", "p99_s", "achieved_rate",
                 "wall_s", "train_wall_s", "fingerprint", "daemon_accepted",
                 "daemon_requests", "daemon_malformed", "daemon_oversized",
                 "daemon_reaped_idle", "daemon_read_errors",
                 "daemon_slow_consumer_closed", "drain_completed",
                 "fault_resets", "fault_stalls_reaped", "fault_typed_errors",
                 "fault_predicts_ok", "fault_liveness_ok"});
  char buf[32];
  auto fmt = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  auto hex = [&buf](uint64_t v) {
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
  };
  for (const ServiceRow& row : rows) {
    const LoadGenResult& r = row.replay.load;
    const DaemonStats& d = row.daemon;
    csv.AddRow({row.algorithm, row.arm, std::to_string(r.offered),
                std::to_string(r.completed), std::to_string(r.ok),
                std::to_string(r.degraded), std::to_string(r.cached),
                std::to_string(r.failed), std::to_string(r.shed),
                std::to_string(r.retries), std::to_string(r.within_slo),
                std::to_string(row.replay.io_errors), fmt(r.p50_latency),
                fmt(r.p95_latency), fmt(r.p99_latency),
                fmt(row.replay.achieved_rate), fmt(row.replay.wall_seconds),
                fmt(row.train_wall_s), hex(r.fingerprint),
                std::to_string(d.accepted), std::to_string(d.requests),
                std::to_string(d.malformed_frames + d.malformed_payloads),
                std::to_string(d.oversized_frames),
                std::to_string(d.reaped_idle), std::to_string(d.read_errors),
                std::to_string(d.slow_consumer_closed),
                std::to_string(d.drain_completed ? 1 : 0),
                std::to_string(row.faults.resets_done),
                std::to_string(row.faults.stalls_reaped),
                std::to_string(row.faults.typed_errors_received),
                std::to_string(row.faults.predicts_ok),
                std::to_string(row.faults.liveness_ok ? 1 : 0)});
  }
  return csv;
}

int RunGrid(const ServiceBenchOptions& bench) {
  const VectorizedCorpus& corpus =
      SharedCorpus(bench.num_peers, bench.num_tags);
  PrintHeader();
  std::vector<ServiceRow> rows;
  for (AlgorithmType algorithm :
       {AlgorithmType::kPace, AlgorithmType::kCempar}) {
    for (bool faulted : {false, true}) {
      Result<ServiceRow> row = RunArm(corpus, algorithm, faulted, bench);
      if (!row.ok()) {
        std::fprintf(stderr, "arm failed: %s\n",
                     row.status().ToString().c_str());
        return 1;
      }
      PrintRow(*row);
      rows.push_back(std::move(*row));
    }
  }
  WriteResults(ServiceCsv(rows), "service.csv");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    std::printf("=== SVC1 smoke: socket replay, clean vs faulted ===\n");
    ServiceBenchOptions bench;
    bench.num_peers = 12;
    bench.num_tags = 4;
    bench.sessions = 8;
    bench.min_docs = 5;
    bench.max_docs = 10;
    bench.catalog_cap = 64;
    return RunGrid(bench);
  }

  // Full mode: >= 10k requests per arm under concurrent fault injection —
  // the ISSUE acceptance bar.
  std::printf("=== SVC1: socket replay, clean vs faulted, 10k+ requests ===\n\n");
  ServiceBenchOptions bench;
  bench.num_peers = 24;
  bench.num_tags = 6;
  bench.sessions = 160;
  bench.min_docs = 55;
  bench.max_docs = 75;
  bench.arrival_rate = 400.0;
  bench.catalog_cap = 512;
  // Sessions idle between Poisson arrivals; at this rate a 2 s reaper
  // would close ~2.5% of legitimate gaps mid-session. Keep the deadline
  // far above any plausible gap so only injected stalls get reaped.
  bench.idle_timeout = 20.0;
  bench.max_wall_seconds = 600.0;
  return RunGrid(bench);
}
