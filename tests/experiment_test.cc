#include "p2pdmt/experiment.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

const VectorizedCorpus& SharedCorpus() {
  static const VectorizedCorpus corpus = [] {
    CorpusOptions opt;
    opt.num_users = 12;
    opt.min_docs_per_user = 40;
    opt.max_docs_per_user = 50;
    opt.num_tags = 6;
    opt.vocabulary_size = 1200;
    opt.seed = 2024;
    return std::move(MakeVectorizedCorpus(opt)).value();
  }();
  return corpus;
}

ExperimentOptions BaseOptions(AlgorithmType algo) {
  ExperimentOptions opt;
  opt.env.num_peers = 12;
  opt.algorithm = algo;
  opt.max_test_documents = 80;
  opt.distribution.cls = ClassDistribution::kByUser;
  return opt;
}

TEST(SplitCorpusTest, FractionAndUserParallelism) {
  CorpusSplit split = SplitCorpus(SharedCorpus(), 0.2, 1);
  std::size_t total = SharedCorpus().dataset.size();
  EXPECT_NEAR(static_cast<double>(split.train.size()) / total, 0.2, 0.01);
  EXPECT_EQ(split.train.size() + split.test.size(), total);
  EXPECT_EQ(split.train_user.size(), split.train.size());
  EXPECT_EQ(split.test_user.size(), split.test.size());
}

TEST(SplitCorpusTest, DeterministicInSeed) {
  CorpusSplit a = SplitCorpus(SharedCorpus(), 0.3, 7);
  CorpusSplit b = SplitCorpus(SharedCorpus(), 0.3, 7);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].x, b.train[i].x);
  }
}

TEST(MakeClassifierTest, CemparNeedsChord) {
  ExperimentOptions opt = BaseOptions(AlgorithmType::kCempar);
  opt.env.overlay = OverlayType::kUnstructured;
  auto env = std::move(Environment::Create(opt.env)).value();
  EXPECT_EQ(MakeClassifier(*env, opt).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(MakeClassifierTest, AllAlgorithmsConstructible) {
  for (AlgorithmType a :
       {AlgorithmType::kCempar, AlgorithmType::kPace,
        AlgorithmType::kCentralized, AlgorithmType::kLocalOnly,
        AlgorithmType::kModelAvg}) {
    ExperimentOptions opt = BaseOptions(a);
    auto env = std::move(Environment::Create(opt.env)).value();
    Result<std::unique_ptr<P2PClassifier>> algo = MakeClassifier(*env, opt);
    ASSERT_TRUE(algo.ok()) << AlgorithmTypeToString(a);
    EXPECT_EQ(algo.value()->name(), AlgorithmTypeToString(a));
  }
}

TEST(ExperimentTest, CollaborationBeatsLocalOnly) {
  Result<ExperimentResult> local =
      RunExperiment(SharedCorpus(), BaseOptions(AlgorithmType::kLocalOnly));
  Result<ExperimentResult> cempar =
      RunExperiment(SharedCorpus(), BaseOptions(AlgorithmType::kCempar));
  Result<ExperimentResult> pace =
      RunExperiment(SharedCorpus(), BaseOptions(AlgorithmType::kPace));
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(cempar.ok());
  ASSERT_TRUE(pace.ok());
  EXPECT_GT(cempar->metrics.micro_f1, local->metrics.micro_f1 + 0.15);
  EXPECT_GT(pace->metrics.micro_f1, local->metrics.micro_f1 + 0.15);
}

TEST(ExperimentTest, CemparTracksCentralizedAccuracy) {
  // The paper's headline: "classification accuracy comparable to
  // centralized approaches".
  Result<ExperimentResult> cempar =
      RunExperiment(SharedCorpus(), BaseOptions(AlgorithmType::kCempar));
  Result<ExperimentResult> central = RunExperiment(
      SharedCorpus(), BaseOptions(AlgorithmType::kCentralized));
  ASSERT_TRUE(cempar.ok() && central.ok());
  EXPECT_GT(central->metrics.micro_f1, 0.85);
  EXPECT_GE(cempar->metrics.micro_f1, central->metrics.micro_f1 - 0.08);
}

TEST(ExperimentTest, CommunicationShapes) {
  Result<ExperimentResult> cempar =
      RunExperiment(SharedCorpus(), BaseOptions(AlgorithmType::kCempar));
  Result<ExperimentResult> pace =
      RunExperiment(SharedCorpus(), BaseOptions(AlgorithmType::kPace));
  Result<ExperimentResult> local =
      RunExperiment(SharedCorpus(), BaseOptions(AlgorithmType::kLocalOnly));
  ASSERT_TRUE(cempar.ok() && pace.ok() && local.ok());
  // CEMPaR trains much cheaper than PACE's broadcast; PACE predicts free.
  EXPECT_LT(cempar->train_bytes, pace->train_bytes / 4);
  EXPECT_EQ(pace->predict_bytes, 0u);
  EXPECT_GT(cempar->predict_bytes, 0u);
  EXPECT_EQ(local->train_bytes, 0u);
}

TEST(ExperimentTest, ResultRatiosComputed) {
  Result<ExperimentResult> r =
      RunExperiment(SharedCorpus(), BaseOptions(AlgorithmType::kCempar));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_peers, 12u);
  EXPECT_EQ(r->test_documents, 80u);
  EXPECT_NEAR(r->train_bytes_per_peer(),
              static_cast<double>(r->train_bytes) / 12.0, 1e-9);
  EXPECT_GT(r->predict_bytes_per_doc(), 0.0);
  EXPECT_NE(r->ToString().find("cempar"), std::string::npos);
}

TEST(ExperimentTest, ChurnExperimentCompletes) {
  ExperimentOptions opt = BaseOptions(AlgorithmType::kCempar);
  opt.env.churn = ChurnType::kExponential;
  opt.env.churn_mean_online_sec = 60.0;
  opt.env.churn_mean_offline_sec = 15.0;
  opt.warmup_sim_seconds = 5.0;
  Result<ExperimentResult> r = RunExperiment(SharedCorpus(), opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->churn, "exponential");
  // Quality may degrade but the protocol must still answer most queries.
  EXPECT_LT(r->failed_predictions, r->test_documents / 2);
}

TEST(ExperimentTest, DeterministicInSeed) {
  ExperimentOptions opt = BaseOptions(AlgorithmType::kPace);
  Result<ExperimentResult> a = RunExperiment(SharedCorpus(), opt);
  Result<ExperimentResult> b = RunExperiment(SharedCorpus(), opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->metrics.micro_f1, b->metrics.micro_f1);
  EXPECT_EQ(a->train_bytes, b->train_bytes);
}

}  // namespace
}  // namespace p2pdt
