#ifndef P2PDT_COMMON_COST_LEDGER_H_
#define P2PDT_COMMON_COST_LEDGER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace p2pdt {

/// Scalar operation counters the hot paths charge. X-macro so the struct,
/// arithmetic, and exporters never drift apart when a counter is added.
#define P2PDT_COST_SCALAR_FIELDS(X) \
  X(sparse_dot_calls)               \
  X(sparse_dot_ops)                 \
  X(sparse_dist_calls)              \
  X(sparse_dist_ops)                \
  X(sparse_axpy_ops)                \
  X(kernel_evals)                   \
  X(smo_iterations)                 \
  X(lsh_signature_dots)             \
  X(lsh_probes)                     \
  X(lsh_candidates)                 \
  X(kmeans_distance_evals)          \
  X(serialized_bytes)               \
  X(deserialized_bytes)

/// One block of deterministic work/byte counts. Every field is a plain
/// uint64 total: integers are additive and commutative, so per-thread
/// blocks summed at a quiesce point are bit-identical for any work
/// partition (serial == sharded) — the property the scale-determinism
/// tests assert.
struct CostCounts {
  /// Sized for MessageType::kCount (11) with slack so common/ never needs
  /// to see the p2psim enum; network code indexes by the enum's value.
  static constexpr std::size_t kNumWireTypes = 16;

#define P2PDT_COST_DECLARE(name) uint64_t name = 0;
  P2PDT_COST_SCALAR_FIELDS(P2PDT_COST_DECLARE)
#undef P2PDT_COST_DECLARE

  /// Wire accounting attributed per message type (index = MessageType).
  uint64_t wire_messages_by_type[kNumWireTypes] = {};
  uint64_t wire_bytes_by_type[kNumWireTypes] = {};

  uint64_t total_wire_messages() const;
  uint64_t total_wire_bytes() const;

  CostCounts operator-(const CostCounts& o) const;
  CostCounts& operator+=(const CostCounts& o);
  bool operator==(const CostCounts& o) const;
  bool operator!=(const CostCounts& o) const { return !(*this == o); }

  /// (name, value) pairs for the scalar fields, in declaration order —
  /// the one enumeration exporters and tests iterate.
  std::vector<std::pair<const char*, uint64_t>> Scalars() const;

  /// Canonical `name=value` lines — a cheap bit-exact fingerprint.
  std::string ToString() const;
};

/// Process-wide deterministic cost ledger.
///
/// Counting sites follow the observability null-pointer idiom: disabled
/// (the default) costs one relaxed atomic load per site and charges
/// nothing, so the ledger is behavior- and allocation-neutral. Enabled,
/// each thread charges a thread-local block with plain (non-atomic)
/// increments; Collect() sums every block under the registry mutex.
///
/// Determinism contract: Collect() is only meaningful at a quiesce point —
/// after ParallelFor / ShardedPhase joins — where the pool's completion
/// handshake gives the driver a happens-before edge over every worker
/// charge. Counters are cumulative and never reset; callers diff two
/// Collect() snapshots to cost a phase, exactly like MetricsSnapshot.
class CostLedger {
 public:
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Returns the previous state so scopes can restore it.
  static bool SetEnabled(bool on);

  /// This thread's block; callers gate on enabled() first so the TLS
  /// registration cost is only ever paid by instrumented runs.
  static CostCounts& Tls();

  /// Sum of every thread's block since process start (see class comment
  /// for when this is deterministic).
  static CostCounts Collect();

 private:
  static std::atomic<bool> enabled_;
};

/// Enables the ledger for a scope and restores the prior state on exit.
class ScopedCostLedger {
 public:
  explicit ScopedCostLedger(bool on) : prev_(CostLedger::SetEnabled(on)) {}
  ~ScopedCostLedger() { CostLedger::SetEnabled(prev_); }
  ScopedCostLedger(const ScopedCostLedger&) = delete;
  ScopedCostLedger& operator=(const ScopedCostLedger&) = delete;

 private:
  bool prev_;
};

}  // namespace p2pdt

#endif  // P2PDT_COMMON_COST_LEDGER_H_
