// PhaseProfiler contract: lexical nesting per thread, self-time
// attribution, the ambient phase prefix, collapsed-stack formatting, and
// strict neutrality when no profiler is installed.

#include "common/profile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace p2pdt {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(PhaseProfilerTest, NoProfilerInstalledIsANoOp) {
  ASSERT_EQ(PhaseProfiler::Current(), nullptr);
  {
    PhaseScope a("orphan");
    PhaseScope b("nested");
  }
  // Installing afterwards shows nothing was recorded anywhere.
  PhaseProfiler profiler;
  ScopedProfiler install(&profiler);
  EXPECT_TRUE(profiler.empty());
  EXPECT_EQ(profiler.total_micros(), 0u);
  EXPECT_EQ(profiler.ToCollapsed(), "");
}

TEST(PhaseProfilerTest, InstallReturnsPreviousProfiler) {
  PhaseProfiler a;
  PhaseProfiler b;
  EXPECT_EQ(PhaseProfiler::Install(&a), nullptr);
  EXPECT_EQ(PhaseProfiler::Install(&b), &a);
  EXPECT_EQ(PhaseProfiler::Install(nullptr), &b);
  EXPECT_EQ(PhaseProfiler::Current(), nullptr);
}

TEST(PhaseProfilerTest, ScopesNestLexically) {
  PhaseProfiler profiler;
  {
    ScopedProfiler install(&profiler);
    PhaseScope outer("outer");
    { PhaseScope inner("inner"); }
    { PhaseScope inner("inner"); }
  }
  std::string collapsed = profiler.ToCollapsed();
  EXPECT_NE(collapsed.find("outer;inner "), std::string::npos) << collapsed;
  // The parent line carries self time only; both stacks appear once each
  // (repeat scopes with the same path merge).
  std::vector<std::string> lines = Lines(collapsed);
  ASSERT_EQ(lines.size(), 2u) << collapsed;
  EXPECT_EQ(lines[0].rfind("outer ", 0), 0u) << collapsed;
  EXPECT_EQ(lines[1].rfind("outer;inner ", 0), 0u) << collapsed;
}

TEST(PhaseProfilerTest, AmbientPhaseRootsEveryStack) {
  PhaseProfiler profiler;
  {
    ScopedProfiler install(&profiler);
    profiler.SetPhase("train");
    { PhaseScope s("local_train"); }
    profiler.SetPhase("predict");
    { PhaseScope s("vote"); }
  }
  std::string collapsed = profiler.ToCollapsed();
  EXPECT_NE(collapsed.find("train;local_train "), std::string::npos)
      << collapsed;
  EXPECT_NE(collapsed.find("predict;vote "), std::string::npos) << collapsed;
}

TEST(PhaseProfilerTest, WorkerThreadsKeepIndependentStacks) {
  PhaseProfiler profiler;
  {
    ScopedProfiler install(&profiler);
    profiler.SetPhase("train");
    PhaseScope driver("driver_only");
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back([] { PhaseScope s("worker"); });
    }
    for (auto& t : threads) t.join();
  }
  std::string collapsed = profiler.ToCollapsed();
  // A worker's stack is rooted at the ambient phase, not nested under
  // whatever scope the driver thread happens to hold open.
  EXPECT_NE(collapsed.find("train;worker "), std::string::npos) << collapsed;
  EXPECT_EQ(collapsed.find("driver_only;worker"), std::string::npos)
      << collapsed;
}

TEST(PhaseProfilerTest, CollapsedFormatIsSortedIntegerMicros) {
  PhaseProfiler profiler;
  {
    ScopedProfiler install(&profiler);
    { PhaseScope s("zeta"); }
    { PhaseScope s("alpha"); }
    {
      PhaseScope s("alpha");
      PhaseScope t("beta");
    }
  }
  std::vector<std::string> lines = Lines(profiler.ToCollapsed());
  ASSERT_FALSE(lines.empty());
  std::vector<std::string> stacks;
  for (const std::string& line : lines) {
    auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    stacks.push_back(line.substr(0, space));
    std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty());
    for (char c : value) EXPECT_TRUE(c >= '0' && c <= '9') << line;
  }
  std::vector<std::string> sorted = stacks;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(stacks, sorted);
}

TEST(PhaseProfilerTest, WriteCollapsedRoundTripsThroughDisk) {
  PhaseProfiler profiler;
  {
    ScopedProfiler install(&profiler);
    PhaseScope s("io");
  }
  std::string path = ::testing::TempDir() + "/flame_test.txt";
  Status s = profiler.WriteCollapsed(path);
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), profiler.ToCollapsed());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace p2pdt
