#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(ThreadPoolTest, DestructorDrainsSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  int ran = 0;
  pool.Submit([&ran] { ++ran; });
  EXPECT_EQ(ran, 1);  // inline: already done when Submit returned
  std::vector<int> out(10, 0);
  pool.ParallelFor(0, 10, 3, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = static_cast<int>(i);
  });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, n, 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingleChunkRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, 4, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A range that fits in one chunk runs inline as a single call.
  pool.ParallelFor(0, 3, 8, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 3u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyParallelFors) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> out(64, -1);
    pool.ParallelFor(0, out.size(), 4, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) out[i] = round;
    });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0),
              round * static_cast<int>(out.size()));
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [](std::size_t lo, std::size_t) {
                         if (lo == 42) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives a throwing ParallelFor.
  std::atomic<int> counter{0};
  pool.ParallelFor(0, 10, 1, [&](std::size_t lo, std::size_t hi) {
    counter.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, LowestIndexedExceptionWinsDeterministically) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    try {
      pool.ParallelFor(0, 64, 1, [](std::size_t lo, std::size_t) {
        if (lo == 9) throw std::runtime_error("early");
        if (lo == 50) throw std::runtime_error("late");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "early");
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(16 * 16);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, 16, 1, [&](std::size_t olo, std::size_t ohi) {
    for (std::size_t o = olo; o < ohi; ++o) {
      pool.ParallelFor(0, 16, 1, [&, o](std::size_t ilo, std::size_t ihi) {
        for (std::size_t i = ilo; i < ihi; ++i) {
          hits[o * 16 + i].fetch_add(1);
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, BoundedQueueStillCompletesUnderBurst) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2, /*max_queued=*/2);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, MaxThreadsCapsParallelism) {
  // Functional check only: a cap of 1 must run the whole range inline.
  ThreadPool pool(4);
  std::vector<int> out(100, 0);
  pool.ParallelFor(
      0, out.size(), 10,
      [&](std::size_t lo, std::size_t hi) {
        EXPECT_FALSE(ThreadPool::InWorker());  // caller-only execution
        for (std::size_t i = lo; i < hi; ++i) out[i] = 1;
      },
      /*max_threads=*/1);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 100);
}

TEST(ThreadPoolTest, GlobalConcurrencyKnob) {
  ThreadPool::SetGlobalConcurrency(3);
  EXPECT_EQ(ThreadPool::GlobalConcurrency(), 3u);
  EXPECT_EQ(ThreadPool::Global().num_workers(), 2u);

  ThreadPool::SetGlobalConcurrency(1);  // serial mode: no workers at all
  EXPECT_EQ(ThreadPool::GlobalConcurrency(), 1u);
  EXPECT_EQ(ThreadPool::Global().num_workers(), 0u);

  std::vector<int> out(20, 0);
  ParallelFor(0, out.size(), 4, /*threads=*/0,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) out[i] = 1;
              });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 20);

  ThreadPool::SetGlobalConcurrency(4);
  EXPECT_EQ(ThreadPool::Global().num_workers(), 3u);
}

}  // namespace
}  // namespace p2pdt
