#include "common/profile.h"

#include <fstream>
#include <vector>

namespace p2pdt {

namespace {

std::atomic<PhaseProfiler*> g_profiler{nullptr};

/// Per-thread lexical scope stack. Lives in a function-local so threads
/// started before first use still get one lazily.
struct ThreadStack {
  std::vector<const char*> names;
  std::vector<uint64_t> child_micros;
};

ThreadStack& Stack() {
  thread_local ThreadStack stack;
  return stack;
}

/// Collapsed-format segment: ';' separates stack frames and ' ' ends the
/// path, so neither may appear inside a name.
std::string Sanitize(const char* name) {
  std::string out(name);
  for (char& c : out) {
    if (c == ';' || c == ' ' || c == '\n') c = '_';
  }
  return out;
}

}  // namespace

PhaseProfiler* PhaseProfiler::Current() {
  return g_profiler.load(std::memory_order_acquire);
}

PhaseProfiler* PhaseProfiler::Install(PhaseProfiler* profiler) {
  return g_profiler.exchange(profiler, std::memory_order_acq_rel);
}

void PhaseProfiler::SetPhase(std::string phase) {
  std::lock_guard<std::mutex> lock(mu_);
  phase_ = std::move(phase);
}

void PhaseProfiler::Accumulate(const std::string& path,
                               uint64_t self_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string full = phase_.empty() ? path : phase_ + ";" + path;
  self_micros_[full] += self_micros;
}

std::string PhaseProfiler::ToCollapsed() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [path, micros] : self_micros_) {
    out += path;
    out += ' ';
    out += std::to_string(micros);
    out += '\n';
  }
  return out;
}

Status PhaseProfiler::WriteCollapsed(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << ToCollapsed();
  out.close();
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

uint64_t PhaseProfiler::total_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [path, micros] : self_micros_) total += micros;
  return total;
}

bool PhaseProfiler::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return self_micros_.empty();
}

PhaseScope::PhaseScope(const char* name) : profiler_(PhaseProfiler::Current()) {
  if (profiler_ == nullptr) return;
  ThreadStack& stack = Stack();
  stack.names.push_back(name);
  stack.child_micros.push_back(0);
  start_ = std::chrono::steady_clock::now();
}

PhaseScope::~PhaseScope() {
  if (profiler_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  const uint64_t total = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count());
  ThreadStack& stack = Stack();
  std::string path;
  for (std::size_t i = 0; i < stack.names.size(); ++i) {
    if (i > 0) path += ';';
    path += Sanitize(stack.names[i]);
  }
  const uint64_t child = stack.child_micros.back();
  stack.names.pop_back();
  stack.child_micros.pop_back();
  if (!stack.child_micros.empty()) stack.child_micros.back() += total;
  profiler_->Accumulate(path, total > child ? total - child : 0);
}

}  // namespace p2pdt
