#include "common/checkpoint.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"
#include "common/string_util.h"

namespace p2pdt {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kCheckpointMagic = 0x50324350;  // "P2CP"
constexpr uint16_t kCheckpointVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 2 + 2 + 8 + 4;
constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestHeader[] = "p2pdt-checkpoint-manifest v1";

bool ValidKey(const std::string& key) {
  if (key.empty()) return false;
  for (char c : key) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void PutLE(uint64_t v, int bytes, std::string& out) {
  for (int i = 0; i < bytes; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

uint64_t GetLE(const unsigned char* p, int bytes) {
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) v |= uint64_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& data) {
  // tmp + write + fsync(file) + rename + fsync(parent directory). Without
  // the first fsync the rename can land before the data blocks (a crash
  // yields a valid-looking file of garbage); without the directory fsync
  // the rename itself may not survive a crash. CheckpointManager's
  // durability claims rest on this exact sequence.
  const std::string tmp = path + ".tmp";
  const int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                      0644);
  if (fd < 0) {
    return Status::IOError("cannot open " + tmp + ": " + strerror(errno));
  }
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = write(fd, data.data() + off, data.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close(fd);
      unlink(tmp.c_str());
      return Status::IOError("short write to " + tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (fsync(fd) != 0) {
    close(fd);
    unlink(tmp.c_str());
    return Status::IOError("fsync " + tmp + ": " + strerror(errno));
  }
  if (close(fd) != 0) {
    unlink(tmp.c_str());
    return Status::IOError("close " + tmp + ": " + strerror(errno));
  }
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    const Status st = Status::IOError("cannot rename " + tmp + " -> " + path +
                                      ": " + strerror(errno));
    unlink(tmp.c_str());
    return st;
  }
  // Durable rename: fsync the parent directory entry.
  const fs::path parent = fs::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dir_fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) {
    return Status::IOError("cannot open directory " + dir + ": " +
                           strerror(errno));
  }
  const int rc = fsync(dir_fd);
  close(dir_fd);
  if (rc != 0) {
    return Status::IOError("fsync directory " + dir + ": " + strerror(errno));
  }
  return Status::OK();
}

CheckpointManager::CheckpointManager(std::string directory)
    : directory_(std::move(directory)) {}

std::string CheckpointManager::PathFor(const std::string& key) const {
  return directory_ + "/" + key + ".ckpt";
}

Status CheckpointManager::EnsureLoaded() {
  if (loaded_) return Status::OK();
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    return Status::IOError("cannot create " + directory_ + ": " +
                           ec.message());
  }
  loaded_ = true;
  manifest_.clear();

  std::ifstream f(directory_ + "/" + kManifestName);
  if (!f) {
    // No manifest (fresh directory, or it was lost): scan for checkpoints.
    RebuildManifestFromScan();
    return Status::OK();
  }
  std::string line;
  bool valid_header = std::getline(f, line) && line == kManifestHeader;
  bool torn = !valid_header;
  while (valid_header && std::getline(f, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3 || !ValidKey(fields[0])) {
      torn = true;  // half-written entry; fall back to the files themselves
      break;
    }
    ManifestEntry entry;
    char* end = nullptr;
    entry.size = std::strtoull(fields[1].c_str(), &end, 10);
    if (end == fields[1].c_str()) {
      torn = true;
      break;
    }
    entry.crc =
        static_cast<uint32_t>(std::strtoul(fields[2].c_str(), &end, 16));
    if (end == fields[2].c_str()) {
      torn = true;
      break;
    }
    manifest_[fields[0]] = entry;
  }
  if (torn) {
    // A torn manifest must not hide valid checkpoints: rebuild from scan.
    manifest_.clear();
    RebuildManifestFromScan();
  }
  return Status::OK();
}

void CheckpointManager::RebuildManifestFromScan() {
  std::error_code ec;
  fs::directory_iterator it(directory_, ec);
  if (ec) return;
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (!EndsWith(name, ".ckpt")) continue;
    std::string key = name.substr(0, name.size() - 5);
    if (!ValidKey(key)) continue;
    // Sizes/CRCs are re-derived lazily by Read; the scan records presence.
    ManifestEntry e;
    std::error_code size_ec;
    uint64_t fsize = entry.file_size(size_ec);
    e.size = size_ec || fsize < kHeaderBytes ? 0 : fsize - kHeaderBytes;
    manifest_[key] = e;
  }
}

Status CheckpointManager::WriteManifest() const {
  std::string out = kManifestHeader;
  out += '\n';
  for (const auto& [key, entry] : manifest_) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%08x", entry.crc);
    out += key + '\t' + std::to_string(entry.size) + '\t' + buf + '\n';
  }
  return AtomicWriteFile(directory_ + "/" + kManifestName, out);
}

Status CheckpointManager::Write(const std::string& key,
                                const std::string& payload) {
  if (!ValidKey(key)) {
    return Status::InvalidArgument("invalid checkpoint key: " + key);
  }
  P2PDT_RETURN_IF_ERROR(EnsureLoaded());

  const uint32_t crc = Crc32(payload);
  std::string file;
  file.reserve(kHeaderBytes + payload.size());
  PutLE(kCheckpointMagic, 4, file);
  PutLE(kCheckpointVersion, 2, file);
  PutLE(0, 2, file);  // flags
  PutLE(payload.size(), 8, file);
  PutLE(crc, 4, file);
  file += payload;

  P2PDT_RETURN_IF_ERROR(AtomicWriteFile(PathFor(key), file));
  manifest_[key] = {payload.size(), crc};
  ++stats_.writes;
  stats_.bytes_written += file.size();
  return WriteManifest();
}

Result<std::string> CheckpointManager::Read(const std::string& key) {
  if (!ValidKey(key)) {
    return Status::InvalidArgument("invalid checkpoint key: " + key);
  }
  P2PDT_RETURN_IF_ERROR(EnsureLoaded());

  std::ifstream f(PathFor(key), std::ios::binary);
  if (!f) return Status::NotFound("no checkpoint for key " + key);
  std::string file((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  ++stats_.reads;

  auto corrupt = [&](const std::string& why) -> Status {
    ++stats_.corrupt_reads;
    return Status::DataLoss("checkpoint " + key + ": " + why);
  };
  if (file.size() < kHeaderBytes) return corrupt("truncated header");
  const auto* p = reinterpret_cast<const unsigned char*>(file.data());
  if (GetLE(p, 4) != kCheckpointMagic) return corrupt("bad magic");
  const uint64_t version = GetLE(p + 4, 2);
  if (version != kCheckpointVersion) {
    return corrupt("unsupported version " + std::to_string(version));
  }
  const uint64_t payload_size = GetLE(p + 8, 8);
  const uint32_t expected_crc = static_cast<uint32_t>(GetLE(p + 16, 4));
  if (file.size() - kHeaderBytes != payload_size) {
    return corrupt("declared " + std::to_string(payload_size) +
                   " payload bytes, file holds " +
                   std::to_string(file.size() - kHeaderBytes));
  }
  std::string payload = file.substr(kHeaderBytes);
  if (Crc32(payload) != expected_crc) return corrupt("checksum mismatch");

  // Cross-check the manifest when it has real data for this key; a stale
  // manifest entry is repaired in memory rather than failing the read.
  auto it = manifest_.find(key);
  if (it == manifest_.end() || it->second.size != payload_size ||
      it->second.crc != expected_crc) {
    manifest_[key] = {payload_size, expected_crc};
  }
  stats_.bytes_read += file.size();
  return payload;
}

Status CheckpointManager::Remove(const std::string& key) {
  if (!ValidKey(key)) {
    return Status::InvalidArgument("invalid checkpoint key: " + key);
  }
  P2PDT_RETURN_IF_ERROR(EnsureLoaded());
  std::error_code ec;
  fs::remove(PathFor(key), ec);
  if (ec) return Status::IOError("cannot remove checkpoint: " + ec.message());
  if (manifest_.erase(key) > 0) return WriteManifest();
  return Status::OK();
}

bool CheckpointManager::Contains(const std::string& key) const {
  auto* self = const_cast<CheckpointManager*>(this);
  if (!self->EnsureLoaded().ok()) return false;
  return manifest_.count(key) > 0;
}

std::vector<std::string> CheckpointManager::Keys() const {
  auto* self = const_cast<CheckpointManager*>(this);
  if (!self->EnsureLoaded().ok()) return {};
  std::vector<std::string> keys;
  keys.reserve(manifest_.size());
  for (const auto& [key, entry] : manifest_) keys.push_back(key);
  return keys;
}

}  // namespace p2pdt
