file(REMOVE_RECURSE
  "libp2pdt_common.a"
)
