#ifndef P2PDT_COMMON_STOPWATCH_H_
#define P2PDT_COMMON_STOPWATCH_H_

#include <chrono>

namespace p2pdt {

/// Wall-clock stopwatch for coarse timing in examples and the bench harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace p2pdt

#endif  // P2PDT_COMMON_STOPWATCH_H_
