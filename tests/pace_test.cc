#include "p2pml/pace.h"

#include <gtest/gtest.h>

#include "p2pdmt/environment.h"

namespace p2pdt {
namespace {

std::vector<MultiLabelDataset> MakePeerData(std::size_t num_peers,
                                            std::size_t per_peer,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<MultiLabelDataset> peers(num_peers, MultiLabelDataset(4));
  for (std::size_t p = 0; p < num_peers; ++p) {
    for (std::size_t i = 0; i < per_peer; ++i) {
      TagId tag = static_cast<TagId>((p + i) % 4);
      MultiLabelExample ex;
      ex.x = SparseVector::FromPairs(
          {{tag * 3 + static_cast<uint32_t>(rng.NextU64(3)), 1.0},
           {12 + static_cast<uint32_t>(rng.NextU64(4)),
            0.3 * rng.NextDouble()}});
      ex.tags = {tag};
      peers[p].Add(std::move(ex));
    }
  }
  return peers;
}

SparseVector TagVector(TagId tag) {
  return SparseVector::FromPairs({{tag * 3u, 1.0}, {tag * 3u + 1, 1.0}});
}

struct Fixture {
  std::unique_ptr<Environment> env;
  std::unique_ptr<Pace> pace;

  explicit Fixture(std::size_t peers, PaceOptions options = {},
                   OverlayType overlay = OverlayType::kChord) {
    EnvironmentOptions eo;
    eo.num_peers = peers;
    eo.overlay = overlay;
    env = std::move(Environment::Create(eo)).value();
    pace = std::make_unique<Pace>(env->sim(), env->net(), env->overlay(),
                                  options);
  }

  Status Train(std::vector<MultiLabelDataset> data) {
    P2PDT_RETURN_IF_ERROR(pace->Setup(std::move(data), 4));
    bool done = false;
    Status status = Status::OK();
    pace->Train([&](Status s) {
      status = s;
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);
    return status;
  }

  P2PPrediction PredictSync(NodeId requester, const SparseVector& x) {
    P2PPrediction out;
    bool done = false;
    pace->Predict(requester, x, [&](P2PPrediction p) {
      out = std::move(p);
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);
    return out;
  }
};

TEST(PaceTest, SetupRequiresMatchingPeerCount) {
  Fixture f(8);
  EXPECT_FALSE(f.pace->Setup(std::vector<MultiLabelDataset>(3), 4).ok());
}

TEST(PaceTest, FullCoverageOnStableNetwork) {
  Fixture f(10);
  ASSERT_TRUE(f.Train(MakePeerData(10, 8, 1)).ok());
  EXPECT_DOUBLE_EQ(f.pace->ModelCoverage(), 1.0);
}

TEST(PaceTest, PredictionsRecoverTagStructure) {
  Fixture f(10);
  ASSERT_TRUE(f.Train(MakePeerData(10, 10, 2)).ok());
  for (TagId t = 0; t < 4; ++t) {
    P2PPrediction p = f.PredictSync(4, TagVector(t));
    ASSERT_TRUE(p.success);
    EXPECT_EQ(p.tags, (std::vector<TagId>{t})) << "tag " << t;
  }
}

TEST(PaceTest, PredictionIsCommunicationFree) {
  Fixture f(10);
  ASSERT_TRUE(f.Train(MakePeerData(10, 8, 3)).ok());
  uint64_t before = f.env->net().stats().messages_sent();
  for (int i = 0; i < 10; ++i) f.PredictSync(2, TagVector(1));
  EXPECT_EQ(f.env->net().stats().messages_sent(), before);
}

TEST(PaceTest, TrainingUsesBroadcasts) {
  Fixture f(10);
  ASSERT_TRUE(f.Train(MakePeerData(10, 8, 4)).ok());
  EXPECT_GT(
      f.env->net().stats().messages_sent(MessageType::kModelBroadcast), 0u);
  EXPECT_EQ(f.env->net().stats().messages_sent(MessageType::kModelUpload),
            0u);
}

TEST(PaceTest, WorksOnUnstructuredOverlay) {
  Fixture f(12, PaceOptions(), OverlayType::kUnstructured);
  ASSERT_TRUE(f.Train(MakePeerData(12, 8, 5)).ok());
  EXPECT_GT(f.pace->ModelCoverage(), 0.9);
  P2PPrediction p = f.PredictSync(6, TagVector(2));
  ASSERT_TRUE(p.success);
  EXPECT_EQ(p.tags, (std::vector<TagId>{2}));
}

TEST(PaceTest, OfflinePeersMissBroadcasts) {
  Fixture f(10);
  std::vector<MultiLabelDataset> data = MakePeerData(10, 8, 6);
  ASSERT_TRUE(f.pace->Setup(std::move(data), 4).ok());
  f.env->net().SetOnline(7, false);
  bool done = false;
  f.pace->Train([&](Status) { done = true; });
  f.env->RunUntilFlag(done, 3600);
  ASSERT_TRUE(done);
  // Peer 7 contributed nothing and received nothing (coverage counts
  // online peers, so bring it back before measuring).
  f.env->net().SetOnline(7, true);
  EXPECT_LT(f.pace->ModelCoverage(), 1.0);
  // Back online it can still predict with whatever it has (only itself —
  // nothing), so prediction fails or uses zero models.
  P2PPrediction p = f.PredictSync(7, TagVector(0));
  EXPECT_FALSE(p.success);
}

TEST(PaceTest, UninformedModelsAbstain) {
  // Peer 0 knows only tag 0; its vote must not drag down tag 3 scores.
  Fixture f(6);
  std::vector<MultiLabelDataset> peers(6, MultiLabelDataset(4));
  Rng rng(7);
  for (std::size_t p = 0; p < 6; ++p) {
    for (int i = 0; i < 8; ++i) {
      TagId tag = (p == 0) ? 0 : static_cast<TagId>((p + i) % 4);
      MultiLabelExample ex;
      ex.x = SparseVector::FromPairs(
          {{tag * 3 + static_cast<uint32_t>(rng.NextU64(3)), 1.0}});
      ex.tags = {tag};
      peers[p].Add(std::move(ex));
    }
  }
  ASSERT_TRUE(f.Train(std::move(peers)).ok());
  P2PPrediction p = f.PredictSync(0, TagVector(3));
  ASSERT_TRUE(p.success);
  EXPECT_EQ(p.tags, (std::vector<TagId>{3}));
}

TEST(PaceTest, PredictBeforeTrainFails) {
  Fixture f(6);
  ASSERT_TRUE(f.pace->Setup(MakePeerData(6, 4, 8), 4).ok());
  EXPECT_FALSE(f.PredictSync(0, TagVector(0)).success);
}

TEST(PaceTest, TopKOneStillPredicts) {
  PaceOptions opt;
  opt.top_k = 1;
  Fixture f(8, opt);
  ASSERT_TRUE(f.Train(MakePeerData(8, 10, 9)).ok());
  P2PPrediction p = f.PredictSync(3, TagVector(1));
  ASSERT_TRUE(p.success);
  EXPECT_FALSE(p.tags.empty());
}

TEST(PaceTest, ScoresExposeConfidences) {
  Fixture f(8);
  ASSERT_TRUE(f.Train(MakePeerData(8, 10, 10)).ok());
  P2PPrediction p = f.PredictSync(1, TagVector(2));
  ASSERT_TRUE(p.success);
  ASSERT_EQ(p.scores.size(), 4u);
  // The true tag's score dominates.
  for (TagId t = 0; t < 4; ++t) {
    if (t != 2) EXPECT_GT(p.scores[2], p.scores[t]);
  }
}

}  // namespace
}  // namespace p2pdt
