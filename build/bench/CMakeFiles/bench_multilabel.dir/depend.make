# Empty dependencies file for bench_multilabel.
# This may be replaced when dependencies are built.
