#include "common/json_check.h"

#include <cctype>

namespace p2pdt {

namespace {

/// Recursive-descent JSON syntax walker over a string_view. Tracks only a
/// cursor; reports the byte offset of the first violation.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  Status Check() {
    SkipWs();
    Status s = Value(0);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing content after JSON value");
    }
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 200;

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON syntax error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!Eof() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                      Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (Eof() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    return Status::OK();
  }

  Status String() {
    if (!Consume('"')) return Fail("expected string");
    while (!Eof()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return Fail("unescaped control character in string");
      }
      if (c != '\\') continue;
      if (Eof()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
        case 'b':
        case 'f':
        case 'n':
        case 'r':
        case 't':
          break;
        case 'u': {
          for (int i = 0; i < 4; ++i) {
            if (Eof() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
              return Fail("bad \\u escape");
            }
            ++pos_;
          }
          break;
        }
        default:
          --pos_;
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  Status Number() {
    std::size_t start = pos_;
    Consume('-');
    if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      pos_ = start;
      return Fail("expected number");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digits required after decimal point");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digits required in exponent");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return Status::OK();
  }

  Status Value(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (Eof()) return Fail("expected value");
    switch (Peek()) {
      case '{':
        return Object(depth);
      case '[':
        return Array(depth);
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  Status Object(int depth) {
    Consume('{');
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      Status s = String();
      if (!s.ok()) return s;
      SkipWs();
      if (!Consume(':')) return Fail("expected ':' after object key");
      SkipWs();
      s = Value(depth + 1);
      if (!s.ok()) return s;
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}' in object");
    }
  }

  Status Array(int depth) {
    Consume('[');
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWs();
      Status s = Value(depth + 1);
      if (!s.ok()) return s;
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']' in array");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Status CheckJsonSyntax(std::string_view text) {
  return JsonChecker(text).Check();
}

bool JsonHasKey(std::string_view text, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  return text.find(needle) != std::string_view::npos;
}

}  // namespace p2pdt
