#include "p2pdmt/robustness.h"

#include <cstdio>

#include "common/logging.h"

namespace p2pdt {

std::vector<NamedFaultPlan> CanonicalFaultPlans(std::size_t num_peers,
                                                double horizon) {
  std::vector<NamedFaultPlan> plans;
  plans.push_back({"none", {}});

  const double third = horizon / 3.0;
  {
    NamedFaultPlan p{"burst", {}};
    p.plan.burst_loss.push_back({third, 2.0 * third, 0.5});
    plans.push_back(std::move(p));
  }
  {
    NamedFaultPlan p{"partition", {}};
    FaultPlanSpec::Partition part;
    part.start = third;
    part.end = 2.0 * third;
    for (NodeId n = 0; n < num_peers; ++n) {
      (n < num_peers / 2 ? part.group_a : part.group_b).push_back(n);
    }
    p.plan.partitions.push_back(std::move(part));
    plans.push_back(std::move(p));
  }
  {
    NamedFaultPlan p{"spike", {}};
    p.plan.latency_spikes.push_back({third, 2.0 * third, 2.0});
    plans.push_back(std::move(p));
  }
  {
    NamedFaultPlan p{"crash", {}};
    std::size_t victims = num_peers < 8 ? 1 : num_peers / 8;
    for (NodeId n = 0; n < victims; ++n) {
      p.plan.crashes.push_back({horizon / 4.0, n});
      p.plan.recoveries.push_back({3.0 * horizon / 4.0, n});
    }
    plans.push_back(std::move(p));
  }
  return plans;
}

namespace {

RobustnessRow MakeRow(const ExperimentResult& r, const std::string& plan,
                      double loss_rate, bool reliable) {
  RobustnessRow row;
  row.algorithm = r.algorithm;
  row.plan = plan;
  row.loss_rate = loss_rate;
  row.reliable = reliable;
  row.micro_f1 = r.metrics.micro_f1;
  row.macro_f1 = r.metrics.macro_f1;
  row.failed_predictions = r.failed_predictions;
  row.degraded_predictions = r.degraded_predictions;
  row.test_documents = r.test_documents;
  row.prediction_success_rate =
      r.test_documents == 0
          ? 1.0
          : 1.0 - static_cast<double>(r.failed_predictions) /
                      static_cast<double>(r.test_documents);
  row.delivery_rate = r.delivery_rate;
  uint64_t protocol_messages = r.train_messages + r.predict_messages;
  row.retry_overhead =
      protocol_messages == 0
          ? 0.0
          : static_cast<double>(r.retransmits) /
                static_cast<double>(protocol_messages);
  row.retransmits = r.retransmits;
  row.give_ups = r.give_ups;
  row.injected_drops = r.injected_drops;
  row.model_coverage = r.model_coverage;
  return row;
}

}  // namespace

std::vector<RobustnessRow> RunRobustnessSweep(
    const VectorizedCorpus& corpus, const RobustnessSweepOptions& options) {
  std::vector<RobustnessRow> rows;
  std::vector<bool> modes;
  if (options.compare_reliability) {
    modes = {false, true};
  } else {
    modes = {options.base.cempar.reliable_transport ||
             options.base.pace.reliable_dissemination};
  }

  for (AlgorithmType algo : options.algorithms) {
    for (double loss : options.loss_rates) {
      for (const NamedFaultPlan& plan : options.plans) {
        for (bool reliable : modes) {
          ExperimentOptions opt = options.base;
          opt.algorithm = algo;
          opt.env.physical.loss_rate = loss;
          opt.env.fault = plan.plan;
          opt.cempar.reliable_transport = reliable;
          opt.pace.reliable_dissemination = reliable;
          Result<ExperimentResult> r = RunExperiment(corpus, opt);
          if (!r.ok()) {
            P2PDT_LOG(Warning)
                << AlgorithmTypeToString(algo) << " loss=" << loss
                << " plan=" << plan.label << " reliable=" << reliable
                << " failed: " << r.status().ToString();
            continue;
          }
          rows.push_back(MakeRow(*r, plan.label, loss, reliable));
          if (options.on_point) options.on_point(rows.back());
        }
      }
    }
  }
  return rows;
}

CsvWriter RobustnessCsv(const std::vector<RobustnessRow>& rows) {
  CsvWriter csv({"algorithm", "plan", "loss_rate", "reliable", "micro_f1",
                 "macro_f1", "prediction_success_rate", "failed", "degraded",
                 "attempted", "delivery_rate", "retry_overhead", "retransmits",
                 "give_ups", "injected_drops", "model_coverage"});
  char buf[32];
  auto fmt = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  for (const RobustnessRow& row : rows) {
    csv.AddRow({row.algorithm, row.plan, fmt(row.loss_rate),
                row.reliable ? "1" : "0", fmt(row.micro_f1), fmt(row.macro_f1),
                fmt(row.prediction_success_rate),
                std::to_string(row.failed_predictions),
                std::to_string(row.degraded_predictions),
                std::to_string(row.test_documents), fmt(row.delivery_rate),
                fmt(row.retry_overhead), std::to_string(row.retransmits),
                std::to_string(row.give_ups),
                std::to_string(row.injected_drops),
                fmt(row.model_coverage)});
  }
  return csv;
}

}  // namespace p2pdt
