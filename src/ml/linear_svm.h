#ifndef P2PDT_ML_LINEAR_SVM_H_
#define P2PDT_ML_LINEAR_SVM_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "ml/classifier.h"
#include "ml/dataset.h"

namespace p2pdt {

/// Hyperparameters for the linear SVM trainer.
struct LinearSvmOptions {
  /// Soft-margin penalty C (> 0).
  double c = 1.0;
  /// Maximum passes over the data.
  int max_iterations = 200;
  /// Stop when the maximal projected-gradient violation over a pass falls
  /// below this tolerance.
  double tolerance = 1e-3;
  /// Include an (unregularized-ish) bias via feature augmentation.
  bool use_bias = true;
  /// Seed for the coordinate-permutation RNG.
  uint64_t seed = 1;
};

/// Linear SVM model: sparse weight vector + bias.
///
/// PACE's base learner is "the state-of-the-art linear SVM algorithm"
/// (paper Sec. 2); what peers broadcast is exactly this object, so its
/// WireSize() is the per-model communication charge.
class LinearSvmModel final : public BinaryClassifier {
 public:
  LinearSvmModel() = default;
  LinearSvmModel(SparseVector w, double bias)
      : w_(std::move(w)), bias_(bias) {}

  double Decision(const SparseVector& x) const override {
    return x.Dot(w_) + bias_;
  }

  std::size_t WireSize() const override { return w_.WireSize() + 8; }

  std::unique_ptr<BinaryClassifier> Clone() const override {
    return std::make_unique<LinearSvmModel>(*this);
  }

  const SparseVector& weights() const { return w_; }
  double bias() const { return bias_; }

  /// In-place additive update w += alpha * x, bias += alpha * bias_step.
  /// Used by the online refinement path (passive-aggressive updates).
  void Update(const SparseVector& x, double alpha, double bias_step) {
    w_.Add(x, alpha);
    bias_ += alpha * bias_step;
  }

 private:
  SparseVector w_;
  double bias_ = 0.0;
};

/// Trains an L1-loss, L2-regularized linear SVM by dual coordinate descent
/// (Hsieh et al., ICML 2008 — the LIBLINEAR algorithm).
///
/// Handles huge hashed feature spaces by remapping the features observed in
/// `data` to a compact dense range internally; the returned model is in the
/// global feature space. Requires at least one example; degenerate
/// single-class data yields a model biased to that class.
Result<LinearSvmModel> TrainLinearSvm(const std::vector<Example>& data,
                                      const LinearSvmOptions& options = {});

}  // namespace p2pdt

#endif  // P2PDT_ML_LINEAR_SVM_H_
