#include "p2pdmt/sim_scorer.h"

namespace p2pdt {

GlobalScorer MakeSimScorer(P2PClassifier& algo, Environment& env, NodeId self,
                           double max_sim_seconds) {
  return [&algo, &env, self, max_sim_seconds](
             const SparseVector& x) -> std::vector<double> {
    bool done = false;
    std::vector<double> scores;
    algo.Predict(self, x, [&done, &scores](P2PPrediction p) {
      if (p.success) scores = std::move(p.scores);
      done = true;
    });
    env.RunUntilFlag(done, max_sim_seconds);
    return scores;
  };
}

}  // namespace p2pdt
