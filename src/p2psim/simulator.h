#ifndef P2PDT_P2PSIM_SIMULATOR_H_
#define P2PDT_P2PSIM_SIMULATOR_H_

#include <cstdint>
#include <unordered_set>

#include "common/function.h"
#include "p2psim/event_queue.h"

namespace p2pdt {

/// Simulated time in seconds since simulation start.
using SimTime = double;

/// Discrete-event simulation core: a time-ordered queue of callbacks.
///
/// This is the heart of P2PDMT (the paper's simulation toolkit): every
/// network delivery, churn transition, stabilization round and scheduled
/// evaluation is an event. Events at equal timestamps run in scheduling
/// order (a monotone sequence number breaks ties), which keeps runs
/// fully deterministic.
///
/// The scheduler is an indexed calendar queue (see CalendarQueue): O(1)
/// amortized enqueue/dequeue instead of the O(log n) binary heap the first
/// versions used, which is what makes 100k–1M-peer populations tractable.
/// The pop order is bit-identical to the old stable heap — the equivalence
/// property tests in event_queue_test pin that down.
///
/// Callbacks are move-only (UniqueFunction), so events may carry move-only
/// payloads; `std::function` and any other copyable callable convert
/// implicitly.
class Simulator {
 public:
  using Callback = UniqueFunction;
  /// Handle for Cancel(); returned by ScheduleCancelable.
  using EventId = uint64_t;
  static constexpr EventId kInvalidEvent = static_cast<EventId>(-1);

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0; negative
  /// delays are clamped to 0).
  void Schedule(SimTime delay, Callback fn);

  /// Schedules `fn` at an absolute simulated time (clamped to >= Now()).
  void ScheduleAt(SimTime when, Callback fn);

  /// Like Schedule, but returns a handle the caller may later Cancel —
  /// e.g. a retransmission timer disarmed by an early ACK. A cancelled
  /// event never runs and costs only a tombstone in the queue.
  EventId ScheduleCancelable(SimTime delay, Callback fn);

  /// Cancels a pending cancelable event. Returns true when the event was
  /// still pending (it will not run); false when it already ran, was
  /// already cancelled, or the id was never issued by ScheduleCancelable.
  bool Cancel(EventId id);

  /// Runs events until the queue empties or simulated time would exceed
  /// `until`. Events at exactly `until` are executed. Returns the number of
  /// events executed.
  std::size_t RunUntil(SimTime until);

  /// Runs until the queue is fully drained. Use with care under recurring
  /// (self-rescheduling) events — prefer RunUntil.
  std::size_t RunAll();

  /// Executes at most one pending event; returns false when idle.
  bool Step();

  std::size_t pending_events() const { return queue_.size(); }
  std::size_t executed_events() const { return executed_; }

  /// Scheduler introspection (benchmarks and tests).
  const CalendarQueue& queue() const { return queue_; }

 private:
  SimTime now_ = 0.0;
  std::size_t executed_ = 0;
  CalendarQueue queue_;
  /// Ids issued by ScheduleCancelable that have not yet run or been
  /// cancelled; keeps Cancel() exact without charging plain Schedule()
  /// traffic (the overwhelming majority) any bookkeeping.
  std::unordered_set<EventId> cancelable_;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PSIM_SIMULATOR_H_
