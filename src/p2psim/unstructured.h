#ifndef P2PDT_P2PSIM_UNSTRUCTURED_H_
#define P2PDT_P2PSIM_UNSTRUCTURED_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "p2psim/overlay.h"
#include "p2psim/simulator.h"

namespace p2pdt {

/// How a broadcast spreads over the random graph.
enum class DisseminationMode {
  /// Forward to every neighbor (Gnutella query flooding): maximal
  /// redundancy, fastest coverage, highest cost.
  kFlood,
  /// Push gossip: forward to `gossip_fanout` random neighbors per round.
  /// Epidemic dissemination — near-full coverage at a fraction of
  /// flooding's message count, at the price of probabilistic misses.
  kGossip,
};

struct UnstructuredOptions {
  /// Target neighbor count per peer (Gnutella-style random graph).
  std::size_t degree = 6;
  /// TTL for broadcasts (hops). With degree d and N peers, a TTL of
  /// ceil(log_{d-1} N) + slack reaches nearly everyone.
  int flood_ttl = 8;
  DisseminationMode mode = DisseminationMode::kFlood;
  /// Neighbors contacted per hop in kGossip mode.
  std::size_t gossip_fanout = 3;
  /// Per-message duplicate-suppression: peers remember broadcast ids.
  std::size_t header_bytes = 24;
  uint64_t seed = 13;
};

/// Unstructured overlay: a random graph with TTL-scoped flooding, the
/// paper's "Generate unstructured P2P network" alternative (Fig. 2).
///
/// There are no keys and no routing guarantees — dissemination costs
/// O(N · degree) duplicate-suppressed messages instead of Chord's O(N) —
/// which is exactly the structured-vs-unstructured trade-off the topology
/// experiment (DEMO4) measures.
class UnstructuredOverlay final : public Overlay {
 public:
  UnstructuredOverlay(Simulator& sim, PhysicalNetwork& net,
                      UnstructuredOptions options = {});

  void AddNode(NodeId node) override;
  void OnTransition(NodeId node, bool online) override;
  std::string name() const override {
    return options_.mode == DisseminationMode::kGossip
               ? "unstructured-gossip"
               : "unstructured";
  }

  /// TTL-scoped flooding (or push gossip, per options) with duplicate
  /// suppression.
  void Broadcast(NodeId origin, std::size_t payload_bytes, MessageType type,
                 std::function<void(NodeId)> on_deliver,
                 std::function<void()> on_complete) override;

  const std::vector<NodeId>& Neighbors(NodeId node) const {
    return adjacency_[node];
  }

  /// Mean degree over current members.
  double MeanDegree() const;

 private:
  void Connect(NodeId a, NodeId b);

  Simulator& sim_;
  PhysicalNetwork& net_;
  UnstructuredOptions options_;
  Rng rng_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<bool> member_;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PSIM_UNSTRUCTURED_H_
