#include "p2pdmt/service_loadgen.h"

#include <poll.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "net/client.h"
#include "net/event_loop.h"
#include "net/frame.h"

namespace p2pdt {

namespace {

// Same FNV-1a constants as every other digest in the repo. The socket
// fingerprint deliberately omits latency (wall clocks are not
// deterministic); it digests identity + outcome + answer bits only.
struct Fnv64 {
  uint64_t state = 0xcbf29ce484222325ull;
  void MixBytes(const void* data, std::size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state ^= p[i];
      state *= 0x100000001b3ull;
    }
  }
  void Mix(uint64_t v) { MixBytes(&v, sizeof(v)); }
  void Mix(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
  }
};

uint64_t RequestId(std::size_t session, std::size_t idx, std::size_t attempt) {
  return (static_cast<uint64_t>(session) << 32) |
         (static_cast<uint64_t>(idx) << 8) | static_cast<uint64_t>(attempt);
}

/// A request due for issue `when` schedule-seconds after replay start.
struct IssueEvent {
  double when = 0.0;
  std::size_t session = 0;
  std::size_t idx = 0;
  std::size_t attempt = 0;
  /// Wall time of the first attempt (< 0: stamp at issue). Retries keep it
  /// so latency covers the whole reject-backoff-retry arc, like the in-sim
  /// generator.
  double first_issued = -1.0;
};

struct IssueEventLater {
  bool operator()(const IssueEvent& a, const IssueEvent& b) const {
    if (a.when != b.when) return a.when > b.when;
    if (a.session != b.session) return a.session > b.session;
    return a.idx > b.idx;
  }
};

struct Pending {
  std::size_t session = 0;
  std::size_t idx = 0;
  std::size_t attempt = 0;
  double first_issued = 0.0;
};

struct SessionConn {
  ServiceClient client;
  bool alive = false;
};

class Replay {
 public:
  Replay(const ServiceLoadOptions& options,
         const std::vector<SparseVector>& catalog)
      : options_(options), catalog_(catalog) {}

  Result<ServiceLoadResult> Run();

 private:
  Status IssueOne(const IssueEvent& ev, double now);
  void RecordFinal(const Pending& p, int outcome_class,
                   const std::vector<uint32_t>& tags,
                   const std::vector<double>& scores, double now);
  void ChainClosedLoop(const Pending& p, double now);
  void FailSession(std::size_t session, double now);
  Status HandleFrame(std::size_t session, const Frame& frame, double now);

  const ServiceLoadOptions& options_;
  const std::vector<SparseVector>& catalog_;
  std::vector<SessionConn> conns_;
  std::vector<std::size_t> lengths_;
  std::priority_queue<IssueEvent, std::vector<IssueEvent>, IssueEventLater>
      due_;
  std::unordered_map<uint64_t, Pending> pending_;
  std::vector<double> latencies_;
  ServiceLoadResult result_;
  std::size_t remaining_ = 0;
  double start_ = 0.0;
  double first_issue_ = -1.0;
  double last_complete_ = 0.0;
};

Status Replay::IssueOne(const IssueEvent& ev, double now) {
  SessionConn& conn = conns_[ev.session];
  if (!conn.alive) {
    Status st = conn.client.Connect(options_.host, options_.port,
                                    options_.io_timeout);
    if (!st.ok()) {
      ++result_.io_errors;
      Pending p{ev.session, ev.idx, ev.attempt,
                ev.first_issued < 0.0 ? now : ev.first_issued};
      RecordFinal(p, /*outcome_class=*/0, {}, {}, now);
      return Status::OK();
    }
    conn.alive = true;
    ++result_.reconnects;
  }

  // Document choice keys off the *scheduled* offset, not the (jittery)
  // wall fire time — identical picks to the in-sim replay of the same
  // schedule.
  const std::size_t doc = LoadGenPickDoc(options_.schedule, catalog_.size(),
                                         ev.session, ev.idx, ev.when);
  PredictRequest request;
  request.id = RequestId(ev.session, ev.idx, ev.attempt);
  request.requester = ev.session;
  request.doc = catalog_[doc];
  const double first = ev.first_issued < 0.0 ? now : ev.first_issued;
  if (first_issue_ < 0.0) first_issue_ = now;
  const Status sent = conn.client.SendFrame(FrameType::kPredictRequest,
                                            EncodePredictRequest(request));
  if (!sent.ok()) {
    conn.alive = false;
    ++result_.io_errors;
    FailSession(ev.session, now);
    RecordFinal(Pending{ev.session, ev.idx, ev.attempt, first}, 0, {}, {},
                now);
    return Status::OK();
  }
  pending_[request.id] = Pending{ev.session, ev.idx, ev.attempt, first};
  return Status::OK();
}

void Replay::RecordFinal(const Pending& p, int outcome_class,
                         const std::vector<uint32_t>& tags,
                         const std::vector<double>& scores, double now) {
  ++result_.load.completed;
  last_complete_ = std::max(last_complete_, now);
  const double latency = now - p.first_issued;
  switch (outcome_class) {
    case 0:
      ++result_.load.failed;
      break;
    case 1:
      ++result_.load.ok;
      break;
    case 2:
      ++result_.load.cached;
      break;
    case 3:
      ++result_.load.degraded;
      break;
  }
  if (outcome_class != 0) {
    latencies_.push_back(latency);
    result_.load.max_latency = std::max(result_.load.max_latency, latency);
    if (latency <= options_.schedule.slo_latency) ++result_.load.within_slo;
  }

  Fnv64 h;
  h.Mix(static_cast<uint64_t>(p.session));
  h.Mix(static_cast<uint64_t>(p.idx));
  h.Mix(static_cast<uint64_t>(outcome_class));
  for (uint32_t t : tags) h.Mix(static_cast<uint64_t>(t));
  for (double s : scores) h.Mix(s);
  result_.load.fingerprint += h.state;

  --remaining_;
  ChainClosedLoop(p, now);
}

void Replay::ChainClosedLoop(const Pending& p, double now) {
  if (!options_.schedule.closed_loop) return;
  if (p.idx + 1 >= lengths_[p.session]) return;
  Rng rng(DeriveSeed(options_.schedule.seed, p.session, p.idx + 1));
  const double mult = std::max(
      LoadGenBurstMultiplier(options_.schedule, now - start_), 1e-9);
  const double gap = rng.Exponential(options_.schedule.think_time) / mult;
  due_.push(IssueEvent{now - start_ + gap, p.session, p.idx + 1, 0, -1.0});
}

void Replay::FailSession(std::size_t session, double now) {
  std::vector<uint64_t> dead;
  for (const auto& [id, p] : pending_) {
    if (p.session == session) dead.push_back(id);
  }
  for (uint64_t id : dead) {
    Pending p = pending_[id];
    pending_.erase(id);
    RecordFinal(p, /*outcome_class=*/0, {}, {}, now);
  }
}

Status Replay::HandleFrame(std::size_t /*session*/, const Frame& frame,
                           double now) {
  switch (frame.type) {
    case FrameType::kPredictResponse: {
      Result<PredictResponse> resp = DecodePredictResponse(frame.payload);
      P2PDT_RETURN_IF_ERROR(resp.status());
      auto it = pending_.find(resp->id);
      if (it == pending_.end()) {
        return Status::DataLoss("response for unknown request id");
      }
      Pending p = it->second;
      pending_.erase(it);
      const int outcome_class =
          !resp->success ? 0 : resp->cached ? 2 : resp->degraded ? 3 : 1;
      RecordFinal(p, outcome_class, resp->tags, resp->scores, now);
      return Status::OK();
    }
    case FrameType::kOverload: {
      Result<OverloadReject> rej = DecodeOverloadReject(frame.payload);
      P2PDT_RETURN_IF_ERROR(rej.status());
      auto it = pending_.find(rej->id);
      if (it == pending_.end()) {
        return Status::DataLoss("overload reject for unknown request id");
      }
      Pending p = it->second;
      pending_.erase(it);
      ++result_.load.shed;
      if (p.attempt < options_.schedule.max_retries) {
        ++result_.load.retries;
        const double delay =
            LoadGenRetryDelay(options_.schedule, p.session, p.idx, p.attempt);
        due_.push(IssueEvent{now - start_ + delay, p.session, p.idx,
                             p.attempt + 1, p.first_issued});
      } else {
        RecordFinal(p, /*outcome_class=*/0, {}, {}, now);
      }
      return Status::OK();
    }
    case FrameType::kError: {
      // The generator only sends valid frames; a protocol error back is a
      // daemon bug and fails the replay loudly.
      Result<ErrorReject> rej = DecodeErrorReject(frame.payload);
      const std::string detail =
          rej.ok() ? rej->message : rej.status().message();
      return Status::DataLoss("daemon rejected a valid request: " + detail);
    }
    default:
      return Status::DataLoss(
          std::string("unexpected frame from daemon: ") +
          FrameTypeToString(frame.type));
  }
}

Result<ServiceLoadResult> Replay::Run() {
  const LoadGenOptions& sched = options_.schedule;
  if (catalog_.empty() || sched.sessions == 0) {
    return Status::InvalidArgument(
        "socket replay needs a catalog and at least one session");
  }

  lengths_ = LoadGenSessionLengths(sched);
  std::size_t total = 0;
  for (std::size_t len : lengths_) total += len;
  result_.load.offered = total;
  remaining_ = total;

  conns_.resize(sched.sessions);

  for (std::size_t s = 0; s < sched.sessions; ++s) {
    if (sched.closed_loop) {
      Rng rng(DeriveSeed(sched.seed, s, 0));
      due_.push(IssueEvent{rng.Exponential(sched.think_time), s, 0, 0, -1.0});
    } else {
      const std::vector<double> offsets =
          LoadGenOpenLoopOffsets(sched, s, lengths_[s]);
      for (std::size_t i = 0; i < lengths_[s]; ++i) {
        due_.push(IssueEvent{offsets[i], s, i, 0, -1.0});
      }
    }
  }

  start_ = MonotonicSeconds();
  const double deadline = start_ + options_.max_wall_seconds;

  std::vector<struct pollfd> pfds;
  std::vector<std::size_t> pfd_session;

  while (remaining_ > 0) {
    const double now = MonotonicSeconds();
    if (now > deadline) {
      // Safety net: a wedged daemon must fail the replay, not hang it.
      P2PDT_LOG(Warning) << "socket replay wall deadline hit with "
                         << remaining_ << " requests unresolved";
      for (std::size_t s = 0; s < conns_.size(); ++s) FailSession(s, now);
      while (!due_.empty()) {
        const IssueEvent ev = due_.top();
        due_.pop();
        RecordFinal(Pending{ev.session, ev.idx, ev.attempt,
                            ev.first_issued < 0.0 ? now : ev.first_issued},
                    0, {}, {}, now);
      }
      break;
    }

    // Fire everything due.
    while (!due_.empty() && due_.top().when <= now - start_) {
      const IssueEvent ev = due_.top();
      due_.pop();
      P2PDT_RETURN_IF_ERROR(IssueOne(ev, MonotonicSeconds()));
    }
    if (remaining_ == 0) break;

    // Wait for responses or the next arrival, whichever is first.
    pfds.clear();
    pfd_session.clear();
    for (std::size_t s = 0; s < conns_.size(); ++s) {
      if (!conns_[s].alive) continue;
      struct pollfd pfd;
      pfd.fd = conns_[s].client.fd();
      pfd.events = POLLIN;
      pfd.revents = 0;
      pfds.push_back(pfd);
      pfd_session.push_back(s);
    }
    int timeout_ms = 100;
    if (!due_.empty()) {
      const double until = due_.top().when - (MonotonicSeconds() - start_);
      timeout_ms = std::max(0, std::min(1000, static_cast<int>(until * 1e3)));
    }
    if (!pfds.empty()) {
      poll(pfds.data(), pfds.size(), timeout_ms);
    } else if (timeout_ms > 0 && due_.empty() && pending_.empty()) {
      // Nothing in flight and nothing scheduled but remaining_ > 0: every
      // path records an outcome, so this cannot happen; guard anyway.
      return Status::Internal("socket replay stalled with no work");
    }

    const double read_now = MonotonicSeconds();
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      const std::size_t s = pfd_session[i];
      SessionConn& conn = conns_[s];
      const Status io = conn.client.ReadAvailable();
      Frame frame;
      while (conn.client.PollFrame(frame)) {
        P2PDT_RETURN_IF_ERROR(HandleFrame(s, frame, read_now));
      }
      if (!io.ok() || conn.client.eof()) {
        // Daemon closed or reset this connection (reap, drain, hard cap).
        conn.alive = false;
        ++result_.io_errors;
        FailSession(s, read_now);
      }
    }
  }

  const double end = MonotonicSeconds();
  result_.wall_seconds = end - start_;
  std::sort(latencies_.begin(), latencies_.end());
  auto quantile = [&](double q) {
    if (latencies_.empty()) return 0.0;
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(latencies_.size())));
    return latencies_[std::min(latencies_.size() - 1,
                               rank == 0 ? 0 : rank - 1)];
  };
  result_.load.p50_latency = quantile(0.5);
  result_.load.p95_latency = quantile(0.95);
  result_.load.p99_latency = quantile(0.99);
  const double span = last_complete_ - std::max(first_issue_, 0.0);
  result_.load.makespan = span > 0.0 ? span : 0.0;
  result_.load.goodput_within_slo =
      span > 0.0 ? static_cast<double>(result_.load.within_slo) / span : 0.0;
  result_.achieved_rate =
      result_.wall_seconds > 0.0
          ? static_cast<double>(result_.load.completed) / result_.wall_seconds
          : 0.0;
  return result_;
}

}  // namespace

Result<ServiceLoadResult> RunServiceLoad(
    const ServiceLoadOptions& options,
    const std::vector<SparseVector>& catalog) {
  Replay replay(options, catalog);
  return replay.Run();
}

}  // namespace p2pdt
