#!/usr/bin/env python3
"""Validates the poisoning-sweep CSV emitted by bench_byzantine.

Usage: check_byzantine_csv.py <byzantine.csv> [--strict]

Pure stdlib. Checks the column schema exactly, value ranges, and the
structural invariants every sweep must satisfy: a clean baseline row per
(algorithm, arm), both defended and undefended arms present, and clean
defended rows bit-identical to clean undefended rows (the defenses are
gates that never fire for honest peers). With --strict it additionally
enforces the 30 % label-flip acceptance bar: defended macro-F1 within 5
points of clean while undefended degrades strictly more. Exits non-zero
with one message per violation.
"""

import csv
import sys

EXPECTED_COLUMNS = [
    "algorithm", "adversary", "malicious_fraction", "malicious_peers",
    "defended", "micro_f1", "macro_f1", "prediction_success_rate",
    "attempted", "models_rejected", "votes_discarded", "quarantined_pairs",
    "trust_observations", "train_bytes", "train_sim_seconds",
]

KNOWN_ADVERSARIES = {
    "none", "label_flip", "garbage_model", "dimension_mismatch",
    "accuracy_inflate", "vote_spam",
}

errors = []


def check(cond, msg):
    if not cond:
        errors.append(msg)


def validate(path, strict):
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        check(reader.fieldnames == EXPECTED_COLUMNS,
              f"header mismatch: got {reader.fieldnames}")
        rows = list(reader)
    check(rows, "no data rows")
    if errors:
        return

    for i, row in enumerate(rows):
        where = f"row {i + 2}"
        check(row["algorithm"] in ("cempar", "pace"),
              f"{where}: unknown algorithm {row['algorithm']!r}")
        check(row["adversary"] in KNOWN_ADVERSARIES,
              f"{where}: unknown adversary {row['adversary']!r}")
        check(row["defended"] in ("0", "1"),
              f"{where}: defended must be 0/1, got {row['defended']!r}")
        frac = float(row["malicious_fraction"])
        check(0.0 <= frac <= 1.0, f"{where}: malicious_fraction {frac}")
        for col in ("micro_f1", "macro_f1", "prediction_success_rate"):
            v = float(row[col])
            check(0.0 <= v <= 1.0, f"{where}: {col}={v} outside [0, 1]")
        for col in ("malicious_peers", "attempted", "models_rejected",
                    "votes_discarded", "quarantined_pairs",
                    "trust_observations", "train_bytes"):
            check(int(row[col]) >= 0, f"{where}: negative {col}")
        if row["adversary"] == "none":
            check(frac == 0.0 and int(row["malicious_peers"]) == 0,
                  f"{where}: clean row must have zero malicious peers")

    def find(algorithm, adversary, defended, fraction=None):
        for row in rows:
            if (row["algorithm"] == algorithm
                    and row["adversary"] == adversary
                    and row["defended"] == defended
                    and (fraction is None
                         or float(row["malicious_fraction"]) == fraction)):
                return row
        return None

    algorithms = sorted({row["algorithm"] for row in rows})
    for algorithm in algorithms:
        clean_def = find(algorithm, "none", "1")
        clean_undef = find(algorithm, "none", "0")
        check(clean_def is not None,
              f"{algorithm}: missing clean defended baseline")
        check(clean_undef is not None,
              f"{algorithm}: missing clean undefended baseline")
        check(any(row["algorithm"] == algorithm and row["adversary"] != "none"
                  for row in rows),
              f"{algorithm}: no adversarial rows")
        if clean_def and clean_undef:
            # The bit-identity contract: with zero adversaries the full
            # defense stack must change nothing observable.
            for col in ("micro_f1", "macro_f1", "train_bytes",
                        "train_sim_seconds"):
                check(clean_def[col] == clean_undef[col],
                      f"{algorithm}: clean defended {col}={clean_def[col]} != "
                      f"clean undefended {col}={clean_undef[col]} "
                      "(bit-identity violated)")
            check(int(clean_def["models_rejected"]) == 0,
                  f"{algorithm}: clean defended run rejected models")
            check(int(clean_def["quarantined_pairs"]) == 0,
                  f"{algorithm}: clean defended run quarantined peers")

        if not strict or clean_def is None:
            continue
        # Acceptance bar at 30 % label flip: defended within 5 points of
        # clean macro-F1, undefended strictly worse than defended.
        flip_def = find(algorithm, "label_flip", "1", 0.3)
        flip_undef = find(algorithm, "label_flip", "0", 0.3)
        check(flip_def is not None,
              f"{algorithm}: missing defended 30% label-flip row")
        check(flip_undef is not None,
              f"{algorithm}: missing undefended 30% label-flip row")
        if flip_def and flip_undef:
            clean_f1 = float(clean_def["macro_f1"])
            def_f1 = float(flip_def["macro_f1"])
            undef_f1 = float(flip_undef["macro_f1"])
            check(def_f1 >= clean_f1 - 0.05,
                  f"{algorithm}: defended 30% flip macro-F1 {def_f1:.4f} "
                  f"drops more than 5 points from clean {clean_f1:.4f}")
            check(clean_f1 - undef_f1 > clean_f1 - def_f1,
                  f"{algorithm}: undefended 30% flip macro-F1 {undef_f1:.4f} "
                  f"does not degrade strictly more than defended "
                  f"{def_f1:.4f}")


def main():
    args = [a for a in sys.argv[1:] if a != "--strict"]
    strict = "--strict" in sys.argv[1:]
    if len(args) != 1:
        print(__doc__)
        return 2
    validate(args[0], strict)
    if errors:
        for msg in errors:
            print(f"FAIL: {msg}")
        return 1
    print(f"OK: {args[0]} passes schema and defense invariants"
          + (" (strict)" if strict else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
