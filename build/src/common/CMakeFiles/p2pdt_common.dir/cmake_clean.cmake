file(REMOVE_RECURSE
  "CMakeFiles/p2pdt_common.dir/csv.cc.o"
  "CMakeFiles/p2pdt_common.dir/csv.cc.o.d"
  "CMakeFiles/p2pdt_common.dir/logging.cc.o"
  "CMakeFiles/p2pdt_common.dir/logging.cc.o.d"
  "CMakeFiles/p2pdt_common.dir/rng.cc.o"
  "CMakeFiles/p2pdt_common.dir/rng.cc.o.d"
  "CMakeFiles/p2pdt_common.dir/sparse_vector.cc.o"
  "CMakeFiles/p2pdt_common.dir/sparse_vector.cc.o.d"
  "CMakeFiles/p2pdt_common.dir/status.cc.o"
  "CMakeFiles/p2pdt_common.dir/status.cc.o.d"
  "CMakeFiles/p2pdt_common.dir/string_util.cc.o"
  "CMakeFiles/p2pdt_common.dir/string_util.cc.o.d"
  "libp2pdt_common.a"
  "libp2pdt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pdt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
