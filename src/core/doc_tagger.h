#ifndef P2PDT_CORE_DOC_TAGGER_H_
#define P2PDT_CORE_DOC_TAGGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/document.h"
#include "core/tag_cloud.h"
#include "core/tag_library.h"
#include "ml/multilabel.h"
#include "ml/online.h"
#include "text/preprocessor.h"

namespace p2pdt {

/// One suggested tag with its confidence in (0, 1) — a Suggestion Cloud
/// entry (Fig. 3). The UI's Confidence slider maps to the min_confidence
/// argument of SuggestTags.
struct TagSuggestion {
  std::string tag;
  double confidence = 0.0;
};

/// Scores document vectors against the *global* (collaboratively trained)
/// model. Returns one raw decision value per global tag; the adapter in
/// p2pdmt bridges this to a P2PClassifier running in the simulator.
using GlobalScorer = std::function<std::vector<double>(const SparseVector&)>;

struct DocTaggerOptions {
  PreprocessorOptions preprocessor;
  /// Trainer for the local (personal) model.
  LinearSvmOptions svm;
  /// Tag-assignment policy for AutoTag.
  TagDecisionPolicy policy;
  /// Passive-aggressive step for tag refinement.
  OnlineUpdateOptions refinement;
  /// Blend between global and local scores when both exist
  /// (score = w·global + (1−w)·local).
  double global_weight = 0.7;
};

/// The P2PDocTagger application facade — everything the demo UI (Figs. 3–4)
/// does, as a library:
///
///   * AddDocument — the user selects files to manage (File Browser);
///   * ManualTag — seed tagging ("in the beginning, when there are no
///     tagged documents in the entire network, users have to manually tag
///     some of their documents");
///   * TrainLocal — builds the personal classification model;
///   * AttachGlobalScorer — plugs in the P2P collaboratively-trained model;
///   * SuggestTags — the Suggestion Cloud with per-tag confidence;
///   * AutoTag / AutoTagAll — the AutoTag button;
///   * Refine — localized conflict resolution: the user's corrections
///     update the local model online (PA updates) for future tagging;
///   * library() / BuildTagCloud() — Library browsing and the Tag Cloud.
class DocTagger {
 public:
  explicit DocTagger(DocTaggerOptions options = DocTaggerOptions());

  // --- Document management -------------------------------------------------

  /// Adds a document (preprocessing it immediately) and returns its id.
  DocId AddDocument(std::string title, std::string text);

  Result<const Document*> GetDocument(DocId id) const;
  std::size_t num_documents() const { return documents_.size(); }

  /// Ids of documents with no tags yet (AutoTagAll's work list).
  std::vector<DocId> UntaggedDocuments() const;

  // --- Tagging -------------------------------------------------------------

  /// Assigns tags manually (replaces prior manual tags; open vocabulary —
  /// unknown tag names are registered on the fly).
  Status ManualTag(DocId id, const std::vector<std::string>& tags);

  /// Trains the local model from every currently tagged document. Requires
  /// at least one tagged document.
  Status TrainLocal();

  /// Plugs in the global model trained by P2P collaboration. `tag_names`
  /// maps the scorer's output positions to tag names (registering new
  /// names as needed).
  void AttachGlobalScorer(GlobalScorer scorer,
                          const std::vector<std::string>& tag_names);

  /// Suggestion Cloud: tags with confidence ≥ min_confidence, sorted
  /// alphabetically (as in the demo UI); confidence = sigmoid(score).
  Result<std::vector<TagSuggestion>> SuggestTags(
      DocId id, double min_confidence = 0.0) const;

  /// Applies the decision policy to the suggestions and stores them as
  /// auto tags (manual tags are preserved). Returns the tags assigned.
  Result<std::vector<std::string>> AutoTag(DocId id);

  /// AutoTags every untagged document; returns how many got ≥ 1 tag.
  Result<std::size_t> AutoTagAll();

  /// Tag refinement: replaces the document's tags with the corrected set
  /// and updates the local model online so future suggestions adapt
  /// ("P2PDocTagger will automatically update the classification model(s)
  /// in the back-end", Sec. 2).
  Status Refine(DocId id, const std::vector<std::string>& corrected_tags);

  // --- Browsing ------------------------------------------------------------

  const TagLibrary& library() const { return library_; }
  TagCloud BuildTagCloud(TagCloud::Options options = TagCloud::Options()) const;

  // --- Persistence -----------------------------------------------------

  /// Writes every tagged document's assignments as sidecar metadata under
  /// `directory` (paper: tags are "saved as the files' meta-data" so other
  /// PIM tools can read them). Returns how many documents were persisted.
  Result<std::size_t> SaveMetadata(const std::string& directory) const;

  /// Restores tag assignments from sidecars for documents already added
  /// (matched by id). Unknown tag names are registered; the library is
  /// re-indexed. Returns how many documents were restored.
  Result<std::size_t> LoadMetadata(const std::string& directory);

  /// All registered tag names, id order.
  const std::vector<std::string>& tag_names() const { return tag_names_; }

  Preprocessor& preprocessor() { return preprocessor_; }
  bool has_local_model() const { return has_local_model_; }
  bool has_global_scorer() const { return global_scorer_ != nullptr; }

 private:
  TagId RegisterTag(const std::string& name);
  /// Combined per-registered-tag scores for a vector.
  std::vector<double> ScoreVector(const SparseVector& x) const;
  void SetTags(Document& doc, std::vector<TagAssignment> tags);

  DocTaggerOptions options_;
  Preprocessor preprocessor_;
  std::vector<Document> documents_;
  TagLibrary library_;

  std::vector<std::string> tag_names_;           // TagId -> name
  std::map<std::string, TagId> tag_ids_;         // name -> TagId

  OneVsAllModel local_model_;
  bool has_local_model_ = false;

  GlobalScorer global_scorer_;
  std::vector<TagId> global_tag_map_;  // scorer position -> local TagId
};

}  // namespace p2pdt

#endif  // P2PDT_CORE_DOC_TAGGER_H_
