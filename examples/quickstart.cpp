// Quickstart: the full P2PDocTagger pipeline of Fig. 1 on a single machine.
//
//   1. Generate a small Delicious-like corpus (substitute for the paper's
//      delicious.com crawl).
//   2. Manage documents with DocTagger: manual seed tagging, local
//      training, suggestions with confidence, AutoTag, refinement.
//   3. Browse the results through the Library and the Tag Cloud.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/doc_tagger.h"
#include "corpus/generator.h"

using namespace p2pdt;

int main() {
  std::printf("=== P2PDocTagger quickstart ===\n\n");

  // --- 1. A small corpus ----------------------------------------------------
  CorpusOptions corpus_options;
  corpus_options.num_users = 1;
  corpus_options.min_docs_per_user = 120;
  corpus_options.max_docs_per_user = 120;
  corpus_options.num_tags = 6;
  corpus_options.vocabulary_size = 1200;
  corpus_options.seed = 42;
  Result<GeneratedCorpus> corpus = GenerateCorpus(corpus_options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %zu documents over %zu tags\n",
              corpus->documents.size(), corpus->tag_names.size());

  // --- 2. Add documents to the tagger ---------------------------------------
  DocTaggerOptions options;
  options.policy.threshold = 0.0;
  DocTagger tagger(options);
  for (const RawDocument& doc : corpus->documents) {
    tagger.AddDocument(doc.title, doc.text);
  }

  // Manually seed-tag the first 40 documents (the paper: "users have to
  // manually tag some of their documents" before the system can learn).
  const std::size_t seed_count = 40;
  for (DocId id = 0; id < seed_count; ++id) {
    Status s = tagger.ManualTag(id, corpus->documents[id].tags);
    if (!s.ok()) {
      std::fprintf(stderr, "manual tagging failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }
  std::printf("manually tagged %zu documents\n", seed_count);

  // --- 3. Train the local model and auto-tag the rest -----------------------
  Status train = tagger.TrainLocal();
  if (!train.ok()) {
    std::fprintf(stderr, "training failed: %s\n", train.ToString().c_str());
    return 1;
  }
  Result<std::size_t> tagged = tagger.AutoTagAll();
  if (!tagged.ok()) {
    std::fprintf(stderr, "autotag failed: %s\n",
                 tagged.status().ToString().c_str());
    return 1;
  }
  std::printf("AutoTag assigned tags to %zu documents\n\n", tagged.value());

  // Accuracy of the auto tags against the generator's ground truth.
  std::size_t correct = 0, total = 0;
  for (DocId id = seed_count; id < tagger.num_documents(); ++id) {
    const Document& doc = *tagger.GetDocument(id).value();
    for (const TagAssignment& a : doc.tags) {
      ++total;
      for (const std::string& truth : corpus->documents[id].tags) {
        if (a.tag == truth) {
          ++correct;
          break;
        }
      }
    }
  }
  std::printf("auto-tag precision vs ground truth: %.1f%% (%zu/%zu)\n\n",
              total ? 100.0 * correct / total : 0.0, correct, total);

  // --- 4. Suggestions with confidence (the Suggestion Cloud, Fig. 3) --------
  DocId sample = seed_count;
  std::printf("suggestion cloud for '%s' (truth:",
              corpus->documents[sample].title.c_str());
  for (const auto& t : corpus->documents[sample].tags) {
    std::printf(" %s", t.c_str());
  }
  std::printf("):\n");
  Result<std::vector<TagSuggestion>> suggestions =
      tagger.SuggestTags(sample, /*min_confidence=*/0.30);
  if (suggestions.ok()) {
    for (const TagSuggestion& s : suggestions.value()) {
      std::printf("  %-16s confidence=%.2f\n", s.tag.c_str(), s.confidence);
    }
  }

  // --- 5. Refinement: correct one document, model adapts --------------------
  Status refined = tagger.Refine(sample, corpus->documents[sample].tags);
  std::printf("\nrefined tags on doc %zu: %s\n", sample,
              refined.ToString().c_str());

  // --- 6. Library search and Tag Cloud (Fig. 4) ------------------------------
  auto counts = tagger.library().TagCounts();
  std::printf("\nlibrary: %zu tags over %zu documents\n",
              tagger.library().num_tags(), tagger.library().num_documents());
  for (const auto& [tag, count] : counts) {
    std::printf("  %-16s %zu docs\n", tag.c_str(), count);
  }

  TagCloud cloud = tagger.BuildTagCloud();
  std::printf("\ntag cloud: %zu nodes, %zu edges, %zu cluster(s)\n",
              cloud.nodes().size(), cloud.edges().size(),
              cloud.num_clusters());
  std::printf("%s", cloud.Render().c_str());

  std::printf("\nquickstart complete.\n");
  return 0;
}
