#include "text/porter_stemmer.h"

namespace p2pdt {

namespace {

// Working buffer for one word, exposing the predicates of Porter's paper.
// `b` holds the word; `k` is the index of the last character; `j` marks the
// end of the stem for the rule currently being evaluated. Indices are signed
// because `j` is legitimately -1 when a candidate suffix spans the whole
// word (e.g. Ends("ing") on "ing"), exactly as in Porter's reference C code.
class Buffer {
 public:
  explicit Buffer(std::string_view word)
      : b_(word), k_(static_cast<int>(word.size()) - 1) {}

  std::string str() const { return b_.substr(0, k_ + 1); }

  // True when b[i] is a consonant (Porter's cons(i)): y is a consonant when
  // preceded by a vowel or at position 0.
  bool Cons(int i) const {
    switch (b_[i]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return (i == 0) ? true : !Cons(i - 1);
      default:
        return true;
    }
  }

  // Porter's m(): the number of VC sequences in b[0..j].
  int Measure() const {
    int n = 0;
    int i = 0;
    const int end = j_ + 1;
    for (;;) {
      if (i >= end) return n;
      if (!Cons(i)) break;
      ++i;
    }
    ++i;
    for (;;) {
      for (;;) {
        if (i >= end) return n;
        if (Cons(i)) break;
        ++i;
      }
      ++i;
      ++n;
      for (;;) {
        if (i >= end) return n;
        if (!Cons(i)) break;
        ++i;
      }
      ++i;
    }
  }

  // *v* — the stem b[0..j] contains a vowel.
  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!Cons(i)) return true;
    }
    return false;
  }

  // *d — b[i-1..i] is a double consonant.
  bool DoubleC(int i) const {
    if (i < 1) return false;
    if (b_[i] != b_[i - 1]) return false;
    return Cons(i);
  }

  // *o — b[i-2..i] is consonant-vowel-consonant where the final consonant is
  // not w, x or y. Used to restore an e at the end of short words.
  bool Cvc(int i) const {
    if (i < 2 || !Cons(i) || Cons(i - 1) || !Cons(i - 2)) return false;
    char ch = b_[i];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  // True when the word ends with `s`; sets j to the end of the stem.
  bool Ends(std::string_view s) {
    const int len = static_cast<int>(s.size());
    if (len > k_ + 1) return false;
    if (b_.compare(k_ + 1 - len, len, s) != 0) return false;
    j_ = k_ - len;
    return true;
  }

  // Replaces the suffix (b[j+1..k]) with `s` and adjusts k.
  void SetTo(std::string_view s) {
    b_.replace(j_ + 1, k_ - j_, s);
    k_ = j_ + static_cast<int>(s.size());
  }

  // Conditional replacement: applies SetTo when m > 0.
  void R(std::string_view s) {
    if (Measure() > 0) SetTo(s);
  }

  char At(int i) const { return b_[i]; }
  int k() const { return k_; }
  int j() const { return j_; }
  void TruncateOne() { --k_; }
  void set_j_to_k() { j_ = k_; }

 private:
  std::string b_;
  int k_;
  int j_ = 0;
};

// Step 1a: plurals. caresses -> caress, ponies -> poni, cats -> cat.
void Step1a(Buffer& b) {
  if (b.At(b.k()) == 's') {
    if (b.Ends("sses")) {
      b.SetTo("ss");
    } else if (b.Ends("ies")) {
      b.SetTo("i");
    } else if (b.k() >= 1 && b.At(b.k() - 1) != 's') {
      b.TruncateOne();
    }
  }
}

// Step 1b: -eed, -ed, -ing. feed -> feed, agreed -> agree, plastered ->
// plaster, motoring -> motor.
void Step1b(Buffer& b) {
  bool fired = false;
  if (b.Ends("eed")) {
    if (b.Measure() > 0) b.SetTo("ee");
  } else if (b.Ends("ed")) {
    if (b.VowelInStem()) {
      b.SetTo("");
      fired = true;
    }
  } else if (b.Ends("ing")) {
    if (b.VowelInStem()) {
      b.SetTo("");
      fired = true;
    }
  }
  if (!fired) return;
  // Cleanup after removing -ed / -ing.
  if (b.Ends("at")) {
    b.SetTo("ate");
  } else if (b.Ends("bl")) {
    b.SetTo("ble");
  } else if (b.Ends("iz")) {
    b.SetTo("ize");
  } else if (b.DoubleC(b.k())) {
    char ch = b.At(b.k());
    if (ch != 'l' && ch != 's' && ch != 'z') b.TruncateOne();
  } else {
    b.set_j_to_k();
    if (b.Measure() == 1 && b.Cvc(b.k())) b.SetTo("e");
  }
}

// Step 1c: y -> i when there is another vowel in the stem.
void Step1c(Buffer& b) {
  if (b.Ends("y") && b.VowelInStem()) b.SetTo("i");
}

// Step 2: double/triple suffixes mapped to single ones when m > 0.
void Step2(Buffer& b) {
  if (b.k() < 1) return;
  switch (b.At(b.k() - 1)) {
    case 'a':
      if (b.Ends("ational")) { b.R("ate"); return; }
      if (b.Ends("tional")) { b.R("tion"); return; }
      break;
    case 'c':
      if (b.Ends("enci")) { b.R("ence"); return; }
      if (b.Ends("anci")) { b.R("ance"); return; }
      break;
    case 'e':
      if (b.Ends("izer")) { b.R("ize"); return; }
      break;
    case 'l':
      // Porter's published improvement: -abli via "bli" -> "ble".
      if (b.Ends("bli")) { b.R("ble"); return; }
      if (b.Ends("alli")) { b.R("al"); return; }
      if (b.Ends("entli")) { b.R("ent"); return; }
      if (b.Ends("eli")) { b.R("e"); return; }
      if (b.Ends("ousli")) { b.R("ous"); return; }
      break;
    case 'o':
      if (b.Ends("ization")) { b.R("ize"); return; }
      if (b.Ends("ation")) { b.R("ate"); return; }
      if (b.Ends("ator")) { b.R("ate"); return; }
      break;
    case 's':
      if (b.Ends("alism")) { b.R("al"); return; }
      if (b.Ends("iveness")) { b.R("ive"); return; }
      if (b.Ends("fulness")) { b.R("ful"); return; }
      if (b.Ends("ousness")) { b.R("ous"); return; }
      break;
    case 't':
      if (b.Ends("aliti")) { b.R("al"); return; }
      if (b.Ends("iviti")) { b.R("ive"); return; }
      if (b.Ends("biliti")) { b.R("ble"); return; }
      break;
    case 'g':
      // Porter's published improvement: -logi -> -log.
      if (b.Ends("logi")) { b.R("log"); return; }
      break;
    default:
      break;
  }
}

// Step 3: -icate, -ative, etc.
void Step3(Buffer& b) {
  switch (b.At(b.k())) {
    case 'e':
      if (b.Ends("icate")) { b.R("ic"); return; }
      if (b.Ends("ative")) { b.R(""); return; }
      if (b.Ends("alize")) { b.R("al"); return; }
      break;
    case 'i':
      if (b.Ends("iciti")) { b.R("ic"); return; }
      break;
    case 'l':
      if (b.Ends("ical")) { b.R("ic"); return; }
      if (b.Ends("ful")) { b.R(""); return; }
      break;
    case 's':
      if (b.Ends("ness")) { b.R(""); return; }
      break;
    default:
      break;
  }
}

// Step 4: strip -ant, -ence, ... when m > 1.
void Step4(Buffer& b) {
  if (b.k() < 1) return;
  switch (b.At(b.k() - 1)) {
    case 'a':
      if (b.Ends("al")) break;
      return;
    case 'c':
      if (b.Ends("ance")) break;
      if (b.Ends("ence")) break;
      return;
    case 'e':
      if (b.Ends("er")) break;
      return;
    case 'i':
      if (b.Ends("ic")) break;
      return;
    case 'l':
      if (b.Ends("able")) break;
      if (b.Ends("ible")) break;
      return;
    case 'n':
      if (b.Ends("ant")) break;
      if (b.Ends("ement")) break;
      if (b.Ends("ment")) break;
      if (b.Ends("ent")) break;
      return;
    case 'o':
      // -ion is only removed after s or t.
      if (b.Ends("ion") && b.j() >= 0 &&
          (b.At(b.j()) == 's' || b.At(b.j()) == 't')) {
        break;
      }
      if (b.Ends("ou")) break;
      return;
    case 's':
      if (b.Ends("ism")) break;
      return;
    case 't':
      if (b.Ends("ate")) break;
      if (b.Ends("iti")) break;
      return;
    case 'u':
      if (b.Ends("ous")) break;
      return;
    case 'v':
      if (b.Ends("ive")) break;
      return;
    case 'z':
      if (b.Ends("ize")) break;
      return;
    default:
      return;
  }
  if (b.Measure() > 1) b.SetTo("");
}

// Step 5a: remove a final -e when m > 1 (or m == 1 and not *o).
// Step 5b: -ll -> -l when m > 1.
void Step5(Buffer& b) {
  b.set_j_to_k();
  if (b.At(b.k()) == 'e') {
    int m = b.Measure();
    if (m > 1 || (m == 1 && !b.Cvc(b.k() - 1))) b.TruncateOne();
  }
  b.set_j_to_k();
  if (b.At(b.k()) == 'l' && b.DoubleC(b.k()) && b.Measure() > 1) {
    b.TruncateOne();
  }
}

bool AllLowerAlpha(std::string_view word) {
  for (char c : word) {
    if (c < 'a' || c > 'z') return false;
  }
  return true;
}

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) const {
  // Words of length <= 2 and non-alphabetic tokens are left untouched, as in
  // the reference implementation.
  if (word.size() <= 2 || !AllLowerAlpha(word)) return std::string(word);
  Buffer b(word);
  Step1a(b);
  Step1b(b);
  Step1c(b);
  Step2(b);
  Step3(b);
  Step4(b);
  Step5(b);
  return b.str();
}

void PorterStemmer::StemAll(std::vector<std::string>& tokens) const {
  for (auto& t : tokens) t = Stem(t);
}

}  // namespace p2pdt
