#include "p2psim/sharding.h"

#include <algorithm>
#include <vector>

#include "common/thread_pool.h"

namespace p2pdt {

std::size_t ResolveShards(std::size_t num_items,
                          const ShardPlanOptions& options) {
  std::size_t shards =
      options.shards != 0 ? options.shards : ThreadPool::GlobalConcurrency();
  shards = std::max<std::size_t>(shards, 1);
  if (num_items > 0) shards = std::min(shards, num_items);
  return shards;
}

std::size_t ShardedPhase(
    std::size_t num_items, const ShardPlanOptions& options,
    const std::function<UniqueFunction(std::size_t, Rng&)>& work) {
  const std::size_t shards = ResolveShards(num_items, options);
  if (num_items == 0) return shards;

  // Compute fan-out: each shard task fills only its own slice of the commit
  // array, so the phase needs no locks.
  std::vector<UniqueFunction> commits(num_items);
  ParallelFor(0, shards, 1, options.num_threads,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t s = lo; s < hi; ++s) {
                  const std::size_t begin = s * num_items / shards;
                  const std::size_t end = (s + 1) * num_items / shards;
                  Rng shard_rng(DeriveSeed(options.seed, s));
                  for (std::size_t item = begin; item < end; ++item) {
                    commits[item] = work(item, shard_rng);
                  }
                }
              });

  // Commit serially in item order — the exact order a serial loop would
  // have used, independent of shards/threads.
  for (UniqueFunction& commit : commits) {
    if (commit) commit();
  }
  return shards;
}

}  // namespace p2pdt
