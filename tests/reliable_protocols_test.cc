// End-to-end robustness acceptance: CEMPaR and PACE driven over a lossy /
// churned underlay with the reliable transport on and off. The baseline
// (fire-and-forget) measurably degrades; with retries the protocols
// converge — PACE's received_ matrix fills, CEMPaR predictions keep
// succeeding — and serial == parallel determinism survives the transport.

#include <set>

#include <gtest/gtest.h>

#include "p2pdmt/environment.h"
#include "p2pml/cempar.h"
#include "p2pml/pace.h"

namespace p2pdt {
namespace {

std::vector<MultiLabelDataset> MakePeerData(std::size_t num_peers,
                                            std::size_t per_peer,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<MultiLabelDataset> peers(num_peers, MultiLabelDataset(4));
  for (std::size_t p = 0; p < num_peers; ++p) {
    for (std::size_t i = 0; i < per_peer; ++i) {
      TagId tag = static_cast<TagId>((p + i) % 4);
      MultiLabelExample ex;
      ex.x = SparseVector::FromPairs(
          {{tag * 3 + static_cast<uint32_t>(rng.NextU64(3)), 1.0},
           {12 + static_cast<uint32_t>(rng.NextU64(4)),
            0.3 * rng.NextDouble()}});
      ex.tags = {tag};
      peers[p].Add(std::move(ex));
    }
  }
  return peers;
}

SparseVector TagVector(TagId tag) {
  return SparseVector::FromPairs({{tag * 3u, 1.0}, {tag * 3u + 1, 1.0}});
}

struct PaceFixture {
  std::unique_ptr<Environment> env;
  std::unique_ptr<Pace> pace;

  PaceFixture(std::size_t peers, double loss_rate, PaceOptions options = {}) {
    EnvironmentOptions eo;
    eo.num_peers = peers;
    eo.physical.loss_rate = loss_rate;
    env = std::move(Environment::Create(eo)).value();
    pace = std::make_unique<Pace>(env->sim(), env->net(), env->overlay(),
                                  options);
  }

  Status Train(std::vector<MultiLabelDataset> data) {
    P2PDT_RETURN_IF_ERROR(pace->Setup(std::move(data), 4));
    bool done = false;
    Status status = Status::OK();
    pace->Train([&](Status s) {
      status = s;
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);
    return status;
  }
};

struct CemparFixture {
  std::unique_ptr<Environment> env;
  std::unique_ptr<Cempar> cempar;

  CemparFixture(std::size_t peers, double loss_rate,
                CemparOptions options = {}) {
    EnvironmentOptions eo;
    eo.num_peers = peers;
    eo.physical.loss_rate = loss_rate;
    env = std::move(Environment::Create(eo)).value();
    if (options.svm.kernel.type == KernelType::kRbf) {
      options.svm.kernel = Kernel::Linear();
    }
    cempar = std::make_unique<Cempar>(env->sim(), env->net(), *env->chord(),
                                      options);
  }

  Status Train(std::vector<MultiLabelDataset> data) {
    P2PDT_RETURN_IF_ERROR(cempar->Setup(std::move(data), 4));
    bool done = false;
    Status status = Status::OK();
    cempar->Train([&](Status s) {
      status = s;
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);
    return status;
  }

  P2PPrediction PredictSync(NodeId requester, const SparseVector& x) {
    P2PPrediction out;
    bool done = false;
    cempar->Predict(requester, x, [&](P2PPrediction p) {
      out = std::move(p);
      done = true;
    });
    env->RunUntilFlag(done, 3600);
    EXPECT_TRUE(done);
    return out;
  }
};

// ---------------------------------------------------------------------------
// PACE: reliable dissemination closes the coverage gap loss opens.

TEST(ReliableProtocolsTest, PaceBaselineLosesCoverageUnderLoss) {
  PaceFixture f(10, /*loss_rate=*/0.2);
  ASSERT_TRUE(f.Train(MakePeerData(10, 8, 21)).ok());
  EXPECT_LT(f.pace->ModelCoverage(), 1.0);
  EXPECT_EQ(f.pace->repair_rounds_run(), 0u);
}

TEST(ReliableProtocolsTest, PaceRepairConvergesUnderLoss) {
  PaceOptions opt;
  opt.reliable_dissemination = true;
  PaceFixture f(10, /*loss_rate=*/0.2, opt);
  ASSERT_TRUE(f.Train(MakePeerData(10, 8, 21)).ok());
  // Acceptance: 100% received_ convergence at loss 0.2.
  EXPECT_DOUBLE_EQ(f.pace->ModelCoverage(), 1.0);
  EXPECT_GE(f.pace->repair_rounds_run(), 1u);
  EXPECT_GT(f.env->net().stats().retransmits(), 0u);
  EXPECT_GT(f.env->net().stats().acks_received(), 0u);
}

// ---------------------------------------------------------------------------
// CEMPaR: retries keep predictions succeeding where fire-and-forget fails.

TEST(ReliableProtocolsTest, CemparRetriesKeepPredictionsSucceeding) {
  // A single prediction fails only when EVERY super-peer group loses its
  // round trip, so moderate loss rarely kills it outright — 45% loss makes
  // the fire-and-forget baseline fail visibly while the transport still
  // delivers.
  const std::size_t kPredictions = 20;
  auto run = [&](bool reliable) {
    CemparOptions opt;
    opt.reliable_transport = reliable;
    CemparFixture f(12, /*loss_rate=*/0.45, opt);
    EXPECT_TRUE(f.Train(MakePeerData(12, 6, 22)).ok());
    std::size_t ok = 0, degraded = 0;
    for (std::size_t i = 0; i < kPredictions; ++i) {
      P2PPrediction p = f.PredictSync(i % 12, TagVector(i % 4));
      if (p.success) ++ok;
      if (p.degraded) ++degraded;
    }
    if (reliable) {
      EXPECT_GT(f.env->net().stats().retransmits(), 0u);
    } else {
      EXPECT_EQ(degraded, 0u);
    }
    return ok;
  };

  std::size_t baseline_ok = run(false);
  std::size_t reliable_ok = run(true);
  // Acceptance: success rate >= 0.99 with retries; the baseline measurably
  // degrades at 20% loss.
  EXPECT_GE(static_cast<double>(reliable_ok),
            0.99 * static_cast<double>(kPredictions));
  EXPECT_LT(baseline_ok, reliable_ok);
}

TEST(ReliableProtocolsTest, CemparPredictionWaitsOutOwnerDowntime) {
  // Churn x retry at the protocol level: every super-peer goes offline,
  // the prediction's requests back off, the owners return before the retry
  // budget is spent, and the answer arrives exactly once — no give-up, no
  // degraded fallback.
  CemparOptions opt;
  opt.reliable_transport = true;
  CemparFixture f(12, /*loss_rate=*/0.0, opt);
  ASSERT_TRUE(f.Train(MakePeerData(12, 6, 23)).ok());

  std::set<NodeId> owners;
  for (NodeId o : f.cempar->HomeOwners()) {
    if (o != kInvalidNode) owners.insert(o);
  }
  ASSERT_FALSE(owners.empty());
  NodeId requester = 0;
  while (owners.count(requester)) ++requester;

  for (NodeId o : owners) f.env->net().SetOnline(o, false);
  f.env->sim().Schedule(1.0, [&] {
    for (NodeId o : owners) f.env->net().SetOnline(o, true);
  });

  uint64_t retx_before = f.env->net().stats().retransmits();
  P2PPrediction p = f.PredictSync(requester, TagVector(1));
  ASSERT_TRUE(p.success);
  EXPECT_FALSE(p.degraded);
  EXPECT_EQ(p.tags, (std::vector<TagId>{1}));
  EXPECT_GT(f.env->net().stats().retransmits(), retx_before);
  EXPECT_EQ(f.env->net().stats().give_ups(), 0u);
}

TEST(ReliableProtocolsTest, CemparDegradesToLocalModelsWhenIsolated) {
  CemparOptions opt;
  opt.reliable_transport = true;
  opt.replicate_regional_models = false;
  opt.transport.max_retries = 1;  // fail fast, the peers are gone for good
  CemparFixture f(6, /*loss_rate=*/0.0, opt);
  ASSERT_TRUE(f.Train(MakePeerData(6, 8, 24)).ok());

  for (NodeId n = 1; n < 6; ++n) f.env->net().SetOnline(n, false);
  P2PPrediction p = f.PredictSync(0, TagVector(2));
  ASSERT_TRUE(p.success);
  EXPECT_TRUE(p.degraded);
  // Scores come from the peer's own local models — reduced quality, so no
  // exact-tag assertion, but they must exist.
  EXPECT_EQ(p.scores.size(), 4u);

  // The fire-and-forget baseline fails outright in the same situation.
  CemparFixture g(6, /*loss_rate=*/0.0);
  ASSERT_TRUE(g.Train(MakePeerData(6, 8, 24)).ok());
  for (NodeId n = 1; n < 6; ++n) g.env->net().SetOnline(n, false);
  P2PPrediction q = g.PredictSync(0, TagVector(2));
  EXPECT_FALSE(q.success);
  EXPECT_FALSE(q.degraded);
}

TEST(ReliableProtocolsTest, CemparReplicatesAndPromotesStandbys) {
  CemparOptions opt;
  opt.reliable_transport = true;
  opt.transport.max_retries = 1;
  opt.transport.suspicion_threshold = 1;
  CemparFixture f(16, /*loss_rate=*/0.0, opt);
  ASSERT_TRUE(f.Train(MakePeerData(16, 6, 25)).ok());
  // Every regional model got a standby replica after the cascade.
  EXPECT_EQ(f.cempar->NumReplicatedHomes(), 4u);

  // Kill one super-peer without telling anyone (no stabilization, no
  // churn event): only the transport's give-ups can notice.
  NodeId victim = kInvalidNode;
  for (NodeId o : f.cempar->HomeOwners()) {
    if (o != kInvalidNode) {
      victim = o;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);
  f.env->net().SetOnline(victim, false);
  EXPECT_LT(f.cempar->NumLiveHomes(), 4u);

  NodeId requester = 0;
  while (requester == victim) ++requester;
  // First prediction: the victim's group gives up, suspicion fires, the
  // standby is promoted. Other homes still answer, so it succeeds.
  P2PPrediction first = f.PredictSync(requester, TagVector(0));
  EXPECT_TRUE(first.success);
  EXPECT_TRUE(f.cempar->transport()->IsSuspected(victim));
  // Promotion restored every home to a live owner.
  EXPECT_EQ(f.cempar->NumLiveHomes(), 4u);

  // Second prediction reaches the promoted standby through the ring.
  P2PPrediction second = f.PredictSync(requester, TagVector(3));
  ASSERT_TRUE(second.success);
  EXPECT_FALSE(second.degraded);
  EXPECT_EQ(second.tags, (std::vector<TagId>{3}));
}

// ---------------------------------------------------------------------------
// Determinism: the transport's timers and retries stay bit-reproducible at
// any thread count.

TEST(ReliableProtocolsTest, SerialEqualsParallelWithTransportEnabled) {
  auto run = [](std::size_t threads) {
    PaceOptions opt;
    opt.reliable_dissemination = true;
    opt.num_threads = threads;
    PaceFixture f(10, /*loss_rate=*/0.2, opt);
    EXPECT_TRUE(f.Train(MakePeerData(10, 8, 26)).ok());

    struct Snapshot {
      uint64_t messages, bytes, retransmits, acks, give_ups;
      double coverage;
      std::vector<double> scores;
      bool operator==(const Snapshot& o) const {
        return messages == o.messages && bytes == o.bytes &&
               retransmits == o.retransmits && acks == o.acks &&
               give_ups == o.give_ups && coverage == o.coverage &&
               scores == o.scores;
      }
    };
    Snapshot s;
    const NetworkStats& stats = f.env->net().stats();
    s.messages = stats.messages_sent();
    s.bytes = stats.bytes_sent();
    s.retransmits = stats.retransmits();
    s.acks = stats.acks_received();
    s.give_ups = stats.give_ups();
    s.coverage = f.pace->ModelCoverage();
    for (TagId t = 0; t < 4; ++t) {
      P2PPrediction p;
      bool done = false;
      f.pace->Predict(3, TagVector(t), [&](P2PPrediction r) {
        p = std::move(r);
        done = true;
      });
      f.env->RunUntilFlag(done, 3600);
      EXPECT_TRUE(done);
      for (double v : p.scores) s.scores.push_back(v);
    }
    return s;
  };

  auto serial = run(1);
  auto parallel = run(4);
  EXPECT_TRUE(serial == parallel);
  EXPECT_GT(serial.retransmits, 0u);
}

}  // namespace
}  // namespace p2pdt
