#ifndef P2PDT_COMMON_CHECKPOINT_H_
#define P2PDT_COMMON_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace p2pdt {

/// Writes `data` to `path` atomically: temp sibling + rename. The rename is
/// atomic on POSIX filesystems, so concurrent readers (and crash recovery)
/// only ever observe the old file or the complete new one. Shared by every
/// on-disk writer that must never leave a torn file (checkpoints, manifest,
/// metadata sidecars).
Status AtomicWriteFile(const std::string& path, const std::string& data);

/// Durable, checksummed key→blob store backing peer-state checkpoints.
///
/// Each checkpoint is one file `<key>.ckpt` in the manager's directory:
///
///   magic "P2CP" (u32 LE) | format version (u16) | flags (u16, zero) |
///   payload size (u64)    | CRC-32 of payload (u32) | payload bytes
///
/// Writes are atomic: the file is written to a `.tmp` sibling and renamed
/// into place, so a crash mid-write leaves either the old checkpoint or
/// none — never a half-written one under the live name. Reads validate
/// magic, version, declared size and CRC; any mismatch returns
/// StatusCode::kDataLoss so the caller degrades to a cold rebuild instead
/// of crashing or silently loading a wrong model.
///
/// A `MANIFEST` file (also atomically replaced) records every live
/// checkpoint's key, size and CRC. It is an accelerator and a
/// cross-check, not a single point of failure: a missing or torn manifest
/// is rebuilt by scanning the directory.
///
/// Not thread-safe; the simulator drives all checkpoint traffic from the
/// single driver thread.
class CheckpointManager {
 public:
  /// Keys name files, so they are restricted to [A-Za-z0-9._-]+ (no path
  /// separators); Write rejects anything else.
  explicit CheckpointManager(std::string directory);

  /// Atomically writes (or replaces) the checkpoint for `key`.
  Status Write(const std::string& key, const std::string& payload);

  /// Reads and validates the checkpoint for `key`. kNotFound when no
  /// checkpoint exists; kDataLoss when it exists but fails validation.
  Result<std::string> Read(const std::string& key);

  /// Removes the checkpoint for `key` (missing is not an error).
  Status Remove(const std::string& key);

  bool Contains(const std::string& key) const;

  /// Keys with live checkpoints, sorted.
  std::vector<std::string> Keys() const;

  /// I/O accounting, so experiments can report checkpoint cost.
  struct Stats {
    uint64_t writes = 0;
    uint64_t reads = 0;
    uint64_t corrupt_reads = 0;
    uint64_t bytes_written = 0;
    uint64_t bytes_read = 0;
  };
  const Stats& stats() const { return stats_; }

  const std::string& directory() const { return directory_; }

 private:
  struct ManifestEntry {
    uint64_t size = 0;
    uint32_t crc = 0;
  };

  std::string PathFor(const std::string& key) const;
  Status EnsureLoaded();
  Status WriteManifest() const;
  void RebuildManifestFromScan();

  std::string directory_;
  bool loaded_ = false;
  std::map<std::string, ManifestEntry> manifest_;
  Stats stats_;
};

}  // namespace p2pdt

#endif  // P2PDT_COMMON_CHECKPOINT_H_
