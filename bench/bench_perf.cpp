// PERF1 — the cost-model record: run CEMPaR and PACE at the 1k and 10k
// peer tiers with the cost ledger on and persist exact ledger op counts,
// wire bytes, and (advisory) wall-clock per tier as machine-readable JSON.
// The output is the source of the committed BENCH_perf.json snapshot; the
// deterministic metrics double as a coarse end-to-end regression gate via
// tools/bench_diff.py.
//
// `--smoke` drops the 10k tier so CI finishes quickly.

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "common/stopwatch.h"

using namespace p2pdt_bench;

namespace {

/// Scale-tier settings mirroring bench_scalability's ScaleDefaults:
/// sharded simulation, sampled evaluation, windowed dissemination.
ExperimentOptions TierOptions(AlgorithmType algorithm,
                              std::size_t num_peers) {
  ExperimentOptions opt = MacroDefaults(algorithm, num_peers);
  opt.sim_shards = 8;
  opt.max_eval_peers = 64;
  opt.max_test_documents = 100;
  opt.pace.max_concurrent_broadcasts = 64;
  opt.env.observe.metrics = true;
  opt.env.observe.cost_ledger = true;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::printf("=== PERF1: ledger ops, wire bytes, wall-clock per tier ===\n");
  const VectorizedCorpus& corpus = SharedCorpus(/*num_users=*/64,
                                                /*num_tags=*/8);
  BenchEmitter emitter("bench_perf");

  for (std::size_t peers : {1024u, 10240u}) {
    if (smoke && peers > 1024u) continue;
    for (AlgorithmType algo : {AlgorithmType::kCempar, AlgorithmType::kPace}) {
      ExperimentOptions opt = TierOptions(algo, peers);
      Stopwatch wall;
      Result<ExperimentResult> r = RunExperiment(corpus, opt);
      if (!r.ok()) {
        std::fprintf(stderr, "%s/%zu failed: %s\n",
                     AlgorithmTypeToString(algo), peers,
                     r.status().ToString().c_str());
        return 1;
      }
      std::string point =
          r->algorithm + "_p" + std::to_string(peers);
      RecordExperiment(emitter, point, *r);
      std::printf(
          "%-8s %6zu peers  micro_f1=%.4f  wire=%llu B  wall=%.1fs\n",
          r->algorithm.c_str(), peers, r->metrics.micro_f1,
          static_cast<unsigned long long>(r->train_cost.total_wire_bytes() +
                                          r->predict_cost.total_wire_bytes()),
          wall.ElapsedSeconds());
    }
  }

  emitter.Write("perf/bench_perf.json");
  return 0;
}
