file(REMOVE_RECURSE
  "CMakeFiles/simulation_campaign.dir/simulation_campaign.cpp.o"
  "CMakeFiles/simulation_campaign.dir/simulation_campaign.cpp.o.d"
  "simulation_campaign"
  "simulation_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulation_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
