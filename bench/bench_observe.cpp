// OBS1 — cost of observability: run the same CEMPaR / PACE experiment with
// the metrics + tracing subsystems off and on, and report wall-clock and
// message counts side by side. The subsystems are required to be
// behavior-neutral (identical quality and traffic) and cheap (small
// wall-clock overhead), and this bench is where that claim is measured.
//
// `--smoke` runs one small traced CEMPaR experiment and writes its three
// artifacts (trace / metrics / run report JSON) under
// bench_results/observe/ for CI schema validation, skipping the sweep.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "bench/bench_util.h"

using namespace p2pdt_bench;

namespace {

ExperimentOptions PointOptions(AlgorithmType algo, bool observed) {
  ExperimentOptions opt = MacroDefaults(algo, 32);
  opt.max_test_documents = 150;
  opt.env.physical.loss_rate = 0.05;
  opt.cempar.reliable_transport = true;
  opt.env.observe.metrics = observed;
  opt.env.observe.tracing = observed;
  return opt;
}

int RunSmoke() {
  std::printf("=== OBS1 smoke: traced CEMPaR experiment for CI ===\n");
  CorpusOptions copt;
  copt.num_users = 10;
  copt.min_docs_per_user = 30;
  copt.max_docs_per_user = 40;
  copt.num_tags = 5;
  copt.vocabulary_size = 1000;
  copt.seed = 4242;
  Result<VectorizedCorpus> corpus = MakeVectorizedCorpus(copt);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    return 1;
  }

  ExperimentOptions opt;
  opt.algorithm = AlgorithmType::kCempar;
  opt.env.num_peers = 10;
  opt.distribution.cls = ClassDistribution::kByUser;
  opt.max_test_documents = 40;
  opt.env.physical.loss_rate = 0.1;
  opt.cempar.reliable_transport = true;
  opt.env.observe.metrics = true;
  opt.env.observe.tracing = true;

  std::error_code ec;
  std::filesystem::create_directories("bench_results/observe", ec);
  opt.trace_path = "bench_results/observe/trace.json";
  opt.metrics_path = "bench_results/observe/metrics.json";
  opt.report_path = "bench_results/observe/report.json";

  Result<ExperimentResult> r = RunExperiment(corpus.value(), opt);
  if (!r.ok()) {
    std::fprintf(stderr, "experiment: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("macro_f1=%.4f metrics=%zu failed=%zu\n", r->metrics.macro_f1,
              r->observability.entries.size(), r->failed_predictions);
  std::printf("[artifacts written to bench_results/observe/]\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return RunSmoke();

  std::printf("=== OBS1: observability overhead (off vs on) ===\n\n");
  const VectorizedCorpus& corpus = SharedCorpus(/*num_users=*/64,
                                                /*num_tags=*/8);

  CsvWriter csv({"algorithm", "observability", "macro_f1", "train_messages",
                 "train_bytes", "predict_messages", "predict_bytes",
                 "retransmits", "wall_seconds", "metric_families"});
  std::printf("%-8s %-4s %8s %10s %10s %10s %9s %8s\n", "algo", "obs",
              "macroF1", "trainMsgs", "predMsgs", "retx", "wall(s)",
              "metrics");

  for (AlgorithmType algo : {AlgorithmType::kCempar, AlgorithmType::kPace}) {
    double wall_off = 0.0;
    for (bool observed : {false, true}) {
      Result<ExperimentResult> r =
          RunExperiment(corpus, PointOptions(algo, observed));
      if (!r.ok()) {
        std::fprintf(stderr, "point failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      if (!observed) wall_off = r->wall_seconds;
      std::printf("%-8s %-4s %8.4f %10llu %10llu %10llu %9.2f %8zu\n",
                  r->algorithm.c_str(), observed ? "on" : "off",
                  r->metrics.macro_f1,
                  static_cast<unsigned long long>(r->train_messages),
                  static_cast<unsigned long long>(r->predict_messages),
                  static_cast<unsigned long long>(r->retransmits),
                  r->wall_seconds, r->observability.entries.size());
      if (observed && wall_off > 0.0) {
        std::printf("  -> overhead %+.1f%%\n",
                    100.0 * (r->wall_seconds - wall_off) / wall_off);
      }
      Status s = csv.AddRow(
          {r->algorithm, observed ? "on" : "off",
           std::to_string(r->metrics.macro_f1),
           std::to_string(r->train_messages), std::to_string(r->train_bytes),
           std::to_string(r->predict_messages),
           std::to_string(r->predict_bytes), std::to_string(r->retransmits),
           std::to_string(r->wall_seconds),
           std::to_string(r->observability.entries.size())});
      if (!s.ok()) {
        std::fprintf(stderr, "csv: %s\n", s.ToString().c_str());
        return 1;
      }
    }
  }

  WriteResults(csv, "observe.csv");
  return 0;
}
