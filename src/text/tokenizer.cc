#include "text/tokenizer.h"

#include <cctype>

namespace p2pdt {

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  bool has_digit = false;

  auto flush = [&] {
    if (!current.empty()) {
      if ((!has_digit || options_.keep_alphanumeric) && Keep(current)) {
        tokens.push_back(current);
      }
      current.clear();
    }
    has_digit = false;
  };

  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalpha(c)) {
      current += options_.lowercase
                     ? static_cast<char>(std::tolower(c))
                     : raw;
    } else if (std::isdigit(c)) {
      current += raw;
      has_digit = true;
    } else if (raw == '\'' && !current.empty()) {
      // Intra-word apostrophe ("don't" -> "dont"): strip, keep the run going.
      continue;
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

bool Tokenizer::Keep(const std::string& token) const {
  return token.size() >= options_.min_token_length &&
         token.size() <= options_.max_token_length;
}

}  // namespace p2pdt
