#include "corpus/generator.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "text/stopwords.h"

namespace p2pdt {

namespace corpus_internal {

std::vector<std::string> MakeWordList(std::size_t count, Rng& rng,
                                      const std::string& prefix) {
  static const char* kSyllables[] = {
      "ta", "ri", "mo", "ken", "lo",  "su",  "ve", "na",  "pi", "dor",
      "ga", "le", "shi", "ran", "tu", "bel", "ko", "mi",  "za", "fen",
      "cu", "bra", "del", "vo", "ha", "ser", "ne", "qua", "li", "tor",
      "pa", "gre", "ni",  "sta", "re", "mu", "jo", "wen", "ce", "dal"};
  constexpr std::size_t kNumSyllables =
      sizeof(kSyllables) / sizeof(kSyllables[0]);

  std::unordered_set<std::string> seen;
  std::vector<std::string> words;
  words.reserve(count);
  while (words.size() < count) {
    std::size_t syllables = 2 + rng.NextU64(3);  // 2..4
    std::string w = prefix;
    for (std::size_t s = 0; s < syllables; ++s) {
      w += kSyllables[rng.NextU64(kNumSyllables)];
    }
    if (seen.insert(w).second) words.push_back(std::move(w));
  }
  return words;
}

}  // namespace corpus_internal

namespace {

/// Inflectional endings the Porter stemmer strips; applied at render time
/// so stemming has real work to do.
const char* kInflections[] = {"s", "ing", "ed", "er", "ness", "ation"};

std::string RenderText(const std::vector<std::string>& content_words,
                       const CorpusOptions& options, Rng& rng) {
  const auto& stops = StopWordFilter::DefaultEnglishStopWords();
  std::string text;
  std::size_t words_in_sentence = 0;
  std::size_t sentence_target = 6 + rng.NextU64(9);
  bool sentence_start = true;

  auto append_word = [&](const std::string& w, bool capitalize) {
    if (!text.empty() && !sentence_start) text += ' ';
    if (sentence_start && !text.empty()) text += ' ';
    std::size_t at = text.size();
    text += w;
    if (capitalize && at < text.size()) {
      text[at] = static_cast<char>(std::toupper(
          static_cast<unsigned char>(text[at])));
    }
    sentence_start = false;
  };

  for (const std::string& base : content_words) {
    // Optional stop word first (filtered out later by the pipeline).
    if (rng.Bernoulli(options.stop_word_probability)) {
      append_word(stops[rng.NextU64(stops.size())], sentence_start);
      ++words_in_sentence;
    }
    std::string w = base;
    if (rng.Bernoulli(options.inflection_probability)) {
      w += kInflections[rng.NextU64(sizeof(kInflections) /
                                    sizeof(kInflections[0]))];
    }
    append_word(w, sentence_start);
    if (++words_in_sentence >= sentence_target) {
      text += '.';
      words_in_sentence = 0;
      sentence_target = 6 + rng.NextU64(9);
      sentence_start = true;
    }
  }
  if (!text.empty() && text.back() != '.') text += '.';
  return text;
}

}  // namespace

Result<GeneratedCorpus> GenerateCorpus(const CorpusOptions& options) {
  if (options.num_users == 0 || options.num_tags == 0 ||
      options.vocabulary_size == 0) {
    return Status::InvalidArgument(
        "corpus requires users, tags and vocabulary");
  }
  if (options.min_docs_per_user > options.max_docs_per_user ||
      options.min_doc_words > options.max_doc_words) {
    return Status::InvalidArgument("corpus min/max ranges inverted");
  }
  if (options.topic_words_per_tag > options.vocabulary_size) {
    return Status::InvalidArgument(
        "topic_words_per_tag exceeds vocabulary_size");
  }

  Rng rng(options.seed);
  GeneratedCorpus corpus;

  // Vocabulary and (disjoint) tag names. The "xq" prefix guarantees tag
  // names never collide with document words — per the paper, tags need not
  // occur in the documents at all.
  std::vector<std::string> vocab =
      corpus_internal::MakeWordList(options.vocabulary_size, rng);
  corpus.tag_names =
      corpus_internal::MakeWordList(options.num_tags, rng, "xq");

  // Per-tag topical word sets with Zipf-weighted frequencies.
  corpus.topic_words.resize(options.num_tags);
  std::vector<std::vector<std::size_t>> topic_word_ids(options.num_tags);
  for (std::size_t t = 0; t < options.num_tags; ++t) {
    std::vector<std::size_t> picks = rng.SampleWithoutReplacement(
        options.vocabulary_size, options.topic_words_per_tag);
    topic_word_ids[t] = picks;
    for (std::size_t id : picks) corpus.topic_words[t].push_back(vocab[id]);
  }
  ZipfSampler topic_sampler(options.topic_words_per_tag,
                            options.topic_word_zipf);
  ZipfSampler background_sampler(options.vocabulary_size,
                                 options.background_word_zipf);

  // Global tag popularity (power law, shuffled so tag id != rank).
  ZipfSampler tag_popularity(options.num_tags, options.tag_popularity_zipf);
  std::vector<double> tag_weight(options.num_tags);
  for (std::size_t t = 0; t < options.num_tags; ++t) {
    tag_weight[t] = tag_popularity.Pmf(t);
  }
  rng.Shuffle(tag_weight);

  corpus.user_documents.resize(options.num_users);
  for (std::size_t user = 0; user < options.num_users; ++user) {
    // User interest: Dirichlet-skewed reweighting of global popularity.
    std::vector<double> interest =
        rng.Dirichlet(options.num_tags, options.user_interest_alpha);
    for (std::size_t t = 0; t < options.num_tags; ++t) {
      interest[t] *= tag_weight[t];
    }

    std::size_t num_docs =
        options.min_docs_per_user +
        rng.NextU64(options.max_docs_per_user - options.min_docs_per_user +
                    1);
    for (std::size_t d = 0; d < num_docs; ++d) {
      RawDocument doc;
      doc.user = user;

      // Tags: first from the user's interest, extras with decaying
      // probability.
      std::vector<std::size_t> tags;
      std::size_t first = rng.Categorical(interest);
      if (first >= options.num_tags) first = rng.NextU64(options.num_tags);
      tags.push_back(first);
      while (tags.size() < options.max_tags_per_doc &&
             rng.Bernoulli(options.extra_tag_probability)) {
        std::size_t extra = rng.Categorical(interest);
        if (extra >= options.num_tags) break;
        if (std::find(tags.begin(), tags.end(), extra) == tags.end()) {
          tags.push_back(extra);
        }
      }
      std::sort(tags.begin(), tags.end());
      for (std::size_t t : tags) doc.tags.push_back(corpus.tag_names[t]);

      // Content words: topic mixture plus background noise.
      std::size_t length =
          options.min_doc_words +
          rng.NextU64(options.max_doc_words - options.min_doc_words + 1);
      std::vector<std::string> content;
      content.reserve(length);
      for (std::size_t w = 0; w < length; ++w) {
        if (rng.Bernoulli(options.background_word_fraction)) {
          content.push_back(vocab[background_sampler.Sample(rng)]);
        } else {
          std::size_t topic = tags[rng.NextU64(tags.size())];
          std::size_t rank = topic_sampler.Sample(rng);
          content.push_back(vocab[topic_word_ids[topic][rank]]);
        }
      }

      doc.title = "doc_u" + std::to_string(user) + "_" + std::to_string(d);
      doc.text = RenderText(content, options, rng);

      corpus.user_documents[user].push_back(corpus.documents.size());
      corpus.documents.push_back(std::move(doc));
    }
  }
  return corpus;
}

// ---------------------------------------------------------------------------
// Streaming corpus with scripted drift
// ---------------------------------------------------------------------------

const char* DriftKindToString(DriftKind kind) {
  switch (kind) {
    case DriftKind::kTopicRotation:
      return "topic_rotation";
    case DriftKind::kVocabularyShift:
      return "vocabulary_shift";
    case DriftKind::kPopularitySpike:
      return "popularity_spike";
    case DriftKind::kNewTag:
      return "new_tag";
  }
  return "unknown";
}

namespace {

/// Key offsets separating the stream's independent RNG families. Epoch
/// document streams use DeriveSeed(seed, kEpochStreamKey + epoch); event
/// mutations use DeriveSeed(seed, kEventStreamKey + event index, epoch).
constexpr uint64_t kEpochStreamKey = 0x0D0C5ull;
constexpr uint64_t kEventStreamKey = 0xD21F7ull;

Status ValidateStream(const StreamOptions& options) {
  const CorpusOptions& base = options.base;
  if (base.num_users == 0 || base.num_tags == 0 ||
      base.vocabulary_size == 0) {
    return Status::InvalidArgument(
        "stream requires users, tags and vocabulary");
  }
  if (options.num_epochs == 0) {
    return Status::InvalidArgument("stream requires at least one epoch");
  }
  if (options.min_docs_per_user_per_epoch >
          options.max_docs_per_user_per_epoch ||
      base.min_doc_words > base.max_doc_words) {
    return Status::InvalidArgument("stream min/max ranges inverted");
  }
  if (base.topic_words_per_tag > base.vocabulary_size) {
    return Status::InvalidArgument(
        "topic_words_per_tag exceeds vocabulary_size");
  }
  const std::size_t total_tags = base.num_tags + options.reserve_tags;
  for (const DriftEvent& ev : options.events) {
    if (ev.epoch >= options.num_epochs) {
      return Status::InvalidArgument("drift event epoch beyond stream end");
    }
    if (ev.duration_epochs == 0) {
      return Status::InvalidArgument("drift event duration must be >= 1");
    }
    switch (ev.kind) {
      case DriftKind::kVocabularyShift:
        if (ev.tag != DriftEvent::kAllTags && ev.tag >= total_tags) {
          return Status::InvalidArgument("vocabulary-shift tag out of range");
        }
        break;
      case DriftKind::kTopicRotation:
      case DriftKind::kPopularitySpike:
        if (ev.tag >= total_tags) {
          return Status::InvalidArgument("drift event needs a concrete tag");
        }
        break;
      case DriftKind::kNewTag:
        if (ev.tag < base.num_tags || ev.tag >= total_tags) {
          return Status::InvalidArgument(
              "new-tag event must name a reserved tag");
        }
        break;
    }
  }
  return Status::OK();
}

}  // namespace

Result<StreamedCorpus> GenerateStream(const StreamOptions& options) {
  Status valid = ValidateStream(options);
  if (!valid.ok()) return valid;

  const CorpusOptions& base = options.base;
  const std::size_t total_tags = base.num_tags + options.reserve_tags;

  // Setup stream: fixed vocabulary, tag universe, initial topic word sets,
  // base popularity and per-user interests. Mirrors GenerateCorpus, widened
  // to the full tag universe so the feature/tag spaces never change
  // mid-stream (reserved tags simply have zero weight until activated).
  Rng rng(base.seed);
  StreamedCorpus stream;
  stream.num_epochs = options.num_epochs;

  std::vector<std::string> vocab =
      corpus_internal::MakeWordList(base.vocabulary_size, rng);
  stream.tag_names = corpus_internal::MakeWordList(total_tags, rng, "xq");

  stream.topic_words.resize(total_tags);
  std::vector<std::vector<std::size_t>> topic_word_ids(total_tags);
  for (std::size_t t = 0; t < total_tags; ++t) {
    topic_word_ids[t] = rng.SampleWithoutReplacement(
        base.vocabulary_size, base.topic_words_per_tag);
    for (std::size_t id : topic_word_ids[t]) {
      stream.topic_words[t].push_back(vocab[id]);
    }
  }
  ZipfSampler topic_sampler(base.topic_words_per_tag, base.topic_word_zipf);
  ZipfSampler background_sampler(base.vocabulary_size,
                                 base.background_word_zipf);

  ZipfSampler tag_popularity(base.num_tags, base.tag_popularity_zipf);
  std::vector<double> tag_weight(base.num_tags);
  for (std::size_t t = 0; t < base.num_tags; ++t) {
    tag_weight[t] = tag_popularity.Pmf(t);
  }
  rng.Shuffle(tag_weight);
  tag_weight.resize(total_tags, 0.0);  // reserved tags start inactive

  std::vector<std::vector<double>> base_interest(base.num_users);
  for (std::size_t user = 0; user < base.num_users; ++user) {
    base_interest[user] = rng.Dirichlet(total_tags, base.user_interest_alpha);
  }

  stream.first_drift_epoch = options.num_epochs;
  for (const DriftEvent& ev : options.events) {
    stream.first_drift_epoch = std::min(stream.first_drift_epoch, ev.epoch);
  }

  stream.user_documents.resize(base.num_users);
  for (std::size_t epoch = 0; epoch < options.num_epochs; ++epoch) {
    // Persistent distribution mutations scheduled at (or spanning) this
    // epoch. Each (event, epoch) pair draws from its own derived stream, so
    // event randomness never leaks into the per-epoch document streams.
    for (std::size_t ei = 0; ei < options.events.size(); ++ei) {
      const DriftEvent& ev = options.events[ei];
      const bool starts_here = epoch == ev.epoch;
      const bool spans_here =
          epoch >= ev.epoch && epoch < ev.epoch + ev.duration_epochs;
      switch (ev.kind) {
        case DriftKind::kVocabularyShift: {
          if (!starts_here) break;
          Rng evrng(DeriveSeed(base.seed, kEventStreamKey + ei, epoch));
          if (ev.tag == DriftEvent::kAllTags) {
            for (std::size_t t = 0; t < total_tags; ++t) {
              if (tag_weight[t] <= 0.0) continue;  // inactive tags keep words
              topic_word_ids[t] = evrng.SampleWithoutReplacement(
                  base.vocabulary_size, base.topic_words_per_tag);
            }
          } else {
            topic_word_ids[ev.tag] = evrng.SampleWithoutReplacement(
                base.vocabulary_size, base.topic_words_per_tag);
          }
          break;
        }
        case DriftKind::kTopicRotation: {
          if (!spans_here) break;
          Rng evrng(DeriveSeed(base.seed, kEventStreamKey + ei, epoch));
          // Replace this step's share of the rotation: magnitude fraction
          // of the topic words, spread evenly over the duration.
          const double per_step =
              ev.magnitude * static_cast<double>(base.topic_words_per_tag) /
              static_cast<double>(ev.duration_epochs);
          std::size_t replace = static_cast<std::size_t>(per_step + 0.999999);
          replace = std::min(replace, base.topic_words_per_tag);
          if (replace == 0) break;
          std::vector<std::size_t> slots = evrng.SampleWithoutReplacement(
              base.topic_words_per_tag, replace);
          for (std::size_t slot : slots) {
            topic_word_ids[ev.tag][slot] =
                evrng.NextU64(base.vocabulary_size);
          }
          break;
        }
        case DriftKind::kNewTag: {
          if (!starts_here) break;
          // Activate at magnitude × median active weight (no RNG needed).
          std::vector<double> active;
          for (double w : tag_weight) {
            if (w > 0.0) active.push_back(w);
          }
          std::sort(active.begin(), active.end());
          const double median =
              active.empty() ? 1.0 : active[active.size() / 2];
          tag_weight[ev.tag] = ev.magnitude * median;
          break;
        }
        case DriftKind::kPopularitySpike:
          break;  // transient; applied to the effective weights below
      }
    }

    // Effective popularity this epoch: persistent weights × active spikes.
    std::vector<double> effective = tag_weight;
    for (const DriftEvent& ev : options.events) {
      if (ev.kind != DriftKind::kPopularitySpike) continue;
      if (epoch >= ev.epoch && epoch < ev.epoch + ev.duration_epochs) {
        effective[ev.tag] *= ev.magnitude;
      }
    }

    // This epoch's documents come from an epoch-keyed stream, independent
    // of every other epoch and of all event streams.
    Rng erng(DeriveSeed(base.seed, kEpochStreamKey, epoch));
    for (std::size_t user = 0; user < base.num_users; ++user) {
      std::vector<double> interest = base_interest[user];
      for (std::size_t t = 0; t < total_tags; ++t) {
        interest[t] *= effective[t];
      }

      std::size_t num_docs = options.min_docs_per_user_per_epoch +
                             erng.NextU64(options.max_docs_per_user_per_epoch -
                                          options.min_docs_per_user_per_epoch +
                                          1);
      for (std::size_t d = 0; d < num_docs; ++d) {
        RawDocument doc;
        doc.user = user;

        std::vector<std::size_t> tags;
        std::size_t first = erng.Categorical(interest);
        if (first >= total_tags) first = erng.NextU64(base.num_tags);
        tags.push_back(first);
        while (tags.size() < base.max_tags_per_doc &&
               erng.Bernoulli(base.extra_tag_probability)) {
          std::size_t extra = erng.Categorical(interest);
          if (extra >= total_tags) break;
          if (std::find(tags.begin(), tags.end(), extra) == tags.end()) {
            tags.push_back(extra);
          }
        }
        std::sort(tags.begin(), tags.end());
        for (std::size_t t : tags) doc.tags.push_back(stream.tag_names[t]);

        std::size_t length =
            base.min_doc_words +
            erng.NextU64(base.max_doc_words - base.min_doc_words + 1);
        std::vector<std::string> content;
        content.reserve(length);
        for (std::size_t w = 0; w < length; ++w) {
          if (erng.Bernoulli(base.background_word_fraction)) {
            content.push_back(vocab[background_sampler.Sample(erng)]);
          } else {
            std::size_t topic = tags[erng.NextU64(tags.size())];
            std::size_t rank = topic_sampler.Sample(erng);
            content.push_back(vocab[topic_word_ids[topic][rank]]);
          }
        }

        doc.title = "doc_e" + std::to_string(epoch) + "_u" +
                    std::to_string(user) + "_" + std::to_string(d);
        doc.text = RenderText(content, base, erng);

        stream.user_documents[user].push_back(stream.documents.size());
        stream.doc_epoch.push_back(epoch);
        stream.documents.push_back(std::move(doc));
      }
    }
  }
  return stream;
}

}  // namespace p2pdt
