#include "core/tag_cloud.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

Document Doc(DocId id, std::vector<std::string> tags) {
  Document d;
  d.id = id;
  for (auto& t : tags) d.tags.push_back({t, TagSource::kManual, 1.0});
  return d;
}

// Two dense tag groups joined only through "navigation" — the exact
// structure of the paper's Fig. 4.
TagLibrary Fig4Library() {
  TagLibrary lib;
  DocId id = 0;
  // Cluster 1: {css, html, design} fully interlinked.
  lib.Index(Doc(id++, {"css", "html"}));
  lib.Index(Doc(id++, {"css", "design"}));
  lib.Index(Doc(id++, {"html", "design"}));
  // Cluster 2: {maps, gps, travel} fully interlinked.
  lib.Index(Doc(id++, {"maps", "gps"}));
  lib.Index(Doc(id++, {"maps", "travel"}));
  lib.Index(Doc(id++, {"gps", "travel"}));
  // The bridge: navigation co-occurs with one tag from each cluster.
  lib.Index(Doc(id++, {"navigation", "design"}));
  lib.Index(Doc(id++, {"navigation", "maps"}));
  return lib;
}

TEST(TagCloudTest, NodesAlphabeticalWithCounts) {
  TagLibrary lib;
  lib.Index(Doc(0, {"zeta", "alpha"}));
  lib.Index(Doc(1, {"alpha"}));
  TagCloud cloud = TagCloud::Build(lib);
  ASSERT_EQ(cloud.nodes().size(), 2u);
  EXPECT_EQ(cloud.nodes()[0].tag, "alpha");
  EXPECT_EQ(cloud.nodes()[0].count, 2u);
  EXPECT_EQ(cloud.nodes()[1].tag, "zeta");
}

TEST(TagCloudTest, FontScaleGrowsWithUsage) {
  TagLibrary lib;
  for (DocId i = 0; i < 20; ++i) lib.Index(Doc(i, {"huge"}));
  lib.Index(Doc(100, {"tiny", "huge"}));
  TagCloud cloud = TagCloud::Build(lib);
  const auto& nodes = cloud.nodes();
  double huge_scale = 0, tiny_scale = 0;
  for (const auto& n : nodes) {
    if (n.tag == "huge") huge_scale = n.font_scale;
    if (n.tag == "tiny") tiny_scale = n.font_scale;
  }
  EXPECT_GT(huge_scale, tiny_scale);
  EXPECT_LE(huge_scale, 3.0 + 1e-9);
  EXPECT_GE(tiny_scale, 1.0);
}

TEST(TagCloudTest, EdgesCarryCoOccurrenceWeights) {
  TagLibrary lib;
  lib.Index(Doc(0, {"a", "b"}));
  lib.Index(Doc(1, {"a", "b"}));
  lib.Index(Doc(2, {"a", "c"}));
  TagCloud cloud = TagCloud::Build(lib);
  ASSERT_EQ(cloud.edges().size(), 2u);  // a-b (2), a-c (1); no b-c edge
  for (const auto& e : cloud.edges()) {
    const std::string& ta = cloud.nodes()[e.a].tag;
    const std::string& tb = cloud.nodes()[e.b].tag;
    if ((ta == "a" && tb == "b") || (ta == "b" && tb == "a")) {
      EXPECT_EQ(e.weight, 2u);
    } else {
      EXPECT_EQ(e.weight, 1u);
    }
  }
}

TEST(TagCloudTest, MinEdgeWeightFilters) {
  TagLibrary lib;
  lib.Index(Doc(0, {"a", "b"}));
  lib.Index(Doc(1, {"a", "b"}));
  lib.Index(Doc(2, {"a", "c"}));
  TagCloudOptions opt;
  opt.min_edge_weight = 2;
  TagCloud cloud = TagCloud::Build(lib, opt);
  ASSERT_EQ(cloud.edges().size(), 1u);
}

TEST(TagCloudTest, DisconnectedTagsFormClusters) {
  TagLibrary lib;
  lib.Index(Doc(0, {"a", "b"}));
  lib.Index(Doc(1, {"x", "y"}));
  lib.Index(Doc(2, {"solo"}));
  TagCloud cloud = TagCloud::Build(lib);
  EXPECT_EQ(cloud.num_clusters(), 3u);
  // Tags in the same doc share a cluster id.
  std::size_t ca = 0, cb = 0, cx = 0;
  for (const auto& n : cloud.nodes()) {
    if (n.tag == "a") ca = n.cluster;
    if (n.tag == "b") cb = n.cluster;
    if (n.tag == "x") cx = n.cluster;
  }
  EXPECT_EQ(ca, cb);
  EXPECT_NE(ca, cx);
}

TEST(TagCloudTest, Fig4BridgeDetected) {
  TagCloud cloud = TagCloud::Build(Fig4Library());
  // One connected component (the bridge joins the clusters)...
  EXPECT_EQ(cloud.num_clusters(), 1u);
  // ...and "navigation" is the articulation point between them.
  std::vector<std::string> bridges = cloud.BridgeTags();
  EXPECT_NE(std::find(bridges.begin(), bridges.end(), "navigation"),
            bridges.end());
  // Tags strictly inside a triangle are never articulation points.
  EXPECT_EQ(std::find(bridges.begin(), bridges.end(), "css"), bridges.end());
  EXPECT_EQ(std::find(bridges.begin(), bridges.end(), "gps"), bridges.end());
}

TEST(TagCloudTest, ChainHasInteriorBridges) {
  TagLibrary lib;
  lib.Index(Doc(0, {"a", "b"}));
  lib.Index(Doc(1, {"b", "c"}));
  lib.Index(Doc(2, {"c", "d"}));
  TagCloud cloud = TagCloud::Build(lib);
  std::vector<std::string> bridges = cloud.BridgeTags();
  EXPECT_EQ(bridges, (std::vector<std::string>{"b", "c"}));
}

TEST(TagCloudTest, EmptyLibrary) {
  TagLibrary lib;
  TagCloud cloud = TagCloud::Build(lib);
  EXPECT_TRUE(cloud.nodes().empty());
  EXPECT_TRUE(cloud.edges().empty());
  EXPECT_EQ(cloud.num_clusters(), 0u);
  EXPECT_TRUE(cloud.BridgeTags().empty());
}

TEST(TagCloudTest, DotOutputWellFormed) {
  TagCloud cloud = TagCloud::Build(Fig4Library());
  std::string dot = cloud.ToDot();
  EXPECT_NE(dot.find("graph tagcloud"), std::string::npos);
  EXPECT_NE(dot.find("navigation"), std::string::npos);
  EXPECT_NE(dot.find(" -- "), std::string::npos);
}

TEST(TagCloudTest, RenderListsEveryTag) {
  TagCloud cloud = TagCloud::Build(Fig4Library());
  std::string rendered = cloud.Render();
  for (const auto& n : cloud.nodes()) {
    EXPECT_NE(rendered.find(n.tag), std::string::npos) << n.tag;
  }
}

}  // namespace
}  // namespace p2pdt
