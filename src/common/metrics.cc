#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace p2pdt {

namespace {

void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (cur < v &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

MetricLabels Canonicalize(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Escapes a string for embedding in JSON output.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* KindToString(MetricsSnapshot::Kind kind) {
  switch (kind) {
    case MetricsSnapshot::Kind::kCounter:
      return "counter";
    case MetricsSnapshot::Kind::kGauge:
      return "gauge";
    case MetricsSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::string RenderLabels(const MetricLabels& labels) {
  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  return out;
}

/// Quantile estimate from differenced bucket counts (shared by live
/// histograms and snapshot diffs).
double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& buckets,
                           uint64_t count, double max_value, double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count) + 0.5);
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    uint64_t prev = cum;
    cum += buckets[i];
    if (cum < rank) continue;
    // Implicit overflow bucket: observations beyond the last bound are not
    // uniformly spread over [last_bound, max] — the only honest point
    // estimate is the observed maximum. Interpolating here used to
    // fabricate values below every observation in the bucket.
    if (i >= bounds.size()) return max_value;
    double lo = i == 0 ? 0.0 : bounds[i - 1];
    double hi = bounds[i];
    if (hi < lo) hi = lo;
    double frac = buckets[i] == 0
                      ? 1.0
                      : static_cast<double>(rank - prev) /
                            static_cast<double>(buckets[i]);
    double est = lo + frac * (hi - lo);
    return std::min(est, max_value);
  }
  return max_value;
}

void FillHistogramEntry(MetricsSnapshot::Entry& e) {
  e.p50 = QuantileFromBuckets(e.bounds, e.buckets, e.count, e.max, 0.50);
  e.p95 = QuantileFromBuckets(e.bounds, e.buckets, e.count, e.max, 0.95);
  e.p99 = QuantileFromBuckets(e.bounds, e.buckets, e.count, e.max, 0.99);
}

}  // namespace

std::string RenderMetricKey(const std::string& name,
                            const MetricLabels& labels) {
  if (labels.empty()) return name;
  MetricLabels sorted = Canonicalize(labels);
  return name + "{" + RenderLabels(sorted) + "}";
}

void Gauge::Add(double delta) { AtomicAddDouble(value_, delta); }

const std::vector<double>& Histogram::DefaultLatencyBounds() {
  static const std::vector<double> bounds = {
      1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,
      0.25, 0.5,    1.0,  2.5,  5.0,    10.0, 25.0, 50.0,   100.0, 250.0};
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultLatencyBounds();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double v) {
  std::size_t i =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, v);
  AtomicMaxDouble(max_, v);
}

double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  return QuantileFromBuckets(bounds_, bucket_counts(), count(), max(), q);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     MetricLabels labels) {
  labels = Canonicalize(std::move(labels));
  std::string key = RenderMetricKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::move(key),
                      Family<Counter>{name, std::move(labels),
                                      std::unique_ptr<Counter>(new Counter())})
             .first;
  }
  return *it->second.metric;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 MetricLabels labels) {
  labels = Canonicalize(std::move(labels));
  std::string key = RenderMetricKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::move(key),
                      Family<Gauge>{name, std::move(labels),
                                    std::unique_ptr<Gauge>(new Gauge())})
             .first;
  }
  return *it->second.metric;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         MetricLabels labels,
                                         std::vector<double> bounds) {
  labels = Canonicalize(std::move(labels));
  std::string key = RenderMetricKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::move(key),
                      Family<Histogram>{
                          name, std::move(labels),
                          std::unique_ptr<Histogram>(
                              new Histogram(std::move(bounds)))})
             .first;
  }
  return *it->second.metric;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.entries.reserve(counters_.size() + gauges_.size() +
                       histograms_.size());
  for (const auto& [key, fam] : counters_) {
    MetricsSnapshot::Entry e;
    e.name = fam.name;
    e.labels = fam.labels;
    e.kind = MetricsSnapshot::Kind::kCounter;
    e.value = static_cast<double>(fam.metric->value());
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [key, fam] : gauges_) {
    MetricsSnapshot::Entry e;
    e.name = fam.name;
    e.labels = fam.labels;
    e.kind = MetricsSnapshot::Kind::kGauge;
    e.value = fam.metric->value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [key, fam] : histograms_) {
    MetricsSnapshot::Entry e;
    e.name = fam.name;
    e.labels = fam.labels;
    e.kind = MetricsSnapshot::Kind::kHistogram;
    e.count = fam.metric->count();
    e.sum = fam.metric->sum();
    e.max = fam.metric->max();
    e.bounds = fam.metric->bounds();
    e.buckets = fam.metric->bucket_counts();
    FillHistogramEntry(e);
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const MetricsSnapshot::Entry& a,
               const MetricsSnapshot::Entry& b) { return a.key() < b.key(); });
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, fam] : counters_) {
    fam.metric->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [key, fam] : gauges_) {
    fam.metric->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [key, fam] : histograms_) {
    Histogram& h = *fam.metric;
    for (std::size_t i = 0; i <= h.bounds_.size(); ++i) h.buckets_[i] = 0;
    h.count_.store(0, std::memory_order_relaxed);
    h.sum_.store(0.0, std::memory_order_relaxed);
    h.max_.store(0.0, std::memory_order_relaxed);
  }
}

std::size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

const MetricsSnapshot::Entry* MetricsSnapshot::Find(
    const std::string& name, const MetricLabels& labels) const {
  std::string key = RenderMetricKey(name, labels);
  for (const Entry& e : entries) {
    if (e.key() == key) return &e;
  }
  return nullptr;
}

MetricsSnapshot DiffSnapshots(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot out;
  out.entries.reserve(after.entries.size());
  for (const MetricsSnapshot::Entry& a : after.entries) {
    const MetricsSnapshot::Entry* b = before.Find(a.name, a.labels);
    MetricsSnapshot::Entry e = a;
    if (b != nullptr && b->kind == a.kind) {
      switch (a.kind) {
        case MetricsSnapshot::Kind::kCounter:
          e.value = a.value - b->value;
          break;
        case MetricsSnapshot::Kind::kGauge:
          break;  // gauges are not cumulative; keep the `after` reading
        case MetricsSnapshot::Kind::kHistogram:
          e.count = a.count - b->count;
          e.sum = a.sum - b->sum;
          if (a.buckets.size() == b->buckets.size()) {
            for (std::size_t i = 0; i < e.buckets.size(); ++i) {
              e.buckets[i] = a.buckets[i] - b->buckets[i];
            }
          }
          // Max is not invertible from buckets; the window max is at most
          // the cumulative max, which we keep as the best available bound.
          FillHistogramEntry(e);
          break;
      }
    }
    out.entries.push_back(std::move(e));
  }
  return out;
}

std::string MetricsRegistry::ToCsv(const MetricsSnapshot& snapshot) {
  std::string out =
      "name,labels,kind,value,count,sum,mean,max,p50,p95,p99\n";
  for (const MetricsSnapshot::Entry& e : snapshot.entries) {
    double mean =
        e.count == 0 ? 0.0 : e.sum / static_cast<double>(e.count);
    out += e.name;
    out += ',';
    std::string labels = RenderLabels(e.labels);
    if (labels.find(',') != std::string::npos) {
      out += '"' + labels + '"';
    } else {
      out += labels;
    }
    out += ',';
    out += KindToString(e.kind);
    out += ',';
    out += FormatDouble(e.value);
    out += ',';
    out += std::to_string(e.count);
    out += ',';
    out += FormatDouble(e.sum);
    out += ',';
    out += FormatDouble(mean);
    out += ',';
    out += FormatDouble(e.max);
    out += ',';
    out += FormatDouble(e.p50);
    out += ',';
    out += FormatDouble(e.p95);
    out += ',';
    out += FormatDouble(e.p99);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::ToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  for (std::size_t i = 0; i < snapshot.entries.size(); ++i) {
    const MetricsSnapshot::Entry& e = snapshot.entries[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"" + JsonEscape(e.name) + "\",\"labels\":{";
    for (std::size_t j = 0; j < e.labels.size(); ++j) {
      if (j > 0) out += ',';
      out += "\"" + JsonEscape(e.labels[j].first) + "\":\"" +
             JsonEscape(e.labels[j].second) + "\"";
    }
    out += "},\"kind\":\"";
    out += KindToString(e.kind);
    out += "\"";
    if (e.kind == MetricsSnapshot::Kind::kHistogram) {
      double mean =
          e.count == 0 ? 0.0 : e.sum / static_cast<double>(e.count);
      out += ",\"count\":" + std::to_string(e.count);
      out += ",\"sum\":" + FormatDouble(e.sum);
      out += ",\"mean\":" + FormatDouble(mean);
      out += ",\"max\":" + FormatDouble(e.max);
      out += ",\"p50\":" + FormatDouble(e.p50);
      out += ",\"p95\":" + FormatDouble(e.p95);
      out += ",\"p99\":" + FormatDouble(e.p99);
    } else {
      out += ",\"value\":" + FormatDouble(e.value);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

namespace {

Status WriteStringToFile(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << body;
  out.close();
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

}  // namespace

Status MetricsRegistry::WriteCsv(const std::string& path) const {
  return WriteStringToFile(path, ToCsv());
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  return WriteStringToFile(path, ToJson());
}

}  // namespace p2pdt
