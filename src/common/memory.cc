#include "common/memory.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace p2pdt {

uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // ru_maxrss is bytes on macOS, kilobytes on Linux/BSD.
  return static_cast<uint64_t>(usage.ru_maxrss);
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024u;
#endif
#else
  return 0;
#endif
}

uint64_t CurrentRssBytes() {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size = 0, resident = 0;
  int matched = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (matched != 2) return 0;
  return static_cast<uint64_t>(resident) *
         static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

}  // namespace p2pdt
