#ifndef P2PDT_P2PML_P2P_CLASSIFIER_H_
#define P2PDT_P2PML_P2P_CLASSIFIER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"
#include "ml/multilabel.h"
#include "p2psim/network.h"

namespace p2pdt {

/// Outcome of one asynchronous tag prediction.
struct P2PPrediction {
  /// Predicted tags (sorted). May be empty on total failure.
  std::vector<TagId> tags;
  /// Raw per-tag scores (confidence values surfaced by SuggestTag in the
  /// demo UI, Fig. 3).
  std::vector<double> scores;
  /// False when the request could not be answered (e.g. all super-peers
  /// unreachable under churn).
  bool success = true;
  /// True when the answer came from a degraded path — the reliable
  /// transport exhausted its retries and the peer fell back to its local
  /// model instead of the distributed one. Such answers count as successes
  /// but with reduced expected quality.
  bool degraded = false;
};

/// The pluggable P2P classification component of P2PDocTagger (paper
/// Sec. 2: "the P2P classification algorithm in P2PDocTagger is a pluggable
/// component"). Implementations run *as protocols inside the simulator*:
/// training and prediction exchange real simulated messages, so accuracy
/// and communication cost come from the same run.
///
/// Lifecycle: Setup(per-peer data) → Train(completion callback) → any
/// number of Predict() calls, all driven by Simulator::RunUntil.
class P2PClassifier {
 public:
  virtual ~P2PClassifier() = default;

  /// Installs the per-peer training datasets; peer_data[i] belongs to
  /// underlay node i. Must be called once before Train.
  virtual Status Setup(std::vector<MultiLabelDataset> peer_data,
                       TagId num_tags) = 0;

  /// Starts the distributed training protocol. `on_complete` fires (in
  /// simulated time) when the protocol quiesces.
  virtual void Train(std::function<void(Status)> on_complete) = 0;

  /// Predicts tags for `x` on behalf of peer `requester`; `done` fires in
  /// simulated time.
  virtual void Predict(NodeId requester, const SparseVector& x,
                       std::function<void(P2PPrediction)> done) = 0;

  /// Protocol name for reports ("cempar", "pace", ...).
  virtual std::string name() const = 0;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PML_P2P_CLASSIFIER_H_
