file(REMOVE_RECURSE
  "CMakeFiles/p2pdt_corpus.dir/generator.cc.o"
  "CMakeFiles/p2pdt_corpus.dir/generator.cc.o.d"
  "CMakeFiles/p2pdt_corpus.dir/vectorize.cc.o"
  "CMakeFiles/p2pdt_corpus.dir/vectorize.cc.o.d"
  "libp2pdt_corpus.a"
  "libp2pdt_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pdt_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
