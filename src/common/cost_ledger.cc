#include "common/cost_ledger.h"

#include <memory>
#include <mutex>

namespace p2pdt {

namespace {

/// Owns every thread's block so Collect() can outlive the threads that
/// charged them (pool workers come and go with SetGlobalConcurrency).
/// Blocks are never freed; the count is bounded by the threads a process
/// ever starts.
struct BlockRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<CostCounts>> blocks;
};

BlockRegistry& Registry() {
  static BlockRegistry* registry = new BlockRegistry();  // leaked on purpose
  return *registry;
}

}  // namespace

std::atomic<bool> CostLedger::enabled_{false};

bool CostLedger::SetEnabled(bool on) {
  return enabled_.exchange(on, std::memory_order_relaxed);
}

CostCounts& CostLedger::Tls() {
  thread_local CostCounts* block = [] {
    BlockRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.blocks.push_back(std::make_unique<CostCounts>());
    return registry.blocks.back().get();
  }();
  return *block;
}

CostCounts CostLedger::Collect() {
  CostCounts total;
  BlockRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& block : registry.blocks) total += *block;
  return total;
}

uint64_t CostCounts::total_wire_messages() const {
  uint64_t sum = 0;
  for (uint64_t v : wire_messages_by_type) sum += v;
  return sum;
}

uint64_t CostCounts::total_wire_bytes() const {
  uint64_t sum = 0;
  for (uint64_t v : wire_bytes_by_type) sum += v;
  return sum;
}

CostCounts CostCounts::operator-(const CostCounts& o) const {
  CostCounts out;
#define P2PDT_COST_SUB(name) out.name = name - o.name;
  P2PDT_COST_SCALAR_FIELDS(P2PDT_COST_SUB)
#undef P2PDT_COST_SUB
  for (std::size_t i = 0; i < kNumWireTypes; ++i) {
    out.wire_messages_by_type[i] =
        wire_messages_by_type[i] - o.wire_messages_by_type[i];
    out.wire_bytes_by_type[i] = wire_bytes_by_type[i] - o.wire_bytes_by_type[i];
  }
  return out;
}

CostCounts& CostCounts::operator+=(const CostCounts& o) {
#define P2PDT_COST_ADD(name) name += o.name;
  P2PDT_COST_SCALAR_FIELDS(P2PDT_COST_ADD)
#undef P2PDT_COST_ADD
  for (std::size_t i = 0; i < kNumWireTypes; ++i) {
    wire_messages_by_type[i] += o.wire_messages_by_type[i];
    wire_bytes_by_type[i] += o.wire_bytes_by_type[i];
  }
  return *this;
}

bool CostCounts::operator==(const CostCounts& o) const {
#define P2PDT_COST_EQ(name) \
  if (name != o.name) return false;
  P2PDT_COST_SCALAR_FIELDS(P2PDT_COST_EQ)
#undef P2PDT_COST_EQ
  for (std::size_t i = 0; i < kNumWireTypes; ++i) {
    if (wire_messages_by_type[i] != o.wire_messages_by_type[i]) return false;
    if (wire_bytes_by_type[i] != o.wire_bytes_by_type[i]) return false;
  }
  return true;
}

std::vector<std::pair<const char*, uint64_t>> CostCounts::Scalars() const {
  std::vector<std::pair<const char*, uint64_t>> out;
#define P2PDT_COST_EMIT(name) out.emplace_back(#name, name);
  P2PDT_COST_SCALAR_FIELDS(P2PDT_COST_EMIT)
#undef P2PDT_COST_EMIT
  return out;
}

std::string CostCounts::ToString() const {
  std::string out;
  for (const auto& [name, value] : Scalars()) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  }
  for (std::size_t i = 0; i < kNumWireTypes; ++i) {
    if (wire_messages_by_type[i] == 0 && wire_bytes_by_type[i] == 0) continue;
    out += "wire[" + std::to_string(i) +
           "]=" + std::to_string(wire_messages_by_type[i]) + "msg/" +
           std::to_string(wire_bytes_by_type[i]) + "B\n";
  }
  return out;
}

}  // namespace p2pdt
