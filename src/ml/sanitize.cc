#include "ml/sanitize.h"

#include <cmath>
#include <string>

namespace p2pdt {

const char* ModelRejectReasonToString(ModelRejectReason reason) {
  switch (reason) {
    case ModelRejectReason::kNone:
      return "none";
    case ModelRejectReason::kNonFinite:
      return "non_finite";
    case ModelRejectReason::kNormBound:
      return "norm_bound";
    case ModelRejectReason::kDimension:
      return "dimension";
    case ModelRejectReason::kTagMismatch:
      return "tag_mismatch";
    case ModelRejectReason::kOversized:
      return "oversized";
    case ModelRejectReason::kDistrusted:
      return "distrusted";
  }
  return "unknown";
}

namespace {

// Non-finite dominates magnitude: NaN compares false against any bound, so
// test finiteness first.
ModelRejectReason CheckScalar(double v, const SanitizeOptions& opts) {
  if (!std::isfinite(v)) return ModelRejectReason::kNonFinite;
  if (std::fabs(v) > opts.max_abs_value) return ModelRejectReason::kNormBound;
  return ModelRejectReason::kNone;
}

}  // namespace

ModelRejectReason SanitizeVector(const SparseVector& v,
                                 const SanitizeOptions& opts) {
  double sq = 0.0;
  for (const auto& [id, w] : v.entries()) {
    if (id >= opts.max_dimension) return ModelRejectReason::kDimension;
    ModelRejectReason r = CheckScalar(w, opts);
    if (r != ModelRejectReason::kNone) return r;
    sq += w * w;
  }
  if (!std::isfinite(sq)) return ModelRejectReason::kNonFinite;
  if (sq > opts.max_norm * opts.max_norm) return ModelRejectReason::kNormBound;
  return ModelRejectReason::kNone;
}

ModelRejectReason SanitizeLinear(const LinearSvmModel& model,
                                 const SanitizeOptions& opts) {
  ModelRejectReason r = SanitizeVector(model.weights(), opts);
  if (r != ModelRejectReason::kNone) return r;
  return CheckScalar(model.bias(), opts);
}

ModelRejectReason SanitizeKernelModel(const KernelSvmModel& model,
                                      const SanitizeOptions& opts) {
  if (model.num_support_vectors() > opts.max_support_vectors) {
    return ModelRejectReason::kOversized;
  }
  for (const SupportVector& sv : model.support_vectors()) {
    ModelRejectReason r = SanitizeVector(sv.x, opts);
    if (r != ModelRejectReason::kNone) return r;
    r = CheckScalar(sv.y, opts);
    if (r != ModelRejectReason::kNone) return r;
    r = CheckScalar(sv.alpha, opts);
    if (r != ModelRejectReason::kNone) return r;
  }
  return CheckScalar(model.bias(), opts);
}

ModelRejectReason SanitizeOneVsAll(const OneVsAllModel& model,
                                   TagId expected_tags,
                                   const SanitizeOptions& opts) {
  if (expected_tags > 0 && model.num_tags() != expected_tags) {
    return ModelRejectReason::kTagMismatch;
  }
  for (TagId t = 0; t < model.num_tags(); ++t) {
    const BinaryClassifier* m = model.model(t);
    if (m == nullptr) continue;
    ModelRejectReason r = ModelRejectReason::kNone;
    if (auto* lin = dynamic_cast<const LinearSvmModel*>(m)) {
      r = SanitizeLinear(*lin, opts);
    } else if (auto* ker = dynamic_cast<const KernelSvmModel*>(m)) {
      r = SanitizeKernelModel(*ker, opts);
    } else if (auto* c = dynamic_cast<const ConstantClassifier*>(m)) {
      r = CheckScalar(c->value(), opts);
    }
    if (r != ModelRejectReason::kNone) return r;
  }
  return ModelRejectReason::kNone;
}

ModelRejectReason SanitizeCentroids(const std::vector<SparseVector>& centroids,
                                    const SanitizeOptions& opts) {
  if (centroids.size() > opts.max_centroids) {
    return ModelRejectReason::kOversized;
  }
  for (const SparseVector& c : centroids) {
    ModelRejectReason r = SanitizeVector(c, opts);
    if (r != ModelRejectReason::kNone) return r;
  }
  return ModelRejectReason::kNone;
}

double ClampAccuracy(double accuracy) {
  if (std::isnan(accuracy)) return 0.0;
  if (accuracy < 0.0) return 0.0;
  if (accuracy > 1.0) return 1.0;
  return accuracy;
}

Status RejectedModelStatus(ModelRejectReason reason) {
  return Status::RejectedModel(std::string("model failed sanitation: ") +
                               ModelRejectReasonToString(reason));
}

}  // namespace p2pdt
