#ifndef P2PDT_P2PDMT_LOADGEN_H_
#define P2PDT_P2PDMT_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "ml/dataset.h"
#include "p2pml/p2p_classifier.h"
#include "p2psim/simulator.h"

namespace p2pdt {

/// The shared per-request tagging-latency histogram family. bench_latency
/// and the overload SLO harness both observe into (and quote percentiles
/// from) this exact path, so LAT and OVER1 rows are directly comparable.
Histogram& TaggingLatencyHistogram(MetricsRegistry& metrics,
                                   const std::string& classifier);

/// A scripted arrival-rate spike concentrated on a hot document region —
/// the flash crowd. While active, the offered rate is multiplied by
/// `rate_multiplier` and `hot_fraction` of requests target a Zipf draw over
/// the `hot_docs` most popular documents instead of the full catalog.
struct FlashCrowdBurst {
  double start = 0.0;     // sim seconds after the replay starts
  double duration = 0.0;  // sim seconds
  double rate_multiplier = 1.0;
  double hot_fraction = 0.8;
  std::size_t hot_docs = 8;
};

struct LoadGenOptions {
  bool enabled = false;
  /// Concurrent user sessions replayed.
  std::size_t sessions = 64;
  /// Documents tagged per session, drawn uniformly from [min, max] per
  /// session (paper-scale: a user tags 50-200 docs).
  std::size_t min_docs = 50;
  std::size_t max_docs = 200;
  /// Closed loop: each session waits for the previous answer plus a think
  /// time before issuing the next request. Open loop (default): requests
  /// arrive on a Poisson schedule regardless of completions — the mode that
  /// actually overloads a server.
  bool closed_loop = false;
  double think_time = 0.05;
  /// Aggregate offered request rate across all sessions (requests per sim
  /// second), split evenly between sessions; bursts multiply it.
  double arrival_rate = 50.0;
  /// Zipf exponent of document popularity (Golder & Huberman's tag law).
  double zipf_s = 1.1;
  std::vector<FlashCrowdBurst> bursts;
  /// Per-request latency SLO (sim seconds): answers beyond it do not count
  /// toward goodput.
  double slo_latency = 1.0;
  /// Client retries after a typed overload reject (with backoff).
  std::size_t max_retries = 1;
  double retry_backoff = 0.5;
  uint64_t seed = 0xF1A5;
};

/// Aggregate outcome of one load-generation run.
struct LoadGenResult {
  uint64_t offered = 0;    // requests issued (excluding retries)
  uint64_t completed = 0;  // requests that got a final answer
  uint64_t ok = 0;         // full-quality successes
  uint64_t cached = 0;     // answered from the prediction cache
  uint64_t degraded = 0;   // degraded local-model fallback answers
  uint64_t failed = 0;     // no answer (give-up / unreachable)
  uint64_t shed = 0;       // typed overload rejects observed (pre-retry)
  uint64_t retries = 0;    // retries issued after overload rejects
  uint64_t within_slo = 0; // successes inside the latency SLO
  double p50_latency = 0.0;
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  double max_latency = 0.0;
  /// Sim-time span from first issue to last completion.
  double makespan = 0.0;
  /// Successful answers within SLO per sim second of makespan — the
  /// headline "goodput within SLO" the defended arm must sustain.
  double goodput_within_slo = 0.0;
  /// Order-independent digest over (tags, scores, outcome, latency) of
  /// every completed request — the determinism witness.
  uint64_t fingerprint = 0;
};

// ---------------------------------------------------------------------------
// Schedule primitives. Every random choice is keyed by
// DeriveSeed(seed, session, request), so the schedule is a pure function of
// the options — the in-sim SessionLoadGenerator and the real-socket
// SocketLoadGenerator draw the *same* sessions, arrivals, documents and
// retry jitter from these, which is what makes service-mode results
// comparable to OVER1 rows.

/// Per-session request counts: UniformInt[min_docs, max_docs] keyed by
/// DeriveSeed(seed, session).
std::vector<std::size_t> LoadGenSessionLengths(const LoadGenOptions& options);

/// Burst rate multiplier in effect `t` seconds after replay start.
double LoadGenBurstMultiplier(const LoadGenOptions& options, double t);

/// Burst active at `t` (redirects a fraction of picks to the hot set), or
/// nullptr.
const FlashCrowdBurst* LoadGenActiveBurst(const LoadGenOptions& options,
                                          double t);

/// Document index (into a popularity-ordered catalog of `catalog_size`)
/// for request (session, idx) issued `t` seconds into the replay.
std::size_t LoadGenPickDoc(const LoadGenOptions& options,
                           std::size_t catalog_size, std::size_t session,
                           std::size_t idx, double t);

/// The whole open-loop Poisson arrival schedule for one session: offset (in
/// seconds after replay start) of each of its `session_len` requests. The
/// gap before request i shrinks by the burst multiplier in effect at the
/// previous arrival.
std::vector<double> LoadGenOpenLoopOffsets(const LoadGenOptions& options,
                                           std::size_t session,
                                           std::size_t session_len);

/// Jittered client backoff after the attempt-th overload reject of
/// (session, idx).
double LoadGenRetryDelay(const LoadGenOptions& options, std::size_t session,
                         std::size_t idx, std::size_t attempt);

/// Replays user tagging sessions against a trained classifier inside the
/// simulator. Deterministic: every random choice (session length, arrival
/// gap, document pick, retry jitter) draws from the schedule primitives
/// above, so two runs with the same options produce bit-identical request
/// schedules and fingerprints at any thread or shard count.
class SessionLoadGenerator {
 public:
  /// `docs` is the request catalog in popularity order (index 0 = most
  /// popular); `requesters` are the peers sessions issue from (session s
  /// uses requesters[s % size]). Both must outlive Run's completion.
  SessionLoadGenerator(Simulator& sim, P2PClassifier& algo,
                       LoadGenOptions options,
                       std::vector<const SparseVector*> docs,
                       std::vector<NodeId> requesters,
                       MetricsRegistry& metrics);

  /// Schedules every session and fires `on_complete` (in sim time) when
  /// all requests have completed. Call once.
  void Run(std::function<void(const LoadGenResult&)> on_complete);

 private:
  /// Burst rate multiplier in effect `t` seconds after the replay started.
  double BurstMultiplier(double t) const;
  /// Burst active `t` seconds into the replay (redirects to the hot set).
  const FlashCrowdBurst* ActiveBurst(double t) const;
  /// Document index for request (session, idx) issued `t` seconds into the
  /// replay.
  std::size_t PickDoc(std::size_t session, std::size_t idx, double t) const;
  /// `issued_at` is the absolute sim time the request FIRST issued at; it is
  /// ignored (re-stamped from the clock) when attempt == 0.
  void IssueRequest(std::size_t session, std::size_t idx, double issued_at,
                    std::size_t attempt);
  void OnOutcome(std::size_t session, std::size_t idx, double first_issued,
                 std::size_t attempt, P2PPrediction p);
  void FinishIfDone();

  Simulator& sim_;
  P2PClassifier& algo_;
  LoadGenOptions options_;
  std::vector<const SparseVector*> docs_;
  std::vector<NodeId> requesters_;
  Histogram& latency_hist_;
  std::vector<std::size_t> session_len_;
  std::size_t outstanding_ = 0;
  bool all_scheduled_ = false;
  /// Sim time Run() was called; schedule offsets and burst windows are
  /// relative to it.
  double start_ = 0.0;
  double first_issue_ = 0.0;
  double last_complete_ = 0.0;
  LoadGenResult result_;
  std::function<void(const LoadGenResult&)> on_complete_;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_LOADGEN_H_
