
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p2pdmt/activity_log.cc" "src/p2pdmt/CMakeFiles/p2pdt_p2pdmt.dir/activity_log.cc.o" "gcc" "src/p2pdmt/CMakeFiles/p2pdt_p2pdmt.dir/activity_log.cc.o.d"
  "/root/repo/src/p2pdmt/data_distribution.cc" "src/p2pdmt/CMakeFiles/p2pdt_p2pdmt.dir/data_distribution.cc.o" "gcc" "src/p2pdmt/CMakeFiles/p2pdt_p2pdmt.dir/data_distribution.cc.o.d"
  "/root/repo/src/p2pdmt/environment.cc" "src/p2pdmt/CMakeFiles/p2pdt_p2pdmt.dir/environment.cc.o" "gcc" "src/p2pdmt/CMakeFiles/p2pdt_p2pdmt.dir/environment.cc.o.d"
  "/root/repo/src/p2pdmt/evaluation.cc" "src/p2pdmt/CMakeFiles/p2pdt_p2pdmt.dir/evaluation.cc.o" "gcc" "src/p2pdmt/CMakeFiles/p2pdt_p2pdmt.dir/evaluation.cc.o.d"
  "/root/repo/src/p2pdmt/experiment.cc" "src/p2pdmt/CMakeFiles/p2pdt_p2pdmt.dir/experiment.cc.o" "gcc" "src/p2pdmt/CMakeFiles/p2pdt_p2pdmt.dir/experiment.cc.o.d"
  "/root/repo/src/p2pdmt/sim_scorer.cc" "src/p2pdmt/CMakeFiles/p2pdt_p2pdmt.dir/sim_scorer.cc.o" "gcc" "src/p2pdmt/CMakeFiles/p2pdt_p2pdmt.dir/sim_scorer.cc.o.d"
  "/root/repo/src/p2pdmt/visualize.cc" "src/p2pdmt/CMakeFiles/p2pdt_p2pdmt.dir/visualize.cc.o" "gcc" "src/p2pdmt/CMakeFiles/p2pdt_p2pdmt.dir/visualize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2pdt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/p2pdt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/p2psim/CMakeFiles/p2pdt_p2psim.dir/DependInfo.cmake"
  "/root/repo/build/src/p2pml/CMakeFiles/p2pdt_p2pml.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/p2pdt_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p2pdt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/p2pdt_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
