#include "p2pml/reputation.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace p2pdt {

ReputationManager::ReputationManager(const ReputationOptions& options,
                                     MetricsRegistry* metrics,
                                     std::string classifier)
    : options_(options), metrics_(metrics), classifier_(std::move(classifier)) {}

void ReputationManager::Reset(std::size_t num_peers) {
  pairs_.assign(num_peers, std::vector<PairState>(num_peers));
  holdouts_.assign(num_peers, Holdout{});
  current_quarantined_ = 0;
  total_quarantines_ = 0;
  total_readmissions_ = 0;
  observations_ = 0;
}

template <typename Data>
void ReputationManager::SetHoldoutImpl(NodeId observer, const Data& local) {
  if (observer >= holdouts_.size()) return;
  Holdout& h = holdouts_[observer];
  h.examples.clear();
  h.positives.assign(local.num_tags(), 0);
  if (local.empty()) return;
  std::size_t want = std::min(options_.holdout_size, local.size());
  // Seeded from plan identity only, so the slice — and therefore every
  // trust score — is identical across serial and parallel runs and across
  // repeated calls.
  Rng rng(DeriveSeed(options_.seed, static_cast<uint64_t>(observer)));
  std::vector<std::size_t> picks =
      rng.SampleWithoutReplacement(local.size(), want);
  std::sort(picks.begin(), picks.end());
  for (std::size_t i : picks) {
    const MultiLabelExample& ex = local[i];
    for (TagId t : ex.tags) {
      if (t < h.positives.size()) ++h.positives[t];
    }
    h.examples.push_back(ex);
  }
}

void ReputationManager::SetHoldout(NodeId observer,
                                   const MultiLabelDataset& local) {
  SetHoldoutImpl(observer, local);
}

void ReputationManager::SetHoldout(NodeId observer,
                                   const DatasetShard& local) {
  SetHoldoutImpl(observer, local);
}

bool ReputationManager::HasHoldout(NodeId observer) const {
  return observer < holdouts_.size() && !holdouts_[observer].examples.empty();
}

double ReputationManager::BalancedAccuracy(const Holdout& holdout,
                                           const BinaryClassifier& model,
                                           TagId tag) const {
  std::size_t pos = tag < holdout.positives.size() ? holdout.positives[tag] : 0;
  std::size_t neg = holdout.examples.size() - pos;
  if (pos == 0 || neg == 0) return -1.0;
  std::size_t tp = 0;
  std::size_t tn = 0;
  for (const MultiLabelExample& ex : holdout.examples) {
    // NaN decisions compare false, i.e. count as a negative prediction —
    // garbage models settle at 0.5, well above quarantine (sanitation, not
    // reputation, is the layer that removes them).
    bool predicted = model.Decision(ex.x) > 0.0;
    if (ex.HasTag(tag)) {
      if (predicted) ++tp;
    } else {
      if (!predicted) ++tn;
    }
  }
  double tpr = static_cast<double>(tp) / static_cast<double>(pos);
  double tnr = static_cast<double>(tn) / static_cast<double>(neg);
  return 0.5 * (tpr + tnr);
}

double ReputationManager::ScoreOneVsAll(NodeId observer,
                                        const OneVsAllModel& model,
                                        const std::vector<bool>* informed) const {
  if (!HasHoldout(observer)) return -1.0;
  const Holdout& h = holdouts_[observer];
  double sum = 0.0;
  std::size_t n = 0;
  for (TagId t = 0; t < model.num_tags(); ++t) {
    if (informed != nullptr && (t >= informed->size() || !(*informed)[t])) {
      continue;
    }
    const BinaryClassifier* m = model.model(t);
    if (m == nullptr) continue;
    double bal = BalancedAccuracy(h, *m, t);
    if (bal < 0.0) continue;
    sum += bal;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : -1.0;
}

double ReputationManager::ScoreBinary(NodeId observer,
                                      const BinaryClassifier& model,
                                      TagId tag) const {
  if (!HasHoldout(observer)) return -1.0;
  return BalancedAccuracy(holdouts_[observer], model, tag);
}

bool ReputationManager::Observe(NodeId observer, NodeId contributor,
                                double score) {
  if (observer >= pairs_.size() || contributor >= pairs_[observer].size()) {
    return false;
  }
  if (score < 0.0) return false;
  PairState& p = pairs_[observer][contributor];
  if (!p.seen) {
    p.trust = score;
    p.seen = true;
  } else {
    p.trust = (1.0 - options_.ewma_alpha) * p.trust +
              options_.ewma_alpha * score;
  }
  ++observations_;
  if (metrics_ != nullptr) {
    metrics_->GetHistogram("peer_trust", {{"classifier", classifier_}})
        .Observe(p.trust);
  }
  bool entered_quarantine = false;
  if (!p.quarantined && p.trust < options_.quarantine_threshold) {
    p.quarantined = true;
    ++current_quarantined_;
    ++total_quarantines_;
    entered_quarantine = true;
  } else if (p.quarantined && p.trust >= options_.readmit_threshold) {
    p.quarantined = false;
    --current_quarantined_;
    ++total_readmissions_;
  }
  if (metrics_ != nullptr) {
    metrics_->GetGauge("quarantined_peers", {{"classifier", classifier_}})
        .Set(static_cast<double>(current_quarantined_));
  }
  return entered_quarantine;
}

double ReputationManager::Trust(NodeId observer, NodeId contributor) const {
  if (observer >= pairs_.size() || contributor >= pairs_[observer].size()) {
    return 1.0;
  }
  const PairState& p = pairs_[observer][contributor];
  return p.seen ? p.trust : 1.0;
}

bool ReputationManager::IsQuarantined(NodeId observer,
                                      NodeId contributor) const {
  if (observer >= pairs_.size() || contributor >= pairs_[observer].size()) {
    return false;
  }
  return pairs_[observer][contributor].quarantined;
}

bool ReputationManager::IsSuspect(NodeId observer, NodeId contributor) const {
  if (observer >= pairs_.size() || contributor >= pairs_[observer].size()) {
    return false;
  }
  const PairState& p = pairs_[observer][contributor];
  return p.seen && !p.quarantined && p.trust < options_.suspect_threshold;
}

}  // namespace p2pdt
