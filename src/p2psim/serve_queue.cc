#include "p2psim/serve_queue.h"

#include <algorithm>
#include <cmath>

namespace p2pdt {

const char* AdmitOutcomeToString(AdmitOutcome outcome) {
  switch (outcome) {
    case AdmitOutcome::kAccept:
      return "accept";
    case AdmitOutcome::kShedQueueFull:
      return "queue_full";
    case AdmitOutcome::kShedWait:
      return "wait_exceeded";
  }
  return "unknown";
}

namespace {

/// Requests represented by `backlog` seconds of work at `rate`. The epsilon
/// keeps an exact multiple of the service interval from rounding up (0.3s
/// of backlog at 10/s is 3 requests, not ceil(3.0000000000000004) = 4).
std::size_t BacklogDepth(double backlog, double rate) {
  if (backlog <= 0.0) return 0;
  return static_cast<std::size_t>(std::ceil(backlog * rate - 1e-9));
}

}  // namespace

ServeQueueSet::ServeQueueSet(ServeOptions options) : options_(options) {}

std::size_t ServeQueueSet::Depth(NodeId node, SimTime now) const {
  if (!options_.enabled || node >= busy_until_.size()) return 0;
  return BacklogDepth(busy_until_[node] - now, options_.service_rate);
}

Admission ServeQueueSet::Admit(NodeId node, SimTime now) {
  Admission a;
  if (!options_.enabled) return a;
  if (node >= busy_until_.size()) busy_until_.resize(node + 1, 0.0);
  const double backlog = std::max(0.0, busy_until_[node] - now);
  a.depth = BacklogDepth(backlog, options_.service_rate);
  if (options_.admission_control) {
    if (a.depth >= options_.max_depth) {
      a.outcome = AdmitOutcome::kShedQueueFull;
      a.retry_after = options_.retry_after;
      ++shed_full_;
      return a;
    }
    if (backlog > options_.max_wait) {
      a.outcome = AdmitOutcome::kShedWait;
      a.retry_after = options_.retry_after;
      ++shed_wait_;
      return a;
    }
  }
  const double service = 1.0 / options_.service_rate;
  busy_until_[node] = std::max(busy_until_[node], now) + service;
  a.delay = busy_until_[node] - now;
  ++accepted_;
  max_depth_seen_ = std::max(max_depth_seen_, a.depth + 1);
  return a;
}

}  // namespace p2pdt
