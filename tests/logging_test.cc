#include "common/logging.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = Logger::Instance().level(); }
  void TearDown() override { Logger::Instance().set_level(saved_level_); }
  LogLevel saved_level_;
};

TEST_F(LoggingTest, CaptureCollectsMessages) {
  Logger::Instance().set_level(LogLevel::kInfo);
  Logger::Instance().BeginCapture();
  P2PDT_LOG(Info) << "hello " << 42;
  std::string captured = Logger::Instance().EndCapture();
  EXPECT_NE(captured.find("hello 42"), std::string::npos);
  EXPECT_NE(captured.find("[I "), std::string::npos);
}

TEST_F(LoggingTest, BelowThresholdIsSuppressed) {
  Logger::Instance().set_level(LogLevel::kError);
  Logger::Instance().BeginCapture();
  P2PDT_LOG(Warning) << "should not appear";
  P2PDT_LOG(Error) << "should appear";
  std::string captured = Logger::Instance().EndCapture();
  EXPECT_EQ(captured.find("should not appear"), std::string::npos);
  EXPECT_NE(captured.find("should appear"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::Instance().set_level(LogLevel::kOff);
  Logger::Instance().BeginCapture();
  P2PDT_LOG(Error) << "nope";
  EXPECT_TRUE(Logger::Instance().EndCapture().empty());
}

TEST_F(LoggingTest, MessageIncludesBasenameOnly) {
  Logger::Instance().set_level(LogLevel::kDebug);
  Logger::Instance().BeginCapture();
  P2PDT_LOG(Debug) << "x";
  std::string captured = Logger::Instance().EndCapture();
  EXPECT_NE(captured.find("logging_test.cc"), std::string::npos);
  EXPECT_EQ(captured.find("/"), std::string::npos);
}

}  // namespace
}  // namespace p2pdt
