#include "common/checkpoint.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/p2pdt_ckpt_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string FileFor(const std::string& key) const {
    return dir_ + "/" + key + ".ckpt";
  }
  std::string ReadRaw(const std::string& key) const {
    std::ifstream f(FileFor(key), std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
  }
  void WriteRaw(const std::string& key, const std::string& bytes) const {
    std::ofstream f(FileFor(key), std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
};

TEST_F(CheckpointTest, RoundTrip) {
  CheckpointManager mgr(dir_);
  std::string payload = "hello\0world", key = "peer-1";
  payload.push_back('\xff');
  ASSERT_TRUE(mgr.Write(key, payload).ok());
  Result<std::string> back = mgr.Read(key);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
  EXPECT_TRUE(mgr.Contains(key));
  EXPECT_EQ(mgr.stats().writes, 1u);
  EXPECT_EQ(mgr.stats().reads, 1u);
  EXPECT_EQ(mgr.stats().corrupt_reads, 0u);
}

TEST_F(CheckpointTest, MissingKeyIsNotFound) {
  CheckpointManager mgr(dir_);
  EXPECT_EQ(mgr.Read("absent").status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, InvalidKeyRejected) {
  CheckpointManager mgr(dir_);
  EXPECT_EQ(mgr.Write("../escape", "x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mgr.Write("", "x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mgr.Write("a/b", "x").code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, WriteReplacesAtomically) {
  CheckpointManager mgr(dir_);
  ASSERT_TRUE(mgr.Write("k", "old-state").ok());
  ASSERT_TRUE(mgr.Write("k", "new-state").ok());
  Result<std::string> back = mgr.Read("k");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "new-state");
  // No temp sibling survives a completed write.
  EXPECT_FALSE(fs::exists(FileFor("k") + ".tmp"));
}

TEST_F(CheckpointTest, TruncatedFileIsDataLoss) {
  CheckpointManager mgr(dir_);
  ASSERT_TRUE(mgr.Write("k", "some payload bytes").ok());
  std::string raw = ReadRaw("k");
  // A torn write: only the first half of the file made it to disk.
  WriteRaw("k", raw.substr(0, raw.size() / 2));
  EXPECT_EQ(mgr.Read("k").status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(mgr.stats().corrupt_reads, 1u);
}

TEST_F(CheckpointTest, TruncatedBelowHeaderIsDataLoss) {
  CheckpointManager mgr(dir_);
  ASSERT_TRUE(mgr.Write("k", "payload").ok());
  WriteRaw("k", ReadRaw("k").substr(0, 5));
  EXPECT_EQ(mgr.Read("k").status().code(), StatusCode::kDataLoss);
}

TEST_F(CheckpointTest, FlippedPayloadByteIsDataLoss) {
  CheckpointManager mgr(dir_);
  ASSERT_TRUE(mgr.Write("k", "model weights go here").ok());
  std::string raw = ReadRaw("k");
  raw[raw.size() - 3] ^= 0x20;  // silent disk corruption in the payload
  WriteRaw("k", raw);
  EXPECT_EQ(mgr.Read("k").status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(mgr.stats().corrupt_reads, 1u);
}

TEST_F(CheckpointTest, WrongVersionIsDataLoss) {
  CheckpointManager mgr(dir_);
  ASSERT_TRUE(mgr.Write("k", "payload").ok());
  std::string raw = ReadRaw("k");
  raw[4] = 0x7F;  // version field (LE u16 at offset 4)
  WriteRaw("k", raw);
  EXPECT_EQ(mgr.Read("k").status().code(), StatusCode::kDataLoss);
}

TEST_F(CheckpointTest, WrongMagicIsDataLoss) {
  CheckpointManager mgr(dir_);
  ASSERT_TRUE(mgr.Write("k", "payload").ok());
  std::string raw = ReadRaw("k");
  raw[0] = 'X';
  WriteRaw("k", raw);
  EXPECT_EQ(mgr.Read("k").status().code(), StatusCode::kDataLoss);
}

TEST_F(CheckpointTest, CorruptionDoesNotAffectOtherKeys) {
  CheckpointManager mgr(dir_);
  ASSERT_TRUE(mgr.Write("good", "good payload").ok());
  ASSERT_TRUE(mgr.Write("bad", "bad payload").ok());
  std::string raw = ReadRaw("bad");
  raw.back() ^= 0x01;
  WriteRaw("bad", raw);
  EXPECT_EQ(mgr.Read("bad").status().code(), StatusCode::kDataLoss);
  Result<std::string> good = mgr.Read("good");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, "good payload");
}

TEST_F(CheckpointTest, SurvivesReopen) {
  {
    CheckpointManager mgr(dir_);
    ASSERT_TRUE(mgr.Write("a", "alpha").ok());
    ASSERT_TRUE(mgr.Write("b", "beta").ok());
  }
  CheckpointManager fresh(dir_);
  EXPECT_EQ(fresh.Keys(), (std::vector<std::string>{"a", "b"}));
  Result<std::string> a = fresh.Read("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, "alpha");
}

TEST_F(CheckpointTest, TornManifestIsRebuiltFromScan) {
  {
    CheckpointManager mgr(dir_);
    ASSERT_TRUE(mgr.Write("a", "alpha").ok());
    ASSERT_TRUE(mgr.Write("b", "beta").ok());
  }
  {
    // Crash mid-manifest-write with a non-atomic writer: garbage content.
    std::ofstream f(dir_ + "/MANIFEST", std::ios::trunc);
    f << "p2pdt-checkpoint-manifest v1\na\t12";  // torn entry, no newline
  }
  CheckpointManager fresh(dir_);
  EXPECT_EQ(fresh.Keys(), (std::vector<std::string>{"a", "b"}));
  Result<std::string> b = fresh.Read("b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, "beta");
}

TEST_F(CheckpointTest, MissingManifestIsRebuiltFromScan) {
  {
    CheckpointManager mgr(dir_);
    ASSERT_TRUE(mgr.Write("only", "payload").ok());
  }
  fs::remove(dir_ + "/MANIFEST");
  CheckpointManager fresh(dir_);
  EXPECT_TRUE(fresh.Contains("only"));
  EXPECT_EQ(*fresh.Read("only"), "payload");
}

TEST_F(CheckpointTest, RemoveDeletesFileAndManifestEntry) {
  CheckpointManager mgr(dir_);
  ASSERT_TRUE(mgr.Write("k", "payload").ok());
  ASSERT_TRUE(mgr.Remove("k").ok());
  EXPECT_FALSE(mgr.Contains("k"));
  EXPECT_FALSE(fs::exists(FileFor("k")));
  EXPECT_EQ(mgr.Read("k").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(mgr.Remove("k").ok());  // idempotent
}

TEST_F(CheckpointTest, EmptyPayloadRoundTrips) {
  CheckpointManager mgr(dir_);
  ASSERT_TRUE(mgr.Write("empty", "").ok());
  Result<std::string> back = mgr.Read("empty");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

}  // namespace
}  // namespace p2pdt
