#include "text/vectorizer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

std::vector<std::string> Tokens(std::initializer_list<const char*> words) {
  return std::vector<std::string>(words.begin(), words.end());
}

TEST(VectorizerTest, TermFrequencyCounts) {
  VectorizerOptions opt;
  opt.l2_normalize = false;
  Vectorizer v(opt);
  Lexicon lex;
  SparseVector vec = v.Vectorize(Tokens({"cat", "dog", "cat"}), lex);
  EXPECT_DOUBLE_EQ(vec.Get(lex.GetId("cat").value()), 2.0);
  EXPECT_DOUBLE_EQ(vec.Get(lex.GetId("dog").value()), 1.0);
  EXPECT_EQ(vec.nnz(), 2u);
}

TEST(VectorizerTest, L2NormalizedByDefault) {
  Vectorizer v;
  Lexicon lex;
  SparseVector vec = v.Vectorize(Tokens({"a1", "b2", "c3"}), lex);
  EXPECT_NEAR(vec.Norm(), 1.0, 1e-12);
}

TEST(VectorizerTest, BinaryWeighting) {
  VectorizerOptions opt;
  opt.weighting = TermWeighting::kBinary;
  opt.l2_normalize = false;
  Vectorizer v(opt);
  Lexicon lex;
  SparseVector vec = v.Vectorize(Tokens({"x", "x", "x", "y"}), lex);
  EXPECT_DOUBLE_EQ(vec.Get(lex.GetId("x").value()), 1.0);
  EXPECT_DOUBLE_EQ(vec.Get(lex.GetId("y").value()), 1.0);
}

TEST(VectorizerTest, LogTermFrequency) {
  VectorizerOptions opt;
  opt.weighting = TermWeighting::kLogTermFrequency;
  opt.l2_normalize = false;
  Vectorizer v(opt);
  Lexicon lex;
  SparseVector vec = v.Vectorize(Tokens({"x", "x", "x"}), lex);
  EXPECT_NEAR(vec.Get(lex.GetId("x").value()), 1.0 + std::log(3.0), 1e-12);
}

TEST(VectorizerTest, TfIdfDownweightsCommonWords) {
  VectorizerOptions opt;
  opt.weighting = TermWeighting::kTfIdf;
  opt.l2_normalize = false;
  Vectorizer v(opt);
  Lexicon lex;
  // "common" appears in every document, "rare" in one.
  v.FitIdf({Tokens({"common", "rare"}), Tokens({"common"}),
            Tokens({"common"})},
           lex);
  EXPECT_EQ(v.num_fitted_documents(), 3u);
  SparseVector vec = v.Vectorize(Tokens({"common", "rare"}), lex);
  EXPECT_GT(vec.Get(lex.GetId("rare").value()),
            vec.Get(lex.GetId("common").value()));
}

TEST(VectorizerTest, ConstModeDropsUnknownWords) {
  VectorizerOptions opt;
  opt.l2_normalize = false;
  Vectorizer v(opt);
  Lexicon lex;
  lex.GetOrAddId("known");
  SparseVector vec = v.VectorizeConst(Tokens({"known", "unknown"}), lex);
  EXPECT_EQ(vec.nnz(), 1u);
  EXPECT_EQ(lex.size(), 1u);  // not mutated
}

TEST(VectorizerTest, ConstModeHashedResolvesEverything) {
  VectorizerOptions opt;
  opt.l2_normalize = false;
  Vectorizer v(opt);
  Lexicon lex = Lexicon::Hashed(1 << 12);
  SparseVector vec = v.VectorizeConst(Tokens({"anything", "goes"}), lex);
  EXPECT_EQ(vec.nnz(), 2u);
}

TEST(VectorizerTest, EmptyTokensGiveEmptyVector) {
  Vectorizer v;
  Lexicon lex;
  EXPECT_TRUE(v.Vectorize({}, lex).empty());
}

TEST(VectorizerTest, HashedLexiconCollisionsSumWeights) {
  // With dimension 1 every word collides; weights must sum, not overwrite.
  VectorizerOptions opt;
  opt.l2_normalize = false;
  Vectorizer v(opt);
  Lexicon lex = Lexicon::Hashed(1);
  SparseVector vec = v.Vectorize(Tokens({"a", "b", "c"}), lex);
  EXPECT_EQ(vec.nnz(), 1u);
  EXPECT_DOUBLE_EQ(vec.Get(0), 3.0);
}

}  // namespace
}  // namespace p2pdt
