#include "ml/lsh.h"

#include "common/cost_ledger.h"
#include "common/profile.h"

namespace p2pdt {

namespace {

// Stateless 64-bit mix (SplitMix64 finalizer) for deriving projection
// components.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

CosineLsh::CosineLsh(LshOptions options)
    : options_(options), tables_(options.num_tables) {}

double CosineLsh::ProjectionComponent(std::size_t table, std::size_t bit,
                                      uint32_t feature) const {
  uint64_t h = Mix(options_.seed ^ Mix((static_cast<uint64_t>(table) << 40) ^
                                       (static_cast<uint64_t>(bit) << 20) ^
                                       feature));
  return (h & 1) ? 1.0 : -1.0;
}

uint64_t CosineLsh::Signature(std::size_t table, const SparseVector& v) const {
  uint64_t sig = 0;
  for (std::size_t bit = 0; bit < options_.num_bits; ++bit) {
    double dot = 0.0;
    for (const auto& [id, w] : v.entries()) {
      dot += w * ProjectionComponent(table, bit, id);
    }
    if (dot >= 0.0) sig |= (uint64_t{1} << bit);
  }
  if (CostLedger::enabled()) {
    CostLedger::Tls().lsh_signature_dots += options_.num_bits;
  }
  return sig;
}

void CosineLsh::Insert(std::size_t id, const SparseVector& v) {
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    tables_[t][Signature(t, v)].push_back(id);
  }
  ++num_items_;
}

void CosineLsh::Collect(std::size_t table, uint64_t sig,
                        std::unordered_map<std::size_t, bool>& out) const {
  if (CostLedger::enabled()) ++CostLedger::Tls().lsh_probes;
  auto it = tables_[table].find(sig);
  if (it == tables_[table].end()) return;
  for (std::size_t id : it->second) out[id] = true;
  if (CostLedger::enabled()) {
    CostLedger::Tls().lsh_candidates += it->second.size();
  }
}

std::vector<std::size_t> CosineLsh::Query(const SparseVector& v) const {
  PhaseScope profile("lsh_query");
  std::unordered_map<std::size_t, bool> seen;
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    Collect(t, Signature(t, v), seen);
  }
  std::vector<std::size_t> out;
  out.reserve(seen.size());
  for (const auto& [id, _] : seen) out.push_back(id);
  return out;
}

std::vector<std::size_t> CosineLsh::QueryAtLeast(
    const SparseVector& v, std::size_t min_results) const {
  PhaseScope profile("lsh_query");
  std::unordered_map<std::size_t, bool> seen;
  std::vector<uint64_t> sigs(tables_.size());
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    sigs[t] = Signature(t, v);
    Collect(t, sigs[t], seen);
  }
  // Multi-probe: flip one bit at a time in every table.
  for (std::size_t bit = 0;
       seen.size() < min_results && bit < options_.num_bits; ++bit) {
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      Collect(t, sigs[t] ^ (uint64_t{1} << bit), seen);
    }
  }
  std::vector<std::size_t> out;
  out.reserve(seen.size());
  for (const auto& [id, _] : seen) out.push_back(id);
  return out;
}

}  // namespace p2pdt
