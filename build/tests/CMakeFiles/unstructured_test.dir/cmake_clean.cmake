file(REMOVE_RECURSE
  "CMakeFiles/unstructured_test.dir/unstructured_test.cc.o"
  "CMakeFiles/unstructured_test.dir/unstructured_test.cc.o.d"
  "unstructured_test"
  "unstructured_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unstructured_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
