#ifndef P2PDT_P2PDMT_ACTIVITY_LOG_H_
#define P2PDT_P2PDMT_ACTIVITY_LOG_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"
#include "p2psim/simulator.h"

namespace p2pdt {

/// Structured record of simulation activity ("Log activities" in P2PDMT's
/// architecture, Fig. 2): timestamped (actor, category, detail) rows with
/// CSV export, so a run can be audited or charted after the fact.
///
/// Memory is bounded on request: constructed with `max_entries > 0` the
/// log becomes a ring buffer that keeps only the newest rows and counts
/// what it evicted, so long churn campaigns cannot grow without limit.
/// Rows carry the causal trace id of the operation they belong to (0 when
/// untraced), joining the activity record to exported traces.
class ActivityLog {
 public:
  ActivityLog() = default;
  /// `max_entries == 0` keeps every row (unbounded, the default).
  explicit ActivityLog(std::size_t max_entries)
      : max_entries_(max_entries) {}

  struct Entry {
    SimTime time = 0.0;
    std::string actor;     // "peer/17", "superpeer/3", "system"
    std::string category;  // "churn", "train", "predict", "repair", ...
    std::string detail;
    uint64_t trace_id = 0;  // causal trace this row belongs to (0 = none)
  };

  void Record(SimTime time, std::string actor, std::string category,
              std::string detail, uint64_t trace_id = 0);

  const std::deque<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t max_entries() const { return max_entries_; }
  /// Rows evicted by ring-buffer mode since construction or Clear().
  uint64_t dropped_entries() const { return dropped_; }

  /// Entries matching a category, in time order.
  std::vector<Entry> FilterByCategory(const std::string& category) const;

  /// Count of entries in a category.
  std::size_t CountCategory(const std::string& category) const;

  /// Columns: time, actor, category, detail, trace_id.
  Status WriteCsv(const std::string& path) const;
  void Clear() {
    entries_.clear();
    dropped_ = 0;
  }

 private:
  std::size_t max_entries_ = 0;
  uint64_t dropped_ = 0;
  std::deque<Entry> entries_;
};

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_ACTIVITY_LOG_H_
