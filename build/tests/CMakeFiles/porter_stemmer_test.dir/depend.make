# Empty dependencies file for porter_stemmer_test.
# This may be replaced when dependencies are built.
