#ifndef P2PDT_P2PDMT_SERVICE_LOADGEN_H_
#define P2PDT_P2PDMT_SERVICE_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sparse_vector.h"
#include "common/status.h"
#include "p2pdmt/loadgen.h"

namespace p2pdt {

/// Socket-mode replay options: the PR 8 session schedule (sessions, lengths,
/// Poisson arrivals, Zipf document popularity, bursts, retry backoff) driven
/// over real TCP connections against a live p2pdtd. Schedule seconds are
/// wall seconds; `schedule.arrival_rate` is the offered requests/second.
struct ServiceLoadOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  LoadGenOptions schedule;  // schedule.enabled is ignored here
  /// Per-I/O timeout and the overall wall-clock safety net (a wedged daemon
  /// fails the replay instead of hanging it).
  double io_timeout = 10.0;
  double max_wall_seconds = 300.0;
};

/// Outcome of one socket replay. `load` carries the same fields as the
/// in-sim generator with wall-clock latencies; its fingerprint differs from
/// OVER1's by design — it digests (session, idx, outcome, tags, scores)
/// but NOT latency, which is nondeterministic on a real host.
struct ServiceLoadResult {
  LoadGenResult load;
  uint64_t io_errors = 0;    // connections lost mid-replay
  uint64_t reconnects = 0;
  double wall_seconds = 0.0;
  double achieved_rate = 0.0;  // completed requests per wall second
};

/// Replays the schedule: one connection per session, requests pipelined
/// (open loop issues on the Poisson clock regardless of completions; closed
/// loop chains think-time gaps), typed overload rejects retried with the
/// schedule's jittered backoff. Single-threaded poll() loop — the client
/// mirrors the daemon's discipline.
///
/// `catalog` is the popularity-ordered document set (index 0 = most
/// popular); must outlive the call.
Result<ServiceLoadResult> RunServiceLoad(
    const ServiceLoadOptions& options,
    const std::vector<SparseVector>& catalog);

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_SERVICE_LOADGEN_H_
