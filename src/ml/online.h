#ifndef P2PDT_ML_ONLINE_H_
#define P2PDT_ML_ONLINE_H_

#include "ml/dataset.h"
#include "ml/linear_svm.h"
#include "ml/multilabel.h"

namespace p2pdt {

/// Passive-aggressive online update (Crammer et al. 2006), used to
/// implement the paper's Tag Refinement step: "Upon the refinement of tags,
/// P2PDocTagger will automatically update the classification model(s) in
/// the back-end, to adapt to their personal preference" (Sec. 2).
struct OnlineUpdateOptions {
  /// Aggressiveness bound C for PA-II; larger values move the model more
  /// per correction.
  double c = 1.0;
};

/// Applies one PA-II update to `model` for example (x, y), y ∈ {-1, +1}.
/// Returns the hinge loss *before* the update (0 means the model already
/// agreed with margin ≥ 1 and nothing changed).
double PassiveAggressiveUpdate(LinearSvmModel& model, const SparseVector& x,
                               double y,
                               const OnlineUpdateOptions& options = {});

/// Refines a one-vs-all model from a corrected tag assignment: for every
/// tag in `corrected_tags` the per-tag model is nudged positive on x, for
/// every previously-predicted tag not in the corrected set it is nudged
/// negative. Only linear per-tag models are updated (kernel models are
/// cascade-owned and rebuilt on the next training round); returns the
/// number of per-tag models actually updated.
std::size_t RefineTags(OneVsAllModel& model, const SparseVector& x,
                       const std::vector<TagId>& predicted_tags,
                       const std::vector<TagId>& corrected_tags,
                       const OnlineUpdateOptions& options = {});

}  // namespace p2pdt

#endif  // P2PDT_ML_ONLINE_H_
