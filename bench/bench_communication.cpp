// CLAIM1 — the communication-cost argument of Sec. 2: CEMPaR propagates
// each local model once to a super-peer (≈ O(N) total model traffic),
// PACE broadcasts every model to every peer (≈ O(N²) deliveries), and the
// centralized strawman ships raw data. This bench breaks traffic down by
// message type and phase for each algorithm as N grows.

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"

using namespace p2pdt_bench;

namespace {

struct Traffic {
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
  uint64_t by_type_bytes[NetworkStats::kNumTypes] = {};
};

/// Deterministic wire-cost pass for the CI bench-regression gate
/// (`--smoke`): small corpus, both P2P algorithms, ledger enabled, exact
/// message/byte/op counts emitted as machine-readable JSON.
int RunSmoke() {
  const VectorizedCorpus& corpus = SharedCorpus(24, 8);
  BenchEmitter emitter("bench_communication");
  for (AlgorithmType algo : {AlgorithmType::kCempar, AlgorithmType::kPace}) {
    ExperimentOptions opt = MacroDefaults(algo, 16);
    opt.max_test_documents = 40;
    opt.env.observe.metrics = true;
    opt.env.observe.cost_ledger = true;
    Result<ExperimentResult> r = RunExperiment(corpus, opt);
    if (!r.ok()) {
      std::fprintf(stderr, "smoke failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    RecordExperiment(emitter, r->algorithm + "_p16", *r);
  }
  emitter.Write("perf/bench_communication.json");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return RunSmoke();
  }
  std::printf("=== CLAIM1: communication-cost breakdown ===\n\n");
  const VectorizedCorpus& corpus = SharedCorpus(128, 12);
  CsvWriter csv({"algorithm", "peers", "phase_or_type", "messages", "MiB"});

  for (std::size_t peers : {32u, 64u, 128u}) {
    std::printf("-- %zu peers --\n", peers);
    std::printf("%-12s %14s %14s %14s %14s\n", "algorithm", "train(MiB)",
                "predict(MiB)", "maint(MiB)", "msgs(total)");
    for (AlgorithmType algo :
         {AlgorithmType::kCempar, AlgorithmType::kPace,
          AlgorithmType::kModelAvg, AlgorithmType::kCentralized}) {
      ExperimentOptions opt = MacroDefaults(algo, peers);
      Result<ExperimentResult> r = RunExperiment(corpus, opt);
      if (!r.ok()) {
        std::fprintf(stderr, "failed: %s\n", r.status().ToString().c_str());
        continue;
      }
      double mib = 1.0 / (1024.0 * 1024.0);
      std::printf("%-12s %14.2f %14.2f %14.2f %14llu\n", r->algorithm.c_str(),
                  r->train_bytes * mib, r->predict_bytes * mib,
                  r->maintenance_bytes * mib,
                  static_cast<unsigned long long>(r->train_messages +
                                                  r->predict_messages +
                                                  r->maintenance_messages));
      csv.AddRow({r->algorithm, std::to_string(peers), "train",
                  std::to_string(r->train_messages),
                  std::to_string(r->train_bytes * mib)});
      csv.AddRow({r->algorithm, std::to_string(peers), "predict",
                  std::to_string(r->predict_messages),
                  std::to_string(r->predict_bytes * mib)});
      csv.AddRow({r->algorithm, std::to_string(peers), "maintenance",
                  std::to_string(r->maintenance_messages),
                  std::to_string(r->maintenance_bytes * mib)});
    }
    std::printf("\n");
  }

  // Scaling fit: per-peer training bytes for CEMPaR vs PACE.
  std::printf("-- per-peer training cost growth --\n");
  std::printf("%6s %16s %16s\n", "peers", "cempar KiB/peer", "pace KiB/peer");
  for (std::size_t peers : {32u, 64u, 128u}) {
    double row[2] = {0, 0};
    int idx = 0;
    for (AlgorithmType algo : {AlgorithmType::kCempar, AlgorithmType::kPace}) {
      ExperimentOptions opt = MacroDefaults(algo, peers);
      Result<ExperimentResult> r = RunExperiment(corpus, opt);
      if (r.ok()) row[idx] = r->train_bytes_per_peer() / 1024.0;
      ++idx;
    }
    std::printf("%6zu %16.1f %16.1f\n", peers, row[0], row[1]);
    csv.AddRow({"cempar_per_peer", std::to_string(peers), "train_per_peer",
                "", std::to_string(row[0] / 1024.0)});
    csv.AddRow({"pace_per_peer", std::to_string(peers), "train_per_peer", "",
                std::to_string(row[1] / 1024.0)});
  }
  WriteResults(csv, "claim1_communication.csv");
  return 0;
}
