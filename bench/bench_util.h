#ifndef P2PDT_BENCH_BENCH_UTIL_H_
#define P2PDT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/csv.h"
#include "p2pdmt/experiment.h"

namespace p2pdt_bench {

using namespace p2pdt;  // NOLINT — bench-local convenience

/// Corpus used by the macro experiments: Delicious-like, 512 users with
/// 50–200 docs each is too slow to rebuild per bench point, so benches
/// share one sized-down instance per binary (generated once, reused for
/// every sweep point — exactly how the paper reuses its crawl).
inline const VectorizedCorpus& SharedCorpus(std::size_t num_users = 128,
                                            std::size_t num_tags = 12) {
  static const VectorizedCorpus corpus = [num_users, num_tags] {
    CorpusOptions opt;
    opt.num_users = num_users;
    opt.min_docs_per_user = 50;
    opt.max_docs_per_user = 80;
    opt.num_tags = num_tags;
    opt.vocabulary_size = 3000;
    opt.seed = 20100913;  // VLDB 2010 opening day
    Result<VectorizedCorpus> r = MakeVectorizedCorpus(opt);
    if (!r.ok()) {
      std::fprintf(stderr, "corpus generation failed: %s\n",
                   r.status().ToString().c_str());
      std::abort();
    }
    return std::move(r).value();
  }();
  return corpus;
}

/// Writes a CSV table under bench_results/, creating the directory.
inline void WriteResults(const CsvWriter& csv, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  std::string path = "bench_results/" + name;
  Status s = csv.WriteFile(path);
  if (s.ok()) {
    std::printf("\n[results written to %s]\n", path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s: %s\n", path.c_str(),
                 s.ToString().c_str());
  }
}

/// Common experiment defaults for the macro benches.
inline ExperimentOptions MacroDefaults(AlgorithmType algorithm,
                                       std::size_t num_peers) {
  ExperimentOptions opt;
  opt.algorithm = algorithm;
  opt.env.num_peers = num_peers;
  opt.distribution.cls = ClassDistribution::kByUser;
  opt.max_test_documents = 300;
  return opt;
}

}  // namespace p2pdt_bench

#endif  // P2PDT_BENCH_BENCH_UTIL_H_
