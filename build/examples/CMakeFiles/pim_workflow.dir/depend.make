# Empty dependencies file for pim_workflow.
# This may be replaced when dependencies are built.
