
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/network_test.cc" "tests/CMakeFiles/network_test.dir/network_test.cc.o" "gcc" "tests/CMakeFiles/network_test.dir/network_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p2pdmt/CMakeFiles/p2pdt_p2pdmt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p2pdt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/p2pml/CMakeFiles/p2pdt_p2pml.dir/DependInfo.cmake"
  "/root/repo/build/src/p2psim/CMakeFiles/p2pdt_p2psim.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/p2pdt_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/p2pdt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/p2pdt_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p2pdt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
