#include "p2psim/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/json_check.h"
#include "p2psim/chord.h"
#include "p2psim/network.h"
#include "p2psim/transport.h"

namespace p2pdt {
namespace {

TEST(TracerTest, RootAndChildSpans) {
  Tracer tracer;
  TraceContext root = tracer.StartTrace("predict", 1.0, 3);
  EXPECT_TRUE(root.valid());
  EXPECT_EQ(root.parent_span, 0u);

  TraceContext child = tracer.StartSpan("lookup", 1.5, 3, root, "dht");
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.parent_span, root.span_id);

  tracer.EndSpan(child, 2.0);
  tracer.EndSpan(root, 3.0);
  ASSERT_EQ(tracer.num_spans(), 2u);
  EXPECT_EQ(tracer.num_traces(), 1u);

  const SpanRecord& r = tracer.spans()[0];
  EXPECT_EQ(r.name, "predict");
  EXPECT_DOUBLE_EQ(r.start, 1.0);
  EXPECT_DOUBLE_EQ(r.end, 3.0);
  EXPECT_EQ(r.node, 3u);
}

TEST(TracerTest, InvalidParentStartsFreshTrace) {
  Tracer tracer;
  TraceContext a = tracer.StartSpan("op", 0.0, 0, TraceContext{});
  TraceContext b = tracer.StartSpan("op", 0.0, 0, TraceContext{});
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_EQ(tracer.num_traces(), 2u);
}

TEST(TracerTest, StartAutoFollowsCurrentContext) {
  Tracer tracer;
  TraceContext root = tracer.StartTrace("outer", 0.0, 1);
  {
    ScopedTraceContext scope(&tracer, root);
    TraceContext inner = tracer.StartAuto("inner", 0.5, 1);
    EXPECT_EQ(inner.trace_id, root.trace_id);
    EXPECT_EQ(inner.parent_span, root.span_id);
    tracer.EndSpan(inner, 0.6);
  }
  // Context restored: a new auto span is a fresh root.
  TraceContext detached = tracer.StartAuto("detached", 1.0, 1);
  EXPECT_NE(detached.trace_id, root.trace_id);
}

TEST(TracerTest, ScopedContextNestsAndRestores) {
  Tracer tracer;
  TraceContext a = tracer.StartTrace("a", 0.0, 0);
  TraceContext b = tracer.StartTrace("b", 0.0, 0);
  EXPECT_FALSE(tracer.current().valid());
  {
    ScopedTraceContext sa(&tracer, a);
    EXPECT_EQ(tracer.current().span_id, a.span_id);
    {
      ScopedTraceContext sb(&tracer, b);
      EXPECT_EQ(tracer.current().span_id, b.span_id);
    }
    EXPECT_EQ(tracer.current().span_id, a.span_id);
  }
  EXPECT_FALSE(tracer.current().valid());
  // Null tracer: a no-op, must not crash.
  ScopedTraceContext none(nullptr, a);
}

TEST(TracerTest, EndSpanIsIdempotentAndArgsOnlyLandOnOpenSpans) {
  Tracer tracer;
  TraceContext c = tracer.StartTrace("op", 0.0, 0);
  tracer.AddArg(c, "k", "v");
  tracer.EndSpan(c, 1.0);
  tracer.EndSpan(c, 99.0);       // ignored
  tracer.AddArg(c, "late", "x");  // ignored — span already closed
  ASSERT_EQ(tracer.num_spans(), 1u);
  const SpanRecord& r = tracer.spans()[0];
  EXPECT_DOUBLE_EQ(r.end, 1.0);
  bool has_late = false;
  for (const auto& [k, v] : r.args) has_late |= (k == "late");
  EXPECT_FALSE(has_late);
}

TEST(TracerTest, ChromeExportIsValidJson) {
  Tracer tracer;
  TraceContext root = tracer.StartTrace("predict \"q\"", 0.0, 2);
  tracer.AddArg(root, "key", "42");
  tracer.Instant("retransmit", 0.5, 2, root);
  tracer.EndSpan(root, 1.0);

  std::string json = tracer.ToChromeTraceJson();
  Status s = CheckJsonSyntax(json);
  EXPECT_TRUE(s.ok()) << s.ToString() << "\n" << json;
  EXPECT_TRUE(JsonHasKey(json, "traceEvents"));
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(TracerTest, ChromeExportEscapesAdversarialNames) {
  // Names with quotes, backslashes, control characters, and non-ASCII
  // bytes must never break the JSON document.
  const char* hostile[] = {
      "quote\"inject\":1}",     "back\\slash\\\\",
      "new\nline\r\ttab",       "nul-adjacent\x01\x1f",
      "utf8 \xc3\xa9\xe2\x82\xac", "}],\"done\":[{",
  };
  Tracer tracer;
  TraceContext root = tracer.StartTrace(hostile[0], 0.0, 1);
  TraceContext prev = root;
  for (std::size_t i = 1; i < std::size(hostile); ++i) {
    TraceContext span = tracer.StartSpan(hostile[i], 0.1 * i, 1, prev);
    tracer.AddArg(span, "k\"ey", "va\\lue\n");
    tracer.EndSpan(span, 0.1 * i + 0.05);
    prev = span;
  }
  tracer.Instant("drop \"reason\"", 0.9, 1, root);
  tracer.EndSpan(root, 1.0);

  std::string json = tracer.ToChromeTraceJson();
  Status s = CheckJsonSyntax(json);
  EXPECT_TRUE(s.ok()) << s.ToString() << "\n" << json;
  EXPECT_TRUE(JsonHasKey(json, "traceEvents"));
}

TEST(TracerTest, CollapsedExportFoldsSelfTimeByStack) {
  Tracer tracer;
  // predict(0..10) > lookup(1..5) > hop(2..3); a second lookup(6..8).
  TraceContext root = tracer.StartTrace("predict", 0.0, 1);
  TraceContext lookup = tracer.StartSpan("lookup", 1.0, 1, root);
  TraceContext hop = tracer.StartSpan("hop", 2.0, 1, lookup);
  tracer.EndSpan(hop, 3.0);
  tracer.EndSpan(lookup, 5.0);
  TraceContext lookup2 = tracer.StartSpan("lookup", 6.0, 1, root);
  tracer.Instant("retransmit", 6.5, 1, lookup2);  // instants fold to nothing
  tracer.EndSpan(lookup2, 8.0);
  tracer.EndSpan(root, 10.0);

  std::string collapsed = tracer.ToCollapsed();
  // Self time: root 10-4-2=4s, the two lookups merge to (4-1)+2=5s,
  // hop keeps its 1s. Micros, sorted by stack.
  EXPECT_EQ(collapsed,
            "predict 4000000\n"
            "predict;lookup 5000000\n"
            "predict;lookup;hop 1000000\n");
}

TEST(TracerTest, CollapsedExportSanitizesFrameNames) {
  Tracer tracer;
  TraceContext root = tracer.StartTrace("name with spaces\nand;lines", 0.0, 1);
  tracer.EndSpan(root, 1.0);
  std::string collapsed = tracer.ToCollapsed();
  ASSERT_FALSE(collapsed.empty());
  // One line: `stack <micros>` with no interior whitespace in the stack.
  auto space = collapsed.rfind(' ');
  ASSERT_NE(space, std::string::npos);
  std::string stack = collapsed.substr(0, space);
  EXPECT_EQ(stack.find(' '), std::string::npos) << collapsed;
  EXPECT_EQ(stack.find('\n'), std::string::npos) << collapsed;
}

TEST(TracerTest, ClearResetsState) {
  Tracer tracer;
  TraceContext c = tracer.StartTrace("op", 0.0, 0);
  tracer.EndSpan(c, 1.0);
  tracer.Clear();
  EXPECT_EQ(tracer.num_spans(), 0u);
  EXPECT_EQ(tracer.num_traces(), 0u);
  EXPECT_FALSE(tracer.current().valid());
}

// ---------------------------------------------------------------------------
// Network integration.

struct NetFixture {
  Simulator sim;
  PhysicalNetwork net;
  Tracer tracer;

  explicit NetFixture(std::size_t nodes, PhysicalNetworkOptions popt = {})
      : net(sim, popt) {
    net.AddNodes(nodes);
    net.SetTracer(&tracer);
  }
};

TEST(NetworkTraceTest, ResponseChainsIntoSenderTrace) {
  NetFixture f(3);
  TraceContext op = f.tracer.StartTrace("request", 0.0, 0);
  {
    ScopedTraceContext scope(&f.tracer, op);
    f.net.Send(0, 1, 100, MessageType::kPredictionRequest,
               [&] {
                 // Receiver responds on behalf of the request message.
                 f.net.Send(1, 0, 50, MessageType::kPredictionResponse,
                            nullptr, nullptr);
               },
               nullptr);
  }
  f.sim.RunUntil(10.0);
  f.tracer.EndSpan(op, f.sim.Now());

  ASSERT_EQ(f.tracer.num_spans(), 3u);
  std::set<uint64_t> trace_ids;
  for (const SpanRecord& s : f.tracer.spans()) trace_ids.insert(s.trace_id);
  EXPECT_EQ(trace_ids.size(), 1u) << "request + response share one trace";

  // The response span's parent must be the request *message* span.
  const SpanRecord* request_msg = nullptr;
  const SpanRecord* response_msg = nullptr;
  for (const SpanRecord& s : f.tracer.spans()) {
    if (s.name == MessageTypeToString(MessageType::kPredictionRequest))
      request_msg = &s;
    if (s.name == MessageTypeToString(MessageType::kPredictionResponse))
      response_msg = &s;
  }
  ASSERT_NE(request_msg, nullptr);
  ASSERT_NE(response_msg, nullptr);
  EXPECT_EQ(response_msg->parent_span, request_msg->span_id);
}

TEST(NetworkTraceTest, DropsAreAnnotated) {
  PhysicalNetworkOptions popt;
  popt.loss_rate = 1.0;
  NetFixture f(2, popt);
  f.net.Send(0, 1, 100, MessageType::kLookup, nullptr, nullptr);
  f.sim.RunUntil(10.0);
  ASSERT_EQ(f.tracer.num_spans(), 1u);
  const SpanRecord& s = f.tracer.spans()[0];
  bool dropped = false;
  for (const auto& [k, v] : s.args) dropped |= (k == "drop");
  EXPECT_TRUE(dropped);
}

TEST(NetworkTraceTest, TracingDoesNotPerturbTheEventSequence) {
  // Same seed, tracing on vs off: identical traffic and delivery counts.
  PhysicalNetworkOptions popt;
  popt.loss_rate = 0.2;
  auto run = [&](bool traced) {
    Simulator sim;
    PhysicalNetwork net(sim, popt);
    Tracer tracer;
    if (traced) net.SetTracer(&tracer);
    net.AddNodes(4);
    ReliableTransport transport(sim, net);
    int acked = 0;
    for (int i = 0; i < 10; ++i) {
      transport.SendReliable(0, 1 + (i % 3), 500, MessageType::kModelUpload,
                             nullptr, [&] { ++acked; }, nullptr);
    }
    sim.RunUntil(600.0);
    return std::tuple(acked, net.stats().messages_sent(),
                      net.stats().messages_delivered(), sim.Now());
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(TransportTraceTest, RetriesStayInOneLogicalSpan) {
  // Scan seeds (deterministically) for a run where the lossy network makes
  // the transport retransmit before the ACK lands, then assert the whole
  // exchange — logical span, every physical attempt, every retry mark —
  // stayed inside one trace.
  for (uint64_t seed = 1;; ++seed) {
    ASSERT_LT(seed, 64u) << "no seed produced a retransmitted-then-acked run";
    PhysicalNetworkOptions popt;
    popt.loss_rate = 0.6;
    popt.seed = seed;
    NetFixture f(2, popt);
    ReliableTransport transport(f.sim, f.net, {.max_retries = 12});
    int acked = 0;
    transport.SendReliable(0, 1, 500, MessageType::kModelUpload, nullptr,
                           [&] { ++acked; }, nullptr);
    f.sim.RunUntil(600.0);
    if (acked != 1 || f.net.stats().retransmits() == 0) continue;

    std::set<uint64_t> trace_ids;
    for (const SpanRecord& s : f.tracer.spans()) trace_ids.insert(s.trace_id);
    ASSERT_EQ(trace_ids.size(), 1u);

    const SpanRecord* logical = nullptr;
    std::size_t attempts = 0, retransmit_marks = 0;
    for (const SpanRecord& s : f.tracer.spans()) {
      if (s.category == "transport") logical = &s;
      if (s.category == "message" &&
          s.name == MessageTypeToString(MessageType::kModelUpload)) {
        ++attempts;
      }
      if (s.instant && s.name == "retransmit") ++retransmit_marks;
    }
    ASSERT_NE(logical, nullptr);
    EXPECT_EQ(attempts, f.net.stats().retransmits() + 1);
    EXPECT_EQ(retransmit_marks, f.net.stats().retransmits());
    bool outcome_acked = false;
    for (const auto& [k, v] : logical->args) {
      outcome_acked |= (k == "outcome" && v == "acked");
    }
    EXPECT_TRUE(outcome_acked);
    break;
  }
}

TEST(ChordTraceTest, LookupHopsNestUnderLookupSpan) {
  Simulator sim;
  PhysicalNetwork net(sim);
  Tracer tracer;
  net.SetTracer(&tracer);
  ChordOptions copt;
  copt.key_bits = 16;
  ChordOverlay chord(sim, net, copt);
  net.AddNodes(32);
  for (NodeId n = 0; n < 32; ++n) chord.AddNode(n);
  chord.Bootstrap();
  sim.RunUntil(sim.Now() + 60.0);
  tracer.Clear();  // discard bootstrap maintenance spans

  ChordOverlay::LookupResult result;
  bool done = false;
  chord.Lookup(0, chord.HashToKey(12345), [&](ChordOverlay::LookupResult r) {
    result = r;
    done = true;
  });
  sim.RunUntil(sim.Now() + 600.0);
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.success);

  // Both the DHT-level span and the per-hop message spans are named
  // "lookup" — the category tells them apart.
  const SpanRecord* lookup = nullptr;
  std::size_t hop_msgs = 0;
  std::set<uint64_t> trace_ids;
  for (const SpanRecord& s : tracer.spans()) {
    trace_ids.insert(s.trace_id);
    if (s.category == "dht" && s.name == "lookup") lookup = &s;
    if (s.category == "message" &&
        s.name == MessageTypeToString(MessageType::kLookup)) {
      ++hop_msgs;
    }
  }
  ASSERT_NE(lookup, nullptr);
  EXPECT_EQ(trace_ids.size(), 1u) << "all hops share the lookup's trace";
  EXPECT_EQ(hop_msgs, static_cast<std::size_t>(result.hops));
  bool hops_arg = false;
  for (const auto& [k, v] : lookup->args) {
    hops_arg |= (k == "hops" && v == std::to_string(result.hops));
  }
  EXPECT_TRUE(hops_arg);
  EXPECT_GE(lookup->end, lookup->start);
}

}  // namespace
}  // namespace p2pdt
