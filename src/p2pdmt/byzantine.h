#ifndef P2PDT_P2PDMT_BYZANTINE_H_
#define P2PDT_P2PDMT_BYZANTINE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "p2pdmt/experiment.h"
#include "p2psim/fault.h"

namespace p2pdt {

/// Builds a fault plan that turns `fraction` of the peers malicious with
/// the given behavior for the whole run. Victims are a deterministic sample
/// keyed by (seed, behavior), so the same scenario seed always poisons the
/// same peers — and two behaviors at the same fraction poison *different*
/// subsets, which keeps sweep points independent.
FaultPlanSpec MakeAdversaryPlan(std::size_t num_peers,
                                AdversaryBehavior behavior, double fraction,
                                uint64_t seed);

/// One grid point of the poisoning sweep, flattened for reporting.
struct ByzantineRow {
  std::string algorithm;
  /// Adversary behavior name ("none" for the clean arm).
  std::string adversary = "none";
  double malicious_fraction = 0.0;
  std::size_t malicious_peers = 0;
  /// True when the sanitation + reputation stack was enabled.
  bool defended = false;

  double micro_f1 = 0.0;
  double macro_f1 = 0.0;
  double prediction_success_rate = 0.0;
  std::size_t test_documents = 0;

  uint64_t models_rejected = 0;
  uint64_t votes_discarded = 0;
  uint64_t quarantined_pairs = 0;
  uint64_t trust_observations = 0;

  uint64_t train_bytes = 0;
  double train_sim_seconds = 0.0;
};

struct ByzantineSweepOptions {
  /// Template for every run; algorithm / adversary plan / defense arm are
  /// overridden per grid point.
  ExperimentOptions base;
  std::vector<AlgorithmType> algorithms = {AlgorithmType::kCempar,
                                           AlgorithmType::kPace};
  /// Label-flip is the headline attack: swept across fractions (the paper
  /// of record for poisoning curves). Other behaviors run at one fraction.
  std::vector<double> flip_fractions = {0.1, 0.2, 0.3, 0.4};
  std::vector<AdversaryBehavior> other_behaviors = {
      AdversaryBehavior::kGarbageModel, AdversaryBehavior::kDimensionMismatch,
      AdversaryBehavior::kAccuracyInflate, AdversaryBehavior::kVoteSpam};
  double other_fraction = 0.3;
  /// Run every point twice — defenses on and off — so the degradation delta
  /// the stack buys is in the same table. When false, only the defended arm
  /// runs.
  bool compare_defense = true;
  /// Invoked after every completed point (progress reporting); may be null.
  std::function<void(const ByzantineRow&)> on_point;
};

/// Runs the grid: algorithms × {clean, label-flip × fractions, other
/// behaviors × other_fraction} × {defended, undefended}. Failed runs are
/// skipped with a warning rather than aborting the sweep.
std::vector<ByzantineRow> RunByzantineSweep(const VectorizedCorpus& corpus,
                                            const ByzantineSweepOptions& options);

/// Flattens sweep rows into the CSV schema bench_byzantine writes
/// (bench_results/byzantine.csv).
CsvWriter ByzantineCsv(const std::vector<ByzantineRow>& rows);

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_BYZANTINE_H_
