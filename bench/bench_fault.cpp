// ROBUST1 — delivery guarantees under structured faults: sweep baseline
// loss rate × fault plan for CEMPaR and PACE, with the reliable transport
// off (fire-and-forget baseline, what the original papers measured) and on
// (ACK / timeout / backoff / bounded retries + repair).
//
// Expected shape: without retries, macro-F1 and prediction success fall
// roughly linearly with loss; with retries, delivery converges (PACE model
// coverage → 1.0, CEMPaR success ≈ 1.0) at the cost of the retransmission
// overhead column.

#include <cstdio>

#include "bench/bench_util.h"
#include "p2pdmt/robustness.h"

using namespace p2pdt_bench;

int main() {
  std::printf("=== ROBUST1: loss x fault plan x reliability ===\n\n");
  const VectorizedCorpus& corpus = SharedCorpus(/*num_users=*/128,
                                                /*num_tags=*/12);

  RobustnessSweepOptions sweep;
  sweep.base = MacroDefaults(AlgorithmType::kPace, 64);
  sweep.base.max_test_documents = 200;
  sweep.loss_rates = {0.0, 0.1, 0.2};
  sweep.plans = CanonicalFaultPlans(sweep.base.env.num_peers,
                                    /*horizon=*/120.0);

  std::printf("%-8s %-10s %5s %4s %8s %8s %8s %8s %8s\n", "algo", "plan",
              "loss", "rel", "macroF1", "success", "deliv", "retxovh",
              "coverage");
  sweep.on_point = [](const RobustnessRow& row) {
    std::printf("%-8s %-10s %5.2f %4s %8.4f %8.4f %8.4f %8.4f %8.4f\n",
                row.algorithm.c_str(), row.plan.c_str(), row.loss_rate,
                row.reliable ? "on" : "off", row.macro_f1,
                row.prediction_success_rate, row.delivery_rate,
                row.retry_overhead, row.model_coverage);
  };

  std::vector<RobustnessRow> rows = RunRobustnessSweep(corpus, sweep);
  WriteResults(RobustnessCsv(rows), "fault.csv");
  return 0;
}
