file(REMOVE_RECURSE
  "CMakeFiles/activity_log_test.dir/activity_log_test.cc.o"
  "CMakeFiles/activity_log_test.dir/activity_log_test.cc.o.d"
  "activity_log_test"
  "activity_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
