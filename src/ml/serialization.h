#ifndef P2PDT_ML_SERIALIZATION_H_
#define P2PDT_ML_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "ml/kernel_svm.h"
#include "ml/linear_svm.h"
#include "ml/multilabel.h"

namespace p2pdt {

/// Binary (de)serialization of trained models, so a peer's models survive
/// restarts and can be exchanged out-of-band. The format is an explicit
/// little-endian byte layout (not a memory dump): a 4-byte magic, a 2-byte
/// version, then length-prefixed sections. Deserializers validate every
/// length against the remaining buffer and fail with InvalidArgument on
/// malformed input rather than reading out of bounds.
///
/// This also grounds the WireSize() accounting: the serialized size of a
/// model is within a small constant of what the simulator charges.

/// Primitive little-endian encode/decode helpers, shared by the model
/// serializers below and by composite peer-state snapshots (CEMPaR / PACE
/// checkpoints) that embed models next to their own fields. Getters
/// validate remaining length and return InvalidArgument on truncation.
namespace wire {

void PutU8(uint8_t v, std::string& out);
void PutU16(uint16_t v, std::string& out);
void PutU32(uint32_t v, std::string& out);
void PutU64(uint64_t v, std::string& out);
void PutDouble(double v, std::string& out);
/// Length-prefixed (u32) byte string.
void PutBytes(const std::string& bytes, std::string& out);

Result<uint8_t> GetU8(const std::string& data, std::size_t& offset);
Result<uint16_t> GetU16(const std::string& data, std::size_t& offset);
Result<uint32_t> GetU32(const std::string& data, std::size_t& offset);
Result<uint64_t> GetU64(const std::string& data, std::size_t& offset);
Result<double> GetDouble(const std::string& data, std::size_t& offset);
Result<std::string> GetBytes(const std::string& data, std::size_t& offset);

}  // namespace wire

/// Appends the serialized form of `v` to `out`.
void SerializeSparseVector(const SparseVector& v, std::string& out);

/// Reads a sparse vector from `data` at `offset`, advancing it.
Result<SparseVector> DeserializeSparseVector(const std::string& data,
                                             std::size_t& offset);

std::string SerializeLinearSvm(const LinearSvmModel& model);
Result<LinearSvmModel> DeserializeLinearSvm(const std::string& data);

std::string SerializeKernelSvm(const KernelSvmModel& model);
Result<KernelSvmModel> DeserializeKernelSvm(const std::string& data);

/// One-vs-all bundles: every per-tag model tagged by kind (linear, kernel,
/// constant, absent).
std::string SerializeOneVsAll(const OneVsAllModel& model);
Result<OneVsAllModel> DeserializeOneVsAll(const std::string& data);

/// k-means centroid sets (PACE broadcasts these next to the linear models;
/// peer checkpoints persist them so a warm rejoin skips re-clustering).
std::string SerializeCentroids(const std::vector<SparseVector>& centroids);
Result<std::vector<SparseVector>> DeserializeCentroids(
    const std::string& data);

/// File helpers.
Status SaveOneVsAll(const OneVsAllModel& model, const std::string& path);
Result<OneVsAllModel> LoadOneVsAll(const std::string& path);

}  // namespace p2pdt

#endif  // P2PDT_ML_SERIALIZATION_H_
