
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p2pml/baselines.cc" "src/p2pml/CMakeFiles/p2pdt_p2pml.dir/baselines.cc.o" "gcc" "src/p2pml/CMakeFiles/p2pdt_p2pml.dir/baselines.cc.o.d"
  "/root/repo/src/p2pml/cempar.cc" "src/p2pml/CMakeFiles/p2pdt_p2pml.dir/cempar.cc.o" "gcc" "src/p2pml/CMakeFiles/p2pdt_p2pml.dir/cempar.cc.o.d"
  "/root/repo/src/p2pml/pace.cc" "src/p2pml/CMakeFiles/p2pdt_p2pml.dir/pace.cc.o" "gcc" "src/p2pml/CMakeFiles/p2pdt_p2pml.dir/pace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2pdt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/p2pdt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/p2psim/CMakeFiles/p2pdt_p2psim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
