#include "common/string_util.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyString) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWhitespaceTest, DropsEmptyRuns) {
  EXPECT_EQ(SplitWhitespace("  foo \t bar\nbaz  "),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(SplitWhitespace("   \t\n ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"only"}, ","), "only");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(JoinSplitTest, RoundTrip) {
  std::vector<std::string> parts = {"x", "yy", "zzz"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("HeLLo World 123"), "hello world 123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(TrimTest, Basics) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("\t\na b\r\n"), "a b");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(HumanBytesTest, Units) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(1024.0 * 1024.0 * 1.5), "1.50 MiB");
  EXPECT_EQ(HumanBytes(1024.0 * 1024.0 * 1024.0), "1.00 GiB");
}

}  // namespace
}  // namespace p2pdt
