// FIG3 — the tagging workflow of the demo UI, as a scripted session:
// File Browser → manual seed tagging → P2P collaborative training →
// "Suggest Tag" with the Confidence slider → "AutoTag" → tag refinement →
// Library search/filter → persistence of tags as file metadata (sidecars).
//
// The P2P back-end is a real CEMPaR protocol run inside the P2PDMT
// simulator: this user's machine is peer 0 of a 32-peer DHT.
//
// Build & run:  ./build/examples/pim_workflow

#include <cstdio>

#include "core/doc_tagger.h"
#include "core/metadata_store.h"
#include "core/tag_query.h"
#include "p2pdmt/experiment.h"
#include "p2pdmt/sim_scorer.h"

using namespace p2pdt;

namespace {

void PrintSuggestions(const std::vector<TagSuggestion>& suggestions,
                      double slider) {
  // The demo UI shows low-confidence tags struck out and last; here they
  // print in brackets after the confident ones.
  std::printf("  suggestion cloud (confidence slider at %.2f):\n", slider);
  for (const TagSuggestion& s : suggestions) {
    if (s.confidence >= slider) {
      std::printf("    %-16s %.2f\n", s.tag.c_str(), s.confidence);
    }
  }
  for (const TagSuggestion& s : suggestions) {
    if (s.confidence < slider) {
      std::printf("    [%-14s %.2f  -- below slider]\n", s.tag.c_str(),
                  s.confidence);
    }
  }
}

}  // namespace

int main() {
  std::printf("=== P2PDocTagger PIM workflow (Fig. 3) ===\n\n");

  // --- The network: 32 peers with their own tagged collections -----------
  CorpusOptions co;
  co.num_users = 32;
  co.min_docs_per_user = 50;
  co.max_docs_per_user = 70;
  co.num_tags = 8;
  co.vocabulary_size = 2000;
  co.seed = 99;
  GeneratedCorpus corpus = std::move(GenerateCorpus(co)).value();
  Preprocessor pre;
  VectorizedCorpus vectorized =
      std::move(VectorizeCorpus(corpus, pre)).value();

  ExperimentOptions opt;
  opt.env.num_peers = 32;
  opt.algorithm = AlgorithmType::kCempar;
  opt.distribution.cls = ClassDistribution::kByUser;
  auto env = std::move(Environment::Create(opt.env)).value();
  auto algo = std::move(MakeClassifier(*env, opt)).value();

  CorpusSplit split = SplitCorpus(vectorized, 0.2, 1);
  auto peers = std::move(DistributeData(split.train, 32, opt.distribution,
                                        &split.train_user))
                   .value();
  algo->Setup(std::move(peers), vectorized.dataset.num_tags()).ToString();
  bool trained = false;
  algo->Train([&](Status s) {
    std::printf("P2P collaborative training finished: %s\n",
                s.ToString().c_str());
    trained = true;
  });
  env->RunUntilFlag(trained, 3600);
  std::printf("network traffic so far:\n%s\n",
              env->net().stats().ToString().c_str());

  // --- This user's DocTagger, backed by the P2P network ------------------
  DocTagger tagger;
  tagger.AttachGlobalScorer(MakeSimScorer(*algo, *env, /*self=*/0),
                            corpus.tag_names);

  // "File Browser": the user selects their documents.
  const auto& my_docs = corpus.user_documents[0];
  for (std::size_t idx : my_docs) {
    tagger.AddDocument(corpus.documents[idx].title,
                       corpus.documents[idx].text);
  }
  std::printf("added %zu documents from the File Browser\n\n",
              tagger.num_documents());

  // "Suggest Tag" on one file, exploring the confidence slider.
  DocId sample = 0;
  Result<std::vector<TagSuggestion>> suggestions =
      tagger.SuggestTags(sample, 0.0);
  if (suggestions.ok()) {
    std::printf("Suggest Tag for '%s':\n",
                corpus.documents[my_docs[sample]].title.c_str());
    PrintSuggestions(suggestions.value(), 0.30);
    std::printf("\n");
    PrintSuggestions(suggestions.value(), 0.70);
  }

  // "AutoTag" everything.
  Result<std::size_t> tagged = tagger.AutoTagAll();
  std::printf("\nAutoTag tagged %zu documents\n",
              tagged.value_or(0));

  // Ground-truth check.
  std::size_t correct = 0, total = 0;
  for (std::size_t i = 0; i < my_docs.size(); ++i) {
    const Document& doc = *tagger.GetDocument(i).value();
    const RawDocument& raw = corpus.documents[my_docs[i]];
    for (const TagAssignment& a : doc.tags) {
      ++total;
      for (const std::string& t : raw.tags) {
        if (a.tag == t) {
          ++correct;
          break;
        }
      }
    }
  }
  std::printf("auto-tag precision vs ground truth: %.1f%% (%zu/%zu)\n\n",
              total ? 100.0 * correct / total : 0.0, correct, total);

  // Tag refinement: the user fixes one document's tags by hand; the local
  // model adapts.
  std::printf("refining tags on doc 1 to its true set...\n");
  tagger.Refine(1, corpus.documents[my_docs[1]].tags).ToString();

  // Library browsing: search and filter by tags (AND / OR).
  auto counts = tagger.library().TagCounts();
  std::printf("\nLibrary: %zu tags over %zu documents\n",
              tagger.library().num_tags(), tagger.library().num_documents());
  if (counts.size() >= 2) {
    const std::string& a = counts[0].first;
    const std::string& b = counts[1].first;
    std::printf("  docs tagged '%s': %zu\n", a.c_str(),
                tagger.library().WithTag(a).size());
    std::printf("  docs tagged '%s' AND '%s': %zu\n", a.c_str(), b.c_str(),
                tagger.library().WithAllTags({a, b}).size());
    std::printf("  docs tagged '%s' OR  '%s': %zu\n", a.c_str(), b.c_str(),
                tagger.library().WithAnyTag({a, b}).size());
    // Boolean query language for richer filtering.
    std::string q = a + " AND NOT " + b;
    Result<TagQuery> query = TagQuery::Parse(q);
    if (query.ok()) {
      std::printf("  query \"%s\": %zu docs\n", q.c_str(),
                  query->Evaluate(tagger.library()).size());
    }
  }

  // Persist tags as file metadata (sidecars) so other PIM tools see them.
  MetadataStore store("pim_metadata");
  std::size_t persisted = 0;
  for (DocId id = 0; id < tagger.num_documents(); ++id) {
    const Document& doc = *tagger.GetDocument(id).value();
    if (!doc.tags.empty() && store.Save(doc).ok()) ++persisted;
  }
  std::printf("\npersisted tag metadata for %zu documents under "
              "pim_metadata/\n",
              persisted);
  std::printf("\nworkflow complete.\n");
  return 0;
}
