# Empty compiler generated dependencies file for simulation_campaign.
# This may be replaced when dependencies are built.
