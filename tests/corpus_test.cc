#include "corpus/generator.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "corpus/vectorize.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace p2pdt {
namespace {

CorpusOptions SmallOptions() {
  CorpusOptions opt;
  opt.num_users = 6;
  opt.min_docs_per_user = 10;
  opt.max_docs_per_user = 20;
  opt.num_tags = 5;
  opt.vocabulary_size = 400;
  opt.topic_words_per_tag = 30;
  opt.seed = 99;
  return opt;
}

TEST(CorpusGeneratorTest, RejectsBadOptions) {
  CorpusOptions opt = SmallOptions();
  opt.num_users = 0;
  EXPECT_FALSE(GenerateCorpus(opt).ok());
  opt = SmallOptions();
  opt.min_docs_per_user = 30;
  opt.max_docs_per_user = 10;
  EXPECT_FALSE(GenerateCorpus(opt).ok());
  opt = SmallOptions();
  opt.topic_words_per_tag = 1000;  // > vocabulary
  EXPECT_FALSE(GenerateCorpus(opt).ok());
}

TEST(CorpusGeneratorTest, DocCountsPerUserInRange) {
  Result<GeneratedCorpus> corpus = GenerateCorpus(SmallOptions());
  ASSERT_TRUE(corpus.ok());
  ASSERT_EQ(corpus->num_users(), 6u);
  for (const auto& docs : corpus->user_documents) {
    EXPECT_GE(docs.size(), 10u);
    EXPECT_LE(docs.size(), 20u);
  }
}

TEST(CorpusGeneratorTest, EveryDocHasTagsFromUniverse) {
  Result<GeneratedCorpus> corpus = GenerateCorpus(SmallOptions());
  ASSERT_TRUE(corpus.ok());
  std::set<std::string> universe(corpus->tag_names.begin(),
                                 corpus->tag_names.end());
  for (const RawDocument& doc : corpus->documents) {
    ASSERT_FALSE(doc.tags.empty());
    EXPECT_LE(doc.tags.size(), SmallOptions().max_tags_per_doc);
    for (const std::string& t : doc.tags) {
      EXPECT_TRUE(universe.count(t)) << t;
    }
  }
}

TEST(CorpusGeneratorTest, TagNamesDisjointFromVocabulary) {
  // The paper stresses tags "may not necessarily be contained within the
  // documents": tag names must never appear as document words.
  Result<GeneratedCorpus> corpus = GenerateCorpus(SmallOptions());
  ASSERT_TRUE(corpus.ok());
  std::unordered_set<std::string> tags(corpus->tag_names.begin(),
                                       corpus->tag_names.end());
  Tokenizer tokenizer;
  for (const RawDocument& doc : corpus->documents) {
    for (const std::string& token : tokenizer.Tokenize(doc.text)) {
      EXPECT_FALSE(tags.count(token)) << token;
    }
  }
}

TEST(CorpusGeneratorTest, TextContainsStopWordsAndPunctuation) {
  // The renderer must exercise the whole preprocessing pipeline.
  Result<GeneratedCorpus> corpus = GenerateCorpus(SmallOptions());
  ASSERT_TRUE(corpus.ok());
  StopWordFilter stop;
  Tokenizer tokenizer;
  std::size_t stop_hits = 0, period_hits = 0;
  for (const RawDocument& doc : corpus->documents) {
    if (doc.text.find('.') != std::string::npos) ++period_hits;
    for (const std::string& token : tokenizer.Tokenize(doc.text)) {
      if (stop.IsStopWord(token)) ++stop_hits;
    }
  }
  EXPECT_GT(stop_hits, corpus->documents.size());
  EXPECT_EQ(period_hits, corpus->documents.size());
}

TEST(CorpusGeneratorTest, DeterministicInSeed) {
  Result<GeneratedCorpus> a = GenerateCorpus(SmallOptions());
  Result<GeneratedCorpus> b = GenerateCorpus(SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->documents.size(), b->documents.size());
  for (std::size_t i = 0; i < a->documents.size(); ++i) {
    EXPECT_EQ(a->documents[i].text, b->documents[i].text);
    EXPECT_EQ(a->documents[i].tags, b->documents[i].tags);
  }
  CorpusOptions other = SmallOptions();
  other.seed = 100;
  Result<GeneratedCorpus> c = GenerateCorpus(other);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->documents[0].text, c->documents[0].text);
}

TEST(CorpusGeneratorTest, TagPopularityIsSkewed) {
  CorpusOptions opt = SmallOptions();
  opt.num_users = 30;
  opt.tag_popularity_zipf = 1.2;
  Result<GeneratedCorpus> corpus = GenerateCorpus(opt);
  ASSERT_TRUE(corpus.ok());
  std::map<std::string, std::size_t> counts;
  for (const auto& doc : corpus->documents) {
    for (const auto& t : doc.tags) ++counts[t];
  }
  std::size_t max_count = 0, min_count = corpus->documents.size();
  for (const auto& [tag, c] : counts) {
    max_count = std::max(max_count, c);
    min_count = std::min(min_count, c);
  }
  EXPECT_GT(max_count, 2 * std::max<std::size_t>(min_count, 1));
}

TEST(CorpusGeneratorTest, MakeWordListDistinctAndPrefixed) {
  Rng rng(1);
  std::vector<std::string> words =
      corpus_internal::MakeWordList(200, rng, "zz");
  std::set<std::string> uniq(words.begin(), words.end());
  EXPECT_EQ(uniq.size(), 200u);
  for (const auto& w : words) {
    EXPECT_EQ(w.substr(0, 2), "zz");
  }
}

TEST(VectorizeCorpusTest, DatasetParallelToDocuments) {
  Result<GeneratedCorpus> corpus = GenerateCorpus(SmallOptions());
  ASSERT_TRUE(corpus.ok());
  Preprocessor pre;
  Result<VectorizedCorpus> vec = VectorizeCorpus(corpus.value(), pre);
  ASSERT_TRUE(vec.ok());
  EXPECT_EQ(vec->dataset.size(), corpus->documents.size());
  EXPECT_EQ(vec->doc_user.size(), corpus->documents.size());
  EXPECT_EQ(vec->dataset.num_tags(), corpus->tag_names.size());
  for (std::size_t i = 0; i < vec->dataset.size(); ++i) {
    EXPECT_FALSE(vec->dataset[i].x.empty()) << i;
    EXPECT_EQ(vec->dataset[i].tags.size(), corpus->documents[i].tags.size());
    EXPECT_EQ(vec->doc_user[i], corpus->documents[i].user);
  }
}

TEST(VectorizeCorpusTest, TopicStructureSeparatesTagsInFeatureSpace) {
  // Documents sharing a tag should be closer (cosine) than documents with
  // disjoint tags, on average — otherwise no classifier could work.
  Result<VectorizedCorpus> vec = MakeVectorizedCorpus(SmallOptions());
  ASSERT_TRUE(vec.ok());
  double same_sum = 0, diff_sum = 0;
  std::size_t same_n = 0, diff_n = 0;
  const auto& ds = vec->dataset;
  for (std::size_t i = 0; i < ds.size(); i += 3) {
    for (std::size_t j = i + 1; j < ds.size(); j += 3) {
      std::vector<TagId> inter;
      std::set_intersection(ds[i].tags.begin(), ds[i].tags.end(),
                            ds[j].tags.begin(), ds[j].tags.end(),
                            std::back_inserter(inter));
      double cos = ds[i].x.Cosine(ds[j].x);
      if (!inter.empty()) {
        same_sum += cos;
        ++same_n;
      } else {
        diff_sum += cos;
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 0u);
  ASSERT_GT(diff_n, 0u);
  EXPECT_GT(same_sum / same_n, diff_sum / diff_n + 0.05);
}

TEST(VectorizeCorpusTest, MakeVectorizedCorpusPropagatesErrors) {
  CorpusOptions opt = SmallOptions();
  opt.num_tags = 0;
  EXPECT_FALSE(MakeVectorizedCorpus(opt).ok());
}

}  // namespace
}  // namespace p2pdt
