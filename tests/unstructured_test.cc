#include "p2psim/unstructured.h"

#include <set>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

struct Graph {
  Simulator sim;
  std::unique_ptr<PhysicalNetwork> net;
  std::unique_ptr<UnstructuredOverlay> overlay;

  explicit Graph(std::size_t n, UnstructuredOptions options = {}) {
    net = std::make_unique<PhysicalNetwork>(sim);
    net->AddNodes(n);
    overlay = std::make_unique<UnstructuredOverlay>(sim, *net, options);
    for (NodeId i = 0; i < n; ++i) overlay->AddNode(i);
  }
};

TEST(UnstructuredTest, MeanDegreeNearTarget) {
  UnstructuredOptions opt;
  opt.degree = 6;
  Graph g(100, opt);
  // Each join adds `degree` undirected edges (except the bootstrap few), so
  // mean degree ≈ 2 * 6 * (n - small) / n.
  EXPECT_GE(g.overlay->MeanDegree(), 6.0);
  EXPECT_LE(g.overlay->MeanDegree(), 13.0);
}

TEST(UnstructuredTest, AdjacencyIsSymmetric) {
  Graph g(50);
  for (NodeId n = 0; n < 50; ++n) {
    for (NodeId nb : g.overlay->Neighbors(n)) {
      const auto& back = g.overlay->Neighbors(nb);
      EXPECT_NE(std::find(back.begin(), back.end(), n), back.end());
    }
  }
}

TEST(UnstructuredTest, NoSelfLoopsOrDuplicateEdges) {
  Graph g(60);
  for (NodeId n = 0; n < 60; ++n) {
    std::set<NodeId> seen;
    for (NodeId nb : g.overlay->Neighbors(n)) {
      EXPECT_NE(nb, n);
      EXPECT_TRUE(seen.insert(nb).second) << "duplicate edge at " << n;
    }
  }
}

TEST(UnstructuredTest, FloodReachesEveryoneOnStableGraph) {
  Graph g(80);
  std::set<NodeId> reached;
  bool complete = false;
  g.overlay->Broadcast(0, 64, MessageType::kGossip,
                       [&](NodeId n) { reached.insert(n); },
                       [&] { complete = true; });
  g.sim.RunUntil(600.0);
  EXPECT_TRUE(complete);
  EXPECT_EQ(reached.size(), 79u);
}

TEST(UnstructuredTest, FloodCostExceedsTreeBroadcast) {
  // Flooding sends O(N * degree) messages — the structural disadvantage
  // vs. Chord's O(N) tree (DEMO4's point).
  Graph g(80);
  bool complete = false;
  g.overlay->Broadcast(0, 64, MessageType::kGossip, nullptr,
                       [&] { complete = true; });
  g.sim.RunUntil(600.0);
  ASSERT_TRUE(complete);
  EXPECT_GT(g.net->stats().messages_sent(MessageType::kGossip), 79u * 2);
}

TEST(UnstructuredTest, TtlBoundsPropagation) {
  UnstructuredOptions opt;
  opt.degree = 2;
  opt.flood_ttl = 1;  // direct neighbors only
  Graph g(100, opt);
  std::set<NodeId> reached;
  bool complete = false;
  g.overlay->Broadcast(0, 16, MessageType::kGossip,
                       [&](NodeId n) { reached.insert(n); },
                       [&] { complete = true; });
  g.sim.RunUntil(600.0);
  EXPECT_TRUE(complete);
  // TTL 1 delivers to exactly the origin's neighborhood.
  EXPECT_EQ(reached.size(), g.overlay->Neighbors(0).size());
  for (NodeId n : reached) {
    const auto& nb = g.overlay->Neighbors(0);
    EXPECT_NE(std::find(nb.begin(), nb.end(), n), nb.end());
  }
}

TEST(UnstructuredTest, OfflinePeersBreakPropagationPaths) {
  UnstructuredOptions opt;
  opt.degree = 3;
  Graph g(60, opt);
  // Take down half the network.
  for (NodeId n = 1; n < 60; n += 2) g.net->SetOnline(n, false);
  std::set<NodeId> reached;
  bool complete = false;
  g.overlay->Broadcast(0, 16, MessageType::kGossip,
                       [&](NodeId n) { reached.insert(n); },
                       [&] { complete = true; });
  g.sim.RunUntil(600.0);
  EXPECT_TRUE(complete);
  for (NodeId n : reached) EXPECT_TRUE(g.net->IsOnline(n));
  EXPECT_LT(reached.size(), 30u);
}

TEST(UnstructuredTest, BroadcastFromOfflineOriginCompletesEmpty) {
  Graph g(10);
  g.net->SetOnline(4, false);
  bool complete = false;
  std::set<NodeId> reached;
  g.overlay->Broadcast(4, 8, MessageType::kGossip,
                       [&](NodeId n) { reached.insert(n); },
                       [&] { complete = true; });
  g.sim.RunUntil(10.0);
  EXPECT_TRUE(complete);
  EXPECT_TRUE(reached.empty());
}

TEST(UnstructuredTest, GossipCoversMostPeersCheaper) {
  UnstructuredOptions flood_opt;
  flood_opt.degree = 8;
  flood_opt.flood_ttl = 10;
  UnstructuredOptions gossip_opt = flood_opt;
  gossip_opt.mode = DisseminationMode::kGossip;
  gossip_opt.gossip_fanout = 3;

  auto run = [](const UnstructuredOptions& opt) {
    Graph g(120, opt);
    std::set<NodeId> reached;
    bool complete = false;
    g.overlay->Broadcast(0, 64, MessageType::kGossip,
                         [&](NodeId n) { reached.insert(n); },
                         [&] { complete = true; });
    g.sim.RunUntil(600.0);
    EXPECT_TRUE(complete);
    return std::make_pair(reached.size(),
                          g.net->stats().messages_sent(MessageType::kGossip));
  };
  auto [flood_reached, flood_msgs] = run(flood_opt);
  auto [gossip_reached, gossip_msgs] = run(gossip_opt);

  EXPECT_EQ(flood_reached, 119u);
  // Epidemic dissemination: ≥90% coverage at a fraction of the messages.
  EXPECT_GE(gossip_reached, 107u);
  EXPECT_LT(gossip_msgs, flood_msgs / 2);
}

TEST(UnstructuredTest, GossipNameDistinct) {
  UnstructuredOptions opt;
  opt.mode = DisseminationMode::kGossip;
  Graph g(4, opt);
  EXPECT_EQ(g.overlay->name(), "unstructured-gossip");
}

TEST(UnstructuredTest, DeterministicTopologyInSeed) {
  UnstructuredOptions opt;
  opt.seed = 321;
  Graph a(40, opt), b(40, opt);
  for (NodeId n = 0; n < 40; ++n) {
    EXPECT_EQ(a.overlay->Neighbors(n), b.overlay->Neighbors(n));
  }
}

}  // namespace
}  // namespace p2pdt
