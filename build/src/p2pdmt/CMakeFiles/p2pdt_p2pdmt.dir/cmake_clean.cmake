file(REMOVE_RECURSE
  "CMakeFiles/p2pdt_p2pdmt.dir/activity_log.cc.o"
  "CMakeFiles/p2pdt_p2pdmt.dir/activity_log.cc.o.d"
  "CMakeFiles/p2pdt_p2pdmt.dir/data_distribution.cc.o"
  "CMakeFiles/p2pdt_p2pdmt.dir/data_distribution.cc.o.d"
  "CMakeFiles/p2pdt_p2pdmt.dir/environment.cc.o"
  "CMakeFiles/p2pdt_p2pdmt.dir/environment.cc.o.d"
  "CMakeFiles/p2pdt_p2pdmt.dir/evaluation.cc.o"
  "CMakeFiles/p2pdt_p2pdmt.dir/evaluation.cc.o.d"
  "CMakeFiles/p2pdt_p2pdmt.dir/experiment.cc.o"
  "CMakeFiles/p2pdt_p2pdmt.dir/experiment.cc.o.d"
  "CMakeFiles/p2pdt_p2pdmt.dir/sim_scorer.cc.o"
  "CMakeFiles/p2pdt_p2pdmt.dir/sim_scorer.cc.o.d"
  "CMakeFiles/p2pdt_p2pdmt.dir/visualize.cc.o"
  "CMakeFiles/p2pdt_p2pdmt.dir/visualize.cc.o.d"
  "libp2pdt_p2pdmt.a"
  "libp2pdt_p2pdmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2pdt_p2pdmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
