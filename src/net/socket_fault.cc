#include "net/socket_fault.h"

#include <poll.h>

#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "ml/serialization.h"
#include "net/client.h"
#include "net/event_loop.h"
#include "net/frame.h"

namespace p2pdt {

namespace {

std::string U32Le(uint32_t v) {
  std::string out;
  wire::PutU32(v, out);
  return out;
}

/// Raw frame bytes with full control over every header field.
std::string RawFrame(uint32_t magic, uint8_t type, uint32_t declared_len,
                     const std::string& payload) {
  std::string out = U32Le(magic);
  out.push_back(static_cast<char>(type));
  out += U32Le(declared_len);
  out += payload;
  return out;
}

Status ExpectTypedError(ServiceClient& client, WireError want,
                        double timeout, SocketFaultReport& report) {
  Frame frame;
  P2PDT_RETURN_IF_ERROR(client.ReadFrame(frame, timeout));
  if (frame.type != FrameType::kError) {
    return Status::DataLoss(std::string("expected kError frame, got ") +
                            FrameTypeToString(frame.type));
  }
  Result<ErrorReject> reject = DecodeErrorReject(frame.payload);
  P2PDT_RETURN_IF_ERROR(reject.status());
  if (reject->code != want) {
    return Status::DataLoss(std::string("expected wire error ") +
                            WireErrorToString(want) + ", got " +
                            WireErrorToString(reject->code));
  }
  ++report.typed_errors_received;
  return Status::OK();
}

/// Reads until EOF or deadline; EOF (the daemon closing on us) is the
/// expected epilogue after a poisoning reject.
bool DrainToEof(ServiceClient& client, double timeout) {
  const double deadline = MonotonicSeconds() + timeout;
  Frame frame;
  while (MonotonicSeconds() < deadline) {
    const Status st = client.ReadFrame(frame, deadline - MonotonicSeconds());
    if (!st.ok()) return st.code() == StatusCode::kIOError;
  }
  return false;
}

Status OnePredict(ServiceClient& client, const SocketFaultOptions& options,
                  uint64_t id, SocketFaultReport& report) {
  PredictRequest request;
  request.id = id;
  request.requester = id;
  request.doc = options.doc;
  ServiceClient::PredictOutcome outcome;
  P2PDT_RETURN_IF_ERROR(client.Predict(request, outcome, options.io_timeout));
  if (outcome.kind == ServiceClient::PredictOutcome::Kind::kError) {
    return Status::DataLoss("valid request answered with protocol error: " +
                            outcome.error.message);
  }
  // An overload shed is a legitimate answer under pressure; only count
  // full-service responses with the echoed id as "ok".
  if (outcome.kind == ServiceClient::PredictOutcome::Kind::kResponse) {
    if (outcome.response.id != id) {
      return Status::DataLoss("response id mismatch");
    }
    ++report.predicts_ok;
  }
  return Status::OK();
}

Status RunMalformedSet(const SocketFaultOptions& options,
                       SocketFaultReport& report) {
  const std::string valid_ping = EncodePingPayload(0xBEEF);

  struct Case {
    const char* name;
    std::string bytes;
    WireError want;
    bool poisons;  // daemon closes the stream after the typed error
  };
  std::vector<Case> cases;
  cases.push_back({"bad magic",
                   RawFrame(0x58585858u, 5, 8, valid_ping),
                   WireError::kBadMagic, true});
  cases.push_back({"bad type",
                   RawFrame(kFrameMagic, 99, 8, valid_ping),
                   WireError::kBadType, true});
  cases.push_back({"zero payload", RawFrame(kFrameMagic, 5, 0, ""),
                   WireError::kZeroPayload, true});
  cases.push_back({"oversized length",
                   RawFrame(kFrameMagic, 1,
                            static_cast<uint32_t>(kMaxFramePayload) + 1, ""),
                   WireError::kOversized, true});
  cases.push_back({"garbage payload",
                   RawFrame(kFrameMagic, 1, 4, std::string("\x7f\x00\x33\x44", 4)),
                   WireError::kMalformed, false});

  for (const Case& c : cases) {
    ServiceClient client;
    P2PDT_RETURN_IF_ERROR(
        client.Connect(options.host, options.port, options.io_timeout));
    P2PDT_RETURN_IF_ERROR(client.SendRaw(c.bytes));
    ++report.malformed_sent;
    Status st = ExpectTypedError(client, c.want, options.io_timeout, report);
    if (!st.ok()) {
      return Status::DataLoss(std::string(c.name) + ": " + st.message());
    }
    if (c.poisons) {
      if (!DrainToEof(client, options.io_timeout)) {
        return Status::DataLoss(std::string(c.name) +
                                ": daemon did not close a poisoned stream");
      }
    } else {
      // Payload-level reject must NOT poison the stream: the same
      // connection serves a valid ping right after.
      P2PDT_RETURN_IF_ERROR(client.Ping(0xA11EE, options.io_timeout));
    }
  }

  // Truncated header then close: not enough bytes for a verdict, so no
  // error frame is owed; the daemon just reaps the close.
  {
    ServiceClient client;
    P2PDT_RETURN_IF_ERROR(
        client.Connect(options.host, options.port, options.io_timeout));
    P2PDT_RETURN_IF_ERROR(client.SendRaw(std::string("P2DF\x01", 5)));
    ++report.malformed_sent;
    client.Close();
  }
  return Status::OK();
}

Status RunResets(const SocketFaultOptions& options,
                 SocketFaultReport& report) {
  const std::string request_bytes = EncodeFrame(
      FrameType::kPredictRequest, EncodePredictRequest([&] {
        PredictRequest r;
        r.id = 0x5E7;
        r.requester = 7;
        r.doc = options.doc;
        return r;
      }()));
  for (int i = 0; i < options.resets; ++i) {
    ServiceClient client;
    P2PDT_RETURN_IF_ERROR(
        client.Connect(options.host, options.port, options.io_timeout));
    switch (i % 3) {
      case 0:  // RST with no bytes sent
        break;
      case 1:  // RST mid-frame
        P2PDT_RETURN_IF_ERROR(
            client.SendRaw(request_bytes.substr(0, request_bytes.size() / 2)));
        break;
      case 2:  // RST right after being served
        P2PDT_RETURN_IF_ERROR(
            OnePredict(client, options, 0x1000u + static_cast<uint64_t>(i),
                       report));
        break;
    }
    client.AbortiveClose();
    ++report.resets_done;
  }
  return Status::OK();
}

Status RunPartialWrites(const SocketFaultOptions& options,
                        SocketFaultReport& report) {
  Rng rng(DeriveSeed(options.seed, 0x9A37));
  for (int i = 0; i < options.partial_write_frames; ++i) {
    ServiceClient client;
    P2PDT_RETURN_IF_ERROR(
        client.Connect(options.host, options.port, options.io_timeout));
    PredictRequest request;
    request.id = 0x2000u + static_cast<uint64_t>(i);
    request.requester = request.id;
    request.doc = options.doc;
    const std::string bytes =
        EncodeFrame(FrameType::kPredictRequest, EncodePredictRequest(request));
    // Drip the frame in 1..3-byte slivers: worst-case TCP fragmentation.
    std::size_t off = 0;
    while (off < bytes.size()) {
      const std::size_t chunk = std::min<std::size_t>(
          static_cast<std::size_t>(1 + rng.UniformInt(0, 2)),
          bytes.size() - off);
      P2PDT_RETURN_IF_ERROR(client.SendRaw(bytes.substr(off, chunk)));
      off += chunk;
    }
    ServiceClient::PredictOutcome outcome;
    Frame frame;
    P2PDT_RETURN_IF_ERROR(client.ReadFrame(frame, options.io_timeout));
    if (frame.type == FrameType::kError) {
      return Status::DataLoss("dripped valid frame was rejected");
    }
    ++report.partial_frames_ok;
    if (frame.type == FrameType::kPredictResponse) ++report.predicts_ok;
  }
  return Status::OK();
}

Status RunFlood(const SocketFaultOptions& options,
                SocketFaultReport& report) {
  std::vector<ServiceClient> horde(
      static_cast<std::size_t>(options.connect_flood));
  for (ServiceClient& client : horde) {
    ++report.flood_attempted;
    const Status st =
        client.Connect(options.host, options.port, options.io_timeout);
    if (!st.ok()) {
      // Kernel-level refusal (backlog overflow) — still a bounded outcome.
      ++report.flood_refused_closed;
      continue;
    }
    const Status ping = client.Ping(0xF100D, options.io_timeout);
    if (ping.ok()) {
      ++report.flood_accepted;
      continue;
    }
    // The refusal is either the typed kTooManyConnections frame or a bare
    // close racing ahead of our read.
    if (ping.code() == StatusCode::kDataLoss ||
        ping.code() == StatusCode::kIOError) {
      if (ping.code() == StatusCode::kDataLoss) {
        ++report.flood_refused_typed;
        ++report.typed_errors_received;
      } else {
        ++report.flood_refused_closed;
      }
      client.Close();
      continue;
    }
    return Status::DataLoss("flood connection neither served nor refused: " +
                            ping.ToString());
  }
  // Holding the horde open until here is the point: the cap must bind
  // while they are all simultaneously alive.
  return Status::OK();
}

}  // namespace

Result<SocketFaultReport> RunSocketFaults(const SocketFaultOptions& options) {
  SocketFaultReport report;

  if (options.malformed_set) {
    P2PDT_RETURN_IF_ERROR(RunMalformedSet(options, report));
  }
  P2PDT_RETURN_IF_ERROR(RunResets(options, report));
  P2PDT_RETURN_IF_ERROR(RunPartialWrites(options, report));

  // Slowloris stalls: open, send a partial header, go silent. Left open —
  // the daemon's deadline wheel owns their fate; callers with a short
  // idle_timeout can observe stalls_reaped via the EOF poll below.
  std::vector<ServiceClient> stalled(
      static_cast<std::size_t>(options.mid_frame_stalls));
  for (ServiceClient& client : stalled) {
    P2PDT_RETURN_IF_ERROR(
        client.Connect(options.host, options.port, options.io_timeout));
    P2PDT_RETURN_IF_ERROR(client.SendRaw(std::string("P2DF\x05", 5)));
    ++report.stalls_opened;
  }

  if (options.connect_flood > 0) {
    P2PDT_RETURN_IF_ERROR(RunFlood(options, report));
  }

  // Survival probe: a fresh connection must still get full service.
  {
    ServiceClient client;
    P2PDT_RETURN_IF_ERROR(
        client.Connect(options.host, options.port, options.io_timeout));
    P2PDT_RETURN_IF_ERROR(
        client.Ping(DeriveSeed(options.seed, 0x11FE), options.io_timeout));
    P2PDT_RETURN_IF_ERROR(OnePredict(client, options, 0x3000u, report));
    report.liveness_ok = true;
  }

  // Wait out the reaper: the daemon owes every stalled connection an EOF
  // (or RST) within its idle deadline. The wait budget is io_timeout, so
  // callers set io_timeout > the daemon's idle_timeout to observe reaps.
  const double reap_deadline = MonotonicSeconds() + options.io_timeout;
  for (ServiceClient& client : stalled) {
    while (MonotonicSeconds() < reap_deadline) {
      struct pollfd pfd;
      pfd.fd = client.fd();
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int wait_ms = static_cast<int>(
                              (reap_deadline - MonotonicSeconds()) * 1e3) +
                          1;
      if (poll(&pfd, 1, wait_ms) <= 0) break;  // deadline, not reaped
      const Status st = client.ReadAvailable();
      if (client.eof() || !st.ok()) {
        ++report.stalls_reaped;
        break;
      }
    }
    client.Close();
  }

  return report;
}

}  // namespace p2pdt
