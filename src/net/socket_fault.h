#ifndef P2PDT_NET_SOCKET_FAULT_H_
#define P2PDT_NET_SOCKET_FAULT_H_

#include <cstdint>
#include <string>

#include "common/sparse_vector.h"
#include "common/status.h"

namespace p2pdt {

/// Scripted socket-level abuse against a live p2pdtd instance. Each scenario
/// attacks one robustness claim; the report records what the daemon answered
/// and whether it stayed alive. A scenario failing to elicit the documented
/// response (typed error frame, refusal, survival ping) fails the run — the
/// injector is an oracle, not just a traffic source.
struct SocketFaultOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint64_t seed = 0xFA17;

  /// Connections reset abruptly (SO_LINGER{1,0} → RST) at varied points:
  /// before any bytes, mid-request, and after a served response.
  int resets = 9;
  /// Connections that send a partial frame (header or payload prefix) and
  /// then go silent — the slowloris shape. They are left open; the caller
  /// decides whether to wait out the daemon's idle reaper.
  int mid_frame_stalls = 4;
  /// Valid frames delivered one byte at a time (worst-case fragmentation);
  /// each must still round-trip bit-identically.
  int partial_write_frames = 6;
  /// Simultaneous extra connections held open to push past the daemon's
  /// max_connections cap; refusals must be typed.
  int connect_flood = 0;
  /// Run the fixed malformed-bytes set (bad magic, bad type, zero payload,
  /// oversized length, truncated header + close, garbage payload).
  bool malformed_set = true;

  /// A well-formed document for the valid requests the faults interleave
  /// with (empty is fine — the daemon predicts on whatever it is handed).
  SparseVector doc;
  double io_timeout = 5.0;
};

struct SocketFaultReport {
  int resets_done = 0;
  int stalls_opened = 0;
  int stalls_reaped = 0;  // daemon closed them (observed EOF/RST client-side)
  int partial_frames_ok = 0;
  int malformed_sent = 0;
  int typed_errors_received = 0;  // kError frames answering the abuse
  int flood_attempted = 0;
  int flood_accepted = 0;
  int flood_refused_typed = 0;  // refusal carried kTooManyConnections
  int flood_refused_closed = 0; // refusal visible only as a close
  int predicts_ok = 0;          // valid requests served amid the faults
  /// Final fresh-connection ping round-trip succeeded: the daemon survived
  /// everything above.
  bool liveness_ok = false;
};

/// Runs every enabled scenario in a deterministic order. Returns the report,
/// or an error when the daemon violated the robustness contract (wrong or
/// missing typed response, failed liveness probe).
Result<SocketFaultReport> RunSocketFaults(const SocketFaultOptions& options);

}  // namespace p2pdt

#endif  // P2PDT_NET_SOCKET_FAULT_H_
