# Empty dependencies file for p2pdt_common.
# This may be replaced when dependencies are built.
