#include "ml/multilabel.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/thread_pool.h"

namespace p2pdt {

OneVsAllModel& OneVsAllModel::operator=(const OneVsAllModel& other) {
  if (this == &other) return *this;
  models_.clear();
  models_.reserve(other.models_.size());
  for (const auto& m : other.models_) {
    models_.push_back(m ? m->Clone() : nullptr);
  }
  return *this;
}

std::vector<double> OneVsAllModel::Scores(const SparseVector& x) const {
  std::vector<double> scores(models_.size(),
                             -std::numeric_limits<double>::infinity());
  for (std::size_t t = 0; t < models_.size(); ++t) {
    if (models_[t]) scores[t] = models_[t]->Decision(x);
  }
  return scores;
}

std::vector<TagId> OneVsAllModel::PredictTags(
    const SparseVector& x, const TagDecisionPolicy& policy) const {
  return DecideTags(Scores(x), policy);
}

void OneVsAllModel::SetModel(TagId tag,
                             std::unique_ptr<BinaryClassifier> m) {
  if (tag >= models_.size()) models_.resize(tag + 1);
  models_[tag] = std::move(m);
}

std::size_t OneVsAllModel::WireSize() const {
  std::size_t bytes = 0;
  for (const auto& m : models_) {
    if (m) bytes += m->WireSize();
  }
  return bytes;
}

std::vector<TagId> DecideTags(const std::vector<double>& scores,
                              const TagDecisionPolicy& policy) {
  std::vector<TagId> tags;
  for (std::size_t t = 0; t < scores.size(); ++t) {
    if (scores[t] > policy.threshold) tags.push_back(static_cast<TagId>(t));
  }
  if (tags.empty() && policy.assign_best_when_empty && !scores.empty()) {
    std::size_t best =
        std::max_element(scores.begin(), scores.end()) - scores.begin();
    if (std::isfinite(scores[best])) tags.push_back(static_cast<TagId>(best));
  }
  if (policy.max_tags > 0 && tags.size() > policy.max_tags) {
    // Keep the highest-scoring tags.
    std::sort(tags.begin(), tags.end(), [&](TagId a, TagId b) {
      return scores[a] > scores[b];
    });
    tags.resize(policy.max_tags);
    std::sort(tags.begin(), tags.end());
  }
  return tags;
}

namespace {

/// Shared body over any dataset-like view (materialized or flyweight):
/// only size/num_tags/TagCounts/OneAgainstAll are touched, and both views
/// return bit-identical results for those.
template <typename Data>
Result<OneVsAllModel> TrainOneVsAllImpl(const Data& data,
                                        const IndexedBinaryTrainer& trainer,
                                        const OneVsAllTrainOptions& options) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot train one-vs-all on empty data");
  }
  std::vector<std::unique_ptr<BinaryClassifier>> models(data.num_tags());
  std::vector<std::size_t> counts = data.TagCounts();

  // Degenerate single-class tags resolve without training; the rest form
  // the worklist that fans out across the pool.
  std::vector<TagId> work;
  for (TagId t = 0; t < data.num_tags(); ++t) {
    if (counts[t] == 0) {
      models[t] = std::make_unique<ConstantClassifier>(-1.0);
    } else if (counts[t] == data.size()) {
      models[t] = std::make_unique<ConstantClassifier>(1.0);
    } else {
      work.push_back(t);
    }
  }

  // Each task writes only its own slots; failure statuses are collected
  // per tag so the reported error is the lowest failing tag no matter
  // which thread hit it first.
  std::vector<Status> failures(work.size(), Status::OK());
  ParallelFor(0, work.size(), options.grain, options.num_threads,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                  const TagId t = work[i];
                  Result<std::unique_ptr<BinaryClassifier>> model =
                      trainer(data.OneAgainstAll(t), t);
                  if (!model.ok()) {
                    failures[i] = model.status();
                    continue;
                  }
                  models[t] = std::move(model).value();
                }
              });
  for (const Status& s : failures) {
    if (!s.ok()) return s;
  }
  return OneVsAllModel(std::move(models));
}

/// Adapts a tag-oblivious trainer to the indexed interface.
IndexedBinaryTrainer IgnoreTag(const BinaryTrainer& trainer) {
  return [&trainer](const std::vector<Example>& examples, TagId)
             -> Result<std::unique_ptr<BinaryClassifier>> {
    return trainer(examples);
  };
}

}  // namespace

Result<OneVsAllModel> TrainOneVsAll(const MultiLabelDataset& data,
                                    const BinaryTrainer& trainer,
                                    const OneVsAllTrainOptions& options) {
  return TrainOneVsAllImpl(data, IgnoreTag(trainer), options);
}

Result<OneVsAllModel> TrainOneVsAll(const MultiLabelDataset& data,
                                    const IndexedBinaryTrainer& trainer,
                                    const OneVsAllTrainOptions& options) {
  return TrainOneVsAllImpl(data, trainer, options);
}

Result<OneVsAllModel> TrainOneVsAll(const DatasetShard& data,
                                    const BinaryTrainer& trainer,
                                    const OneVsAllTrainOptions& options) {
  return TrainOneVsAllImpl(data, IgnoreTag(trainer), options);
}

Result<OneVsAllModel> TrainOneVsAll(const DatasetShard& data,
                                    const IndexedBinaryTrainer& trainer,
                                    const OneVsAllTrainOptions& options) {
  return TrainOneVsAllImpl(data, trainer, options);
}

}  // namespace p2pdt
