#include "p2pml/cempar.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/profile.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "ml/serialization.h"
#include "p2psim/sharding.h"

namespace p2pdt {

namespace {

/// Per-phase latency family shared by both classifiers; resolved once per
/// call site so recording stays lock-free (see MetricsRegistry).
Histogram* PhaseHistogram(MetricsRegistry* metrics, const char* phase) {
  if (metrics == nullptr) return nullptr;
  return &metrics->GetHistogram(
      "phase_seconds", {{"classifier", "cempar"}, {"phase", phase}});
}

/// Version byte of the CEMPaR peer-snapshot layout (inside the checkpoint
/// envelope, which already guards integrity; this guards evolution).
constexpr uint8_t kCemparSnapshotVersion = 1;

/// Wire size of a prediction request: the document vector plus a small
/// header naming the homes being queried.
std::size_t RequestBytes(const SparseVector& x) { return x.WireSize() + 16; }

/// Wire size of a response carrying `n` per-tag scores.
std::size_t ResponseBytes(std::size_t n) { return 16 + 12 * n; }

/// What a kGarbageModel adversary uploads in place of its honest fit: a
/// handful of support vectors whose coordinates cycle NaN / inf / 1e30 at
/// seeded feature ids, under a NaN bias. Undefended cascades absorb the
/// poison (SMO still terminates: NaN comparisons drop the indices from the
/// working set); defended intakes reject it as non_finite.
KernelSvmModel GarbageKernelModel(const Kernel& kernel, Rng& rng) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<SupportVector> svs;
  for (int k = 0; k < 6; ++k) {
    SupportVector sv;
    double v = k % 3 == 0 ? kNan : k % 3 == 1 ? kInf : 1.0e30;
    sv.x = SparseVector::FromPairs(
        {{static_cast<uint32_t>(rng.NextU64(4096)), v}});
    sv.y = k % 2 == 0 ? 1.0 : -1.0;
    sv.alpha = 1.0;
    svs.push_back(std::move(sv));
  }
  return KernelSvmModel(kernel, std::move(svs), kNan);
}

}  // namespace

Cempar::Cempar(Simulator& sim, PhysicalNetwork& net, ChordOverlay& chord,
               CemparOptions options)
    : sim_(sim), net_(net), chord_(chord), options_(options) {
  if (options_.regions_per_tag == 0) options_.regions_per_tag = 1;
  if (options_.reliable_transport) {
    transport_ =
        std::make_unique<ReliableTransport>(sim_, net_, options_.transport);
    transport_->SetSuspicionListener(
        [this](NodeId suspect) { OnSuspect(suspect); });
  }
  if (options_.serve.enabled) {
    serve_ = std::make_unique<ServeQueueSet>(options_.serve);
    if (transport_ != nullptr) {
      // Wire-level admission control: every fresh prediction request (or
      // batch) arriving at a super-peer is charged against its serving
      // queue; rejects travel back as typed overload NACKs.
      transport_->SetAdmissionHook(
          [this](NodeId to, MessageType type) -> AdmissionVerdict {
            AdmissionVerdict v;
            if (type != MessageType::kPredictionRequest) return v;
            Admission a = AdmitServe(to);
            if (a.outcome != AdmitOutcome::kAccept) {
              v.accept = false;
              v.retry_after = a.retry_after;
              return v;
            }
            v.delay = a.delay;
            return v;
          });
    }
  }
  if (options_.predict_cache.enabled) {
    cache_ = std::make_unique<PredictCacheSet>(options_.predict_cache);
  }
}

Admission Cempar::AdmitServe(NodeId owner) {
  Admission a = serve_->Admit(owner, sim_.Now());
  if (MetricsRegistry* metrics = net_.metrics()) {
    metrics->GetGauge("serve_queue_depth", {{"classifier", "cempar"}})
        .Set(static_cast<double>(a.depth));
    if (a.outcome != AdmitOutcome::kAccept) {
      metrics
          ->GetCounter("requests_shed",
                       {{"classifier", "cempar"},
                        {"reason", AdmitOutcomeToString(a.outcome)}})
          .Increment();
    }
  }
  return a;
}

uint64_t Cempar::HomeKey(TagId tag, std::size_t region) const {
  return chord_.HashToKey((uint64_t{tag} << 20) | region);
}

Status Cempar::Setup(std::vector<MultiLabelDataset> peer_data,
                     TagId num_tags) {
  std::vector<DatasetShard> shards;
  shards.reserve(peer_data.size());
  for (MultiLabelDataset& data : peer_data) {
    shards.push_back(DatasetShard::Own(std::move(data)));
  }
  return SetupShards(std::move(shards), num_tags);
}

Status Cempar::SetupShards(std::vector<DatasetShard> peer_data,
                           TagId num_tags) {
  if (peer_data.size() != net_.num_nodes()) {
    return Status::InvalidArgument(
        "peer_data size must equal the number of underlay nodes");
  }
  peer_data_ = std::move(peer_data);
  num_tags_ = num_tags;
  homes_.assign(static_cast<std::size_t>(num_tags_) *
                    options_.regions_per_tag,
                Home{});
  local_models_.assign(peer_data_.size(), {});
  model_version_.assign(peer_data_.size(), 0);
  owner_cache_.assign(peer_data_.size(), {});
  trained_ = false;
  models_rejected_ = 0;
  votes_discarded_ = 0;
  reputation_.reset();
  if (options_.reputation.enabled) {
    reputation_ = std::make_unique<ReputationManager>(
        options_.reputation, net_.metrics(), "cempar");
    reputation_->Reset(peer_data_.size());
    for (NodeId p = 0; p < peer_data_.size(); ++p) {
      reputation_->SetHoldout(p, peer_data_[p]);
    }
  }
  return Status::OK();
}

void Cempar::RecordRejected(ModelRejectReason reason) {
  ++models_rejected_;
  if (MetricsRegistry* metrics = net_.metrics()) {
    metrics
        ->GetCounter("models_rejected",
                     {{"classifier", "cempar"},
                      {"reason", ModelRejectReasonToString(reason)}})
        .Increment();
  }
}

void Cempar::PurgeContributor(NodeId observer, NodeId contributor) {
  for (Home& home : homes_) {
    if (home.owner != observer) continue;
    if (home.locals.erase(contributor) > 0) home.dirty = true;
    home.local_versions.erase(contributor);
  }
  BumpPublishEpoch();
}

DefenseStats Cempar::defense_stats() const {
  DefenseStats stats;
  stats.models_rejected = models_rejected_;
  stats.votes_discarded = votes_discarded_;
  if (reputation_ != nullptr) {
    stats.quarantined = reputation_->num_quarantined();
    stats.trust_observations = reputation_->observations();
  }
  return stats;
}

void Cempar::UploadModel(NodeId peer, TagId tag, std::size_t region,
                         KernelSvmModel model, uint32_t version,
                         std::shared_ptr<std::function<void()>> barrier) {
  const std::size_t h = HomeIndex(tag, region);
  if (Histogram* hist = PhaseHistogram(net_.metrics(), "sv_upload")) {
    // Sim-time from issue to settlement (lookup + upload + retries), no
    // matter which path below settles the barrier.
    const SimTime started = sim_.Now();
    auto inner = barrier;
    barrier = std::make_shared<std::function<void()>>(
        [this, hist, started, inner] {
          hist->Observe(sim_.Now() - started);
          (*inner)();
        });
  }
  chord_.Lookup(peer, HomeKey(tag, region),
                [this, peer, h, version, model = std::move(model),
                 barrier](ChordOverlay::LookupResult res) {
    if (!res.success) {
      (*barrier)();
      return;
    }
    if (options_.cache_super_peer_lookups) {
      owner_cache_[peer][h] = res.owner;
    }
    auto install = [this, h, peer, version, owner = res.owner, model] {
      Home& home = homes_[h];
      if (home.owner == kInvalidNode) home.owner = owner;
      // A model delivered to a node that is not the home's collection
      // point (possible under churn-induced lookup disagreement) is
      // simply unused — it was still paid for on the wire.
      if (home.owner != owner) return;
      // Super-peer intake gate: sanitation first (structural), then
      // reputation (behavioral). Honest models pass both untouched.
      if (options_.sanitize.enabled) {
        ModelRejectReason reason = SanitizeKernelModel(model, options_.sanitize);
        if (reason != ModelRejectReason::kNone) {
          RecordRejected(reason);
          return;
        }
      }
      if (reputation_ != nullptr && owner != peer) {
        const TagId tag = static_cast<TagId>(h / options_.regions_per_tag);
        double score = reputation_->ScoreBinary(owner, model, tag);
        if (reputation_->Observe(owner, peer, score)) {
          // Transition into quarantine: drop what this contributor already
          // got merged before the evidence accumulated.
          PurgeContributor(owner, peer);
        }
        if (reputation_->IsQuarantined(owner, peer)) {
          RecordRejected(ModelRejectReason::kDistrusted);
          return;
        }
      }
      // Version-guarded intake: a stamped upload replaces the peer's
      // stored local iff it is strictly newer than the held one. Duplicate
      // deliveries (same version) and out-of-order stragglers (older
      // version landing after a refresh) leave the stored model untouched
      // — an old version can never clobber a fresh one. All initial
      // publishes carry version 0, reproducing the legacy first-write-wins
      // emplace exactly.
      auto existing = home.locals.find(peer);
      if (existing != home.locals.end()) {
        uint32_t held = 0;
        auto vit = home.local_versions.find(peer);
        if (vit != home.local_versions.end()) held = vit->second;
        if (version > held) {
          existing->second = model;  // old-version eviction at the home
          home.local_versions[peer] = version;
        }
      } else {
        home.locals.emplace(peer, model);
        if (version > 0) home.local_versions[peer] = version;
      }
      home.dirty = true;
    };
    const std::size_t bytes = model.WireSize() + 16;
    if (transport_) {
      // Reliable path: the upload retries until ACKed or the retry budget
      // is exhausted; the barrier settles on either outcome, never on
      // receiver-side delivery (idempotent under retransmission).
      transport_->SendReliable(
          peer, res.owner, bytes, MessageType::kModelUpload,
          std::move(install), [barrier] { (*barrier)(); },
          [barrier] { (*barrier)(); });
      return;
    }
    net_.Send(
        peer, res.owner, bytes, MessageType::kModelUpload,
        [install = std::move(install), barrier] {
          install();
          (*barrier)();
        },
        [barrier] { (*barrier)(); });
  });
}

void Cempar::Train(std::function<void(Status)> on_complete) {
  auto pending = std::make_shared<std::size_t>(1);  // root token
  auto barrier = std::make_shared<std::function<void()>>();
  *barrier = [this, pending, on_complete = std::move(on_complete)] {
    if (--*pending > 0) return;
    CascadeAll();
    ReplicateRegionals();
    trained_ = true;
    on_complete(Status::OK());
  };

  // Phase 1 — pure compute: fit one local SVM per (peer, tag) cell. The
  // grid fans out across the thread pool; each task reads immutable peer
  // data and writes only its own result slot. SMO itself is deterministic,
  // so phase 1 produces the same models at any thread count.
  struct GridCell {
    NodeId peer;
    TagId tag;
    std::size_t region;
  };
  std::vector<GridCell> grid;
  for (NodeId peer = 0; peer < peer_data_.size(); ++peer) {
    if (!net_.IsOnline(peer) || peer_data_[peer].empty()) continue;
    std::vector<std::size_t> counts = peer_data_[peer].TagCounts();
    const std::size_t region = peer % options_.regions_per_tag;
    for (TagId tag = 0; tag < num_tags_; ++tag) {
      if (tag >= counts.size() || counts[tag] == 0) continue;
      grid.push_back({peer, tag, region});
    }
  }
  // Adversary behaviors resolved on the driver thread before the fan-out so
  // workers never consult simulator state.
  const AdversaryDirectory* adversaries = net_.adversaries();
  std::vector<uint8_t> flip(grid.size(), 0);
  if (adversaries != nullptr) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      flip[i] = adversaries->BehaviorAt(grid[i].peer, sim_.Now()) ==
                AdversaryBehavior::kLabelFlip;
    }
  }
  // Resolved on the driver thread; workers record wall time per cell
  // lock-free (null when metrics are disabled).
  Histogram* train_hist = PhaseHistogram(net_.metrics(), "local_train");

  // Sharded compute/commit phase. Each grid cell fits its SVM on a pool
  // worker and stages the protocol side as a commit; ShardedPhase then runs
  // the commits on the driver thread in grid order — exactly the order the
  // old serial loop used — so the simulated message schedule is unchanged
  // for every shard and thread count. The fitted model is *moved* through
  // the commit closure, never copied.
  ShardPlanOptions plan;
  plan.shards = options_.sim_shards;
  plan.num_threads = options_.num_threads;
  // SMO draws no randomness, so the per-shard streams are unused by the
  // work itself; any fixed seed keeps the plan deterministic.
  plan.seed = 0;
  ShardedPhase(grid.size(), plan, [&](std::size_t i, Rng&) -> UniqueFunction {
    const GridCell cell = grid[i];
    PhaseScope profile("local_train");
    Stopwatch cell_wall;
    std::vector<Example> train =
        peer_data_[cell.peer].OneAgainstAll(cell.tag);
    if (flip[i] != 0) {
      // Label-flip poisoning: the model is perfectly anti-correlated with
      // the truth, which is exactly what cross-validation scores near zero.
      for (Example& ex : train) ex.y = -ex.y;
    }
    Result<KernelSvmModel> model = TrainKernelSvm(train, options_.svm);
    if (train_hist != nullptr) {
      train_hist->Observe(cell_wall.ElapsedSeconds());
    }
    return [this, cell, adversaries, pending, barrier,
            model = std::move(model)]() mutable {
      if (!model.ok()) {
        P2PDT_LOG(Warning) << "peer " << cell.peer << " tag " << cell.tag
                           << " local SVM failed: "
                           << model.status().ToString();
        return;
      }
      KernelSvmModel upload = std::move(model).value();
      if (adversaries != nullptr) {
        switch (adversaries->BehaviorAt(cell.peer, sim_.Now())) {
          case AdversaryBehavior::kGarbageModel: {
            // Seeded per (peer, tag, region) from the injector's dedicated
            // corruption stream — serial and parallel runs corrupt
            // identically, and armed-but-idle plans never draw from it.
            Rng crng(DeriveSeed(adversaries->CorruptionSeed(cell.peer),
                                cell.tag, cell.region));
            upload = GarbageKernelModel(options_.svm.kernel, crng);
            break;
          }
          case AdversaryBehavior::kDimensionMismatch: {
            // Append a support vector at a feature id far beyond any
            // plausible lexicon.
            std::vector<SupportVector> svs = upload.support_vectors();
            SupportVector sv;
            sv.x = SparseVector::FromPairs({{1u << 30, 1.0}});
            sv.y = 1.0;
            sv.alpha = 1.0;
            svs.push_back(std::move(sv));
            upload = KernelSvmModel(upload.kernel(), std::move(svs),
                                    upload.bias());
            break;
          }
          default:
            break;
        }
      }
      // Adversaries keep their corrupted model locally too: repair rounds
      // re-upload the same poison (and get re-rejected at the gate).
      local_models_[cell.peer].emplace(HomeIndex(cell.tag, cell.region),
                                       upload);
      ++*pending;
      UploadModel(cell.peer, cell.tag, cell.region, std::move(upload),
                  model_version_[cell.peer], barrier);
    };
  });
  (*barrier)();  // consume the root token
}

void Cempar::CascadeAll() {
  // Regional models are about to change: every cached prediction computed
  // against the old cascade is stale.
  BumpPublishEpoch();
  Histogram* cascade_hist = PhaseHistogram(net_.metrics(), "cascade_merge");
  for (Home& home : homes_) {
    if (home.locals.empty() || !home.dirty) continue;
    home.dirty = false;
    std::vector<const KernelSvmModel*> locals;
    locals.reserve(home.locals.size());
    for (const auto& [peer, model] : home.locals) {
      // Defense in depth at the merge: locals that slipped in before a
      // quarantine (or before sanitation was enabled) stay out of the
      // cascade. Both predicates are false for every honest model.
      if (options_.sanitize.enabled &&
          SanitizeKernelModel(model, options_.sanitize) !=
              ModelRejectReason::kNone) {
        continue;
      }
      if (reputation_ != nullptr && home.owner != kInvalidNode &&
          reputation_->IsQuarantined(home.owner, peer)) {
        continue;
      }
      locals.push_back(&model);
    }
    if (locals.empty()) {
      // Every contributor was rejected: the home has no trustworthy model.
      home.has_regional = false;
      home.weight = 0.0;
      continue;
    }
    Stopwatch merge_wall;
    PhaseScope profile("cascade_merge");
    Result<KernelSvmModel> regional =
        CascadeTree(locals, options_.svm, options_.cascade_fan_in);
    if (cascade_hist != nullptr) {
      cascade_hist->Observe(merge_wall.ElapsedSeconds());
    }
    if (!regional.ok()) {
      P2PDT_LOG(Warning) << "cascade failed: " << regional.status().ToString();
      continue;
    }
    home.regional = std::move(regional).value();
    home.has_regional = true;
    // Vote weight counts only the models that actually entered the merge.
    home.weight = static_cast<double>(locals.size());
  }
}

std::vector<Cempar::PredictVote> Cempar::EvaluateHomes(
    NodeId owner, const std::vector<std::size_t>& home_list,
    const SparseVector& x) {
  std::vector<PredictVote> partials;
  // A vote-spam super-peer answers every queried tag with a huge
  // constant score under an inflated weight — the classic
  // drown-the-honest-votes attack the requester-side gate exists for.
  const AdversaryDirectory* adv = net_.adversaries();
  const bool spam = adv != nullptr && adv->BehaviorAt(owner, sim_.Now()) ==
                                          AdversaryBehavior::kVoteSpam;
  for (std::size_t h : home_list) {
    const Home& home = homes_[h];
    if (home.owner != owner || !home.has_regional) continue;
    TagId tag = static_cast<TagId>(h / options_.regions_per_tag);
    if (spam) {
      partials.push_back({tag, 1.0e9, 1.0e3});
    } else {
      partials.push_back({tag, home.regional.Decision(x), home.weight});
    }
  }
  if (Tracer* tracer = net_.tracer()) {
    // Runs inside the request message's delivery, so the marker lands
    // in the prediction's trace at the super-peer.
    tracer->Instant("super_peer_vote", sim_.Now(), owner, tracer->current());
  }
  return partials;
}

void Cempar::EnqueueBatch(NodeId requester, NodeId owner, BatchMember member) {
  const auto key = std::make_pair(requester, owner);
  PendingBatch& batch = batches_[key];
  batch.members.push_back(std::move(member));
  if (batch.members.size() == 1) {
    batch.generation = ++batch_generation_;
    const uint64_t gen = batch.generation;
    // First member opens the window; companions queued before it closes
    // ride the same round-trip.
    sim_.Schedule(options_.batch_window_seconds, [this, key, gen] {
      auto it = batches_.find(key);
      if (it == batches_.end() || it->second.generation != gen) return;
      FlushBatch(key.first, key.second);
    });
  } else if (batch.members.size() >= options_.max_batch) {
    FlushBatch(requester, owner);
  }
}

void Cempar::FlushBatch(NodeId requester, NodeId owner) {
  auto it = batches_.find(std::make_pair(requester, owner));
  if (it == batches_.end()) return;
  auto members =
      std::make_shared<std::vector<BatchMember>>(std::move(it->second.members));
  batches_.erase(it);
  std::size_t request_bytes = 0;
  for (const BatchMember& m : *members) request_bytes += RequestBytes(m.x);
  if (MetricsRegistry* metrics = net_.metrics()) {
    static const std::vector<double> kBatchBounds = {1,  2,  3,  4,  6,
                                                     8,  12, 16, 24, 32};
    metrics->GetHistogram("batch_size", {{"classifier", "cempar"}},
                          kBatchBounds)
        .Observe(static_cast<double>(members->size()));
  }
  // One coalesced round-trip: the batch pays a single admission charge and
  // a single ACK exchange for every member.
  transport_->SendReliable(
      requester, owner, request_bytes, MessageType::kPredictionRequest,
      /*on_deliver=*/
      [this, owner, requester, members] {
        auto all =
            std::make_shared<std::vector<std::vector<PredictVote>>>();
        std::size_t response_bytes = 0;
        all->reserve(members->size());
        for (const BatchMember& m : *members) {
          all->push_back(EvaluateHomes(owner, m.home_list, m.x));
          response_bytes += ResponseBytes(all->back().size());
        }
        transport_->SendReliable(
            owner, requester, response_bytes, MessageType::kPredictionResponse,
            /*on_deliver=*/
            [members, all] {
              for (std::size_t i = 0; i < members->size(); ++i) {
                (*members)[i].deliver((*all)[i]);
              }
            },
            /*on_acked=*/nullptr,
            /*on_give_up=*/
            [members] {
              for (const BatchMember& m : *members) m.fail();
            });
      },
      /*on_acked=*/nullptr,
      /*on_give_up=*/
      [members] {
        for (const BatchMember& m : *members) m.fail();
      });
}

void Cempar::Predict(NodeId requester, const SparseVector& x,
                     std::function<void(P2PPrediction)> done) {
  if (!trained_ || requester >= peer_data_.size() ||
      !net_.IsOnline(requester)) {
    sim_.Schedule(0.0, [done = std::move(done)] {
      done({{}, {}, false});
    });
    return;
  }

  // Requester-side versioned cache: a hit answers instantly with zero
  // network traffic and zero super-peer load — how a flash crowd on a hot
  // document set is absorbed before it reaches the serving queues.
  if (cache_ != nullptr) {
    PredictionCache& cache = cache_->ForNode(requester);
    const uint64_t key = FingerprintVector(x);
    CacheOutcome oc = CacheOutcome::kMiss;
    const P2PPrediction* hit =
        cache.Lookup(key, publish_epoch_, sim_.Now(), &oc);
    if (MetricsRegistry* metrics = net_.metrics()) {
      const char* family = oc == CacheOutcome::kHit     ? "cache_hits"
                           : oc == CacheOutcome::kStale ? "cache_stale"
                                                        : "cache_misses";
      metrics->GetCounter(family, {{"classifier", "cempar"}}).Increment();
    }
    if (hit != nullptr) {
      P2PPrediction out = *hit;
      out.cached = true;
      sim_.Schedule(0.0, [done = std::move(done), out = std::move(out)] {
        done(std::move(out));
      });
      return;
    }
  }

  struct PredictCtx {
    using Vote = PredictVote;
    /// Every vote in arrival order. Aggregation happens at finalize so the
    /// requester can gate and trim; surviving votes are summed in exactly
    /// this order, which keeps clean runs bit-identical to the old
    /// accumulate-on-arrival code.
    std::vector<Vote> votes;
    std::vector<double> weight_sum;
    std::vector<double> score_sum;
    std::size_t remaining = 0;
    std::size_t responded = 0;
    /// Request groups shed by admission control (fire-and-forget or local
    /// path; the reliable path surfaces sheds as overload give-ups).
    std::size_t shed = 0;
    std::function<void(P2PPrediction)> done;
    /// End-to-end prediction span; lookups, requests and responses all
    /// nest under it (or under its descendants).
    TraceContext span;
    SimTime started = 0.0;
  };
  auto ctx = std::make_shared<PredictCtx>();
  ctx->weight_sum.assign(num_tags_, 0.0);
  ctx->score_sum.assign(num_tags_, 0.0);
  ctx->done = std::move(done);
  ctx->started = sim_.Now();
  if (Tracer* tracer = net_.tracer()) {
    ctx->span = tracer->StartAuto("cempar/predict", sim_.Now(), requester);
    tracer->AddArg(ctx->span, "requester", std::to_string(requester));
  }

  auto finalize_one = [this, ctx, requester, x] {
    if (--ctx->remaining > 0) return;
    P2PPrediction out;
    out.scores.assign(num_tags_, 0.0);
    PhaseScope profile("vote");
    Stopwatch vote_wall;
    // Requester-side robust voting. Two layers, both inert on honest
    // traffic: (1) the sanitation gate drops non-finite or absurdly large
    // scores (the vote-spam signature), (2) with reputation on, a per-tag
    // median trim drops outliers that stayed under the magnitude bound.
    std::vector<char> keep(ctx->votes.size(), 1);
    uint64_t discarded = 0;
    if (options_.sanitize.enabled) {
      for (std::size_t i = 0; i < ctx->votes.size(); ++i) {
        const PredictCtx::Vote& v = ctx->votes[i];
        if (!std::isfinite(v.score) || !std::isfinite(v.weight) ||
            std::fabs(v.score) > options_.sanitize.max_abs_value ||
            v.weight < 0.0 || v.weight > options_.sanitize.max_abs_value) {
          keep[i] = 0;
          ++discarded;
        }
      }
    }
    if (reputation_ != nullptr && !ctx->votes.empty()) {
      std::vector<std::vector<double>> per_tag(num_tags_);
      for (std::size_t i = 0; i < ctx->votes.size(); ++i) {
        if (keep[i] != 0 && ctx->votes[i].tag < num_tags_) {
          per_tag[ctx->votes[i].tag].push_back(ctx->votes[i].score);
        }
      }
      std::vector<double> median(num_tags_, 0.0);
      std::vector<char> trimmable(num_tags_, 0);
      for (TagId t = 0; t < num_tags_; ++t) {
        if (per_tag[t].size() < 3) continue;  // no majority to trim against
        std::sort(per_tag[t].begin(), per_tag[t].end());
        median[t] = per_tag[t][per_tag[t].size() / 2];
        trimmable[t] = 1;
      }
      for (std::size_t i = 0; i < ctx->votes.size(); ++i) {
        const PredictCtx::Vote& v = ctx->votes[i];
        if (keep[i] == 0 || v.tag >= num_tags_ || trimmable[v.tag] == 0) {
          continue;
        }
        if (std::fabs(v.score - median[v.tag]) >
            options_.vote_outlier_threshold) {
          keep[i] = 0;
          ++discarded;
        }
      }
    }
    if (discarded > 0) {
      votes_discarded_ += discarded;
      if (MetricsRegistry* metrics = net_.metrics()) {
        metrics
            ->GetCounter("votes_discarded", {{"classifier", "cempar"}})
            .Increment(discarded);
      }
    }
    for (std::size_t i = 0; i < ctx->votes.size(); ++i) {
      const PredictCtx::Vote& v = ctx->votes[i];
      if (keep[i] == 0 || v.tag >= num_tags_) continue;
      ctx->score_sum[v.tag] += v.weight * v.score;
      ctx->weight_sum[v.tag] += v.weight;
    }
    for (TagId t = 0; t < num_tags_; ++t) {
      if (ctx->weight_sum[t] > 0.0) {
        out.scores[t] = ctx->score_sum[t] / ctx->weight_sum[t];
      }
    }
    out.success = ctx->responded > 0;
    if (!out.success && transport_ != nullptr &&
        LocalScores(requester, x, out.scores)) {
      // Every remote path exhausted its retry budget: degrade to the
      // requester's own local models rather than failing outright.
      out.success = true;
      out.degraded = true;
    }
    out.tags = out.success ? DecideTags(out.scores, options_.policy)
                           : std::vector<TagId>{};
    if (MetricsRegistry* metrics = net_.metrics()) {
      PhaseHistogram(metrics, "vote")->Observe(vote_wall.ElapsedSeconds());
      PhaseHistogram(metrics, "predict")
          ->Observe(sim_.Now() - ctx->started);
      metrics
          ->GetCounter("predictions",
                       {{"classifier", "cempar"},
                        {"outcome", !out.success  ? "failed"
                                    : out.degraded ? "degraded"
                                                   : "ok"}})
          .Increment();
    }
    if (Tracer* tracer = net_.tracer()) {
      tracer->AddArg(ctx->span, "responded", std::to_string(ctx->responded));
      tracer->AddArg(ctx->span, "success", out.success ? "true" : "false");
      if (out.degraded) tracer->AddArg(ctx->span, "degraded", "true");
      tracer->EndSpan(ctx->span, sim_.Now());
    }
    // The typed overload reject: nothing answered and at least one group
    // was shed — the caller may retry with backoff rather than treat this
    // as a reachability failure.
    if (!out.success && ctx->shed > 0) out.overloaded = true;
    if (cache_ != nullptr && out.success && !out.degraded) {
      cache_->ForNode(requester)
          .Insert(FingerprintVector(x), publish_epoch_, sim_.Now(), out);
    }
    ctx->done(std::move(out));
  };

  // Resolve the owner of every home (from cache when allowed), then group
  // homes by owner so the document vector travels once per super-peer.
  struct Resolution {
    std::vector<std::pair<std::size_t, NodeId>> resolved;  // (home, owner)
    std::size_t outstanding = 0;
  };
  auto res = std::make_shared<Resolution>();

  auto dispatch = [this, ctx, requester, x, finalize_one](
                      const std::vector<std::pair<std::size_t, NodeId>>&
                          resolved) {
    // Group home indexes by owner.
    std::map<NodeId, std::vector<std::size_t>> groups;
    for (const auto& [h, owner] : resolved) {
      if (owner == kInvalidNode) continue;
      groups[owner].push_back(h);
    }
    if (groups.empty()) {
      ++ctx->remaining;
      sim_.Schedule(0.0, finalize_one);
      return;
    }
    ctx->remaining = groups.size();
    for (const auto& [owner, home_list] : groups) {
      if (owner == requester) {
        // Local super-peer: evaluate without network traffic — but the
        // evaluation itself still occupies the serving queue.
        double local_delay = 0.0;
        if (serve_ != nullptr) {
          Admission a = AdmitServe(owner);
          if (a.outcome != AdmitOutcome::kAccept) {
            ++ctx->shed;
            sim_.Schedule(0.0, finalize_one);
            continue;
          }
          local_delay = a.delay;
        }
        // (A vote-spam requester poisons its own request too — the
        // behavior belongs to the responding super-peer, whoever that is.)
        sim_.Schedule(local_delay,
                      [this, ctx, owner, home_list, x, finalize_one] {
          const AdversaryDirectory* adv = net_.adversaries();
          const bool spam =
              adv != nullptr && adv->BehaviorAt(owner, sim_.Now()) ==
                                    AdversaryBehavior::kVoteSpam;
          for (std::size_t h : home_list) {
            const Home& home = homes_[h];
            if (home.owner != owner || !home.has_regional) continue;
            TagId tag =
                static_cast<TagId>(h / options_.regions_per_tag);
            if (spam) {
              ctx->votes.push_back({tag, 1.0e9, 1.0e3});
            } else {
              ctx->votes.push_back(
                  {tag, home.regional.Decision(x), home.weight});
            }
          }
          ++ctx->responded;
          finalize_one();
        });
        continue;
      }
      // Super-peer evaluates all queried homes it actually hosts.
      auto evaluate = [this, owner, home_list, x] {
        return std::make_shared<std::vector<PredictCtx::Vote>>(
            EvaluateHomes(owner, home_list, x));
      };
      auto accumulate =
          [ctx](std::shared_ptr<std::vector<PredictCtx::Vote>> partials) {
            for (const auto& p : *partials) ctx->votes.push_back(p);
            ++ctx->responded;
          };
      auto invalidate = [this, requester, home_list] {
        // Request lost: invalidate cached owners so the next prediction
        // re-resolves through the DHT.
        if (options_.cache_super_peer_lookups) {
          for (std::size_t h : home_list) {
            owner_cache_[requester].erase(h);
          }
        }
      };
      if (transport_ && options_.batch_predictions) {
        // Batched reliable path: park this group in the (requester, owner)
        // batch; the flush sends one coalesced round-trip for every member.
        auto settle = [finalize_one,
                       flag = std::make_shared<bool>(false)]() mutable {
          if (*flag) return;
          *flag = true;
          finalize_one();
        };
        BatchMember m;
        m.x = x;
        m.home_list = home_list;
        m.deliver = [ctx,
                     settle](const std::vector<PredictVote>& partials) mutable {
          for (const auto& p : partials) ctx->votes.push_back(p);
          ++ctx->responded;
          settle();
        };
        m.fail = [invalidate, settle]() mutable {
          invalidate();
          settle();
        };
        EnqueueBatch(requester, owner, std::move(m));
        continue;
      }
      if (transport_) {
        // Reliable path. A group can settle through several routes
        // (response delivered, response given up at the responder, request
        // given up after the data still slipped through) — the flag makes
        // the group's finalize idempotent.
        auto settle = [finalize_one,
                       flag = std::make_shared<bool>(false)]() mutable {
          if (*flag) return;
          *flag = true;
          finalize_one();
        };
        transport_->SendReliable(
            requester, owner, RequestBytes(x), MessageType::kPredictionRequest,
            /*on_deliver=*/
            [this, owner, requester, evaluate, accumulate, settle] {
              auto partials = evaluate();
              transport_->SendReliable(
                  owner, requester, ResponseBytes(partials->size()),
                  MessageType::kPredictionResponse,
                  /*on_deliver=*/
                  [accumulate, partials, settle]() mutable {
                    accumulate(partials);
                    settle();
                  },
                  /*on_acked=*/nullptr,
                  /*on_give_up=*/settle);
            },
            /*on_acked=*/nullptr,
            /*on_give_up=*/
            [invalidate, settle]() mutable {
              invalidate();
              settle();
            });
        continue;
      }
      net_.Send(
          requester, owner, RequestBytes(x), MessageType::kPredictionRequest,
          [this, ctx, owner, requester, evaluate, accumulate, finalize_one] {
            // Fire-and-forget admission: a shed request simply never gets
            // a response (the sender cannot be NACKed without a reliable
            // channel), so the requester's group finalizes empty.
            double serve_delay = 0.0;
            if (serve_ != nullptr) {
              Admission a = AdmitServe(owner);
              if (a.outcome != AdmitOutcome::kAccept) {
                net_.stats().RecordDrop(MessageType::kPredictionRequest,
                                        DropReason::kOverloadShed);
                ++ctx->shed;
                finalize_one();
                return;
              }
              serve_delay = a.delay;
            }
            auto respond = [this, owner, requester, evaluate, accumulate,
                            finalize_one] {
              auto partials = evaluate();
              net_.Send(
                  owner, requester, ResponseBytes(partials->size()),
                  MessageType::kPredictionResponse,
                  [accumulate, partials, finalize_one] {
                    accumulate(partials);
                    finalize_one();
                  },
                  finalize_one);
            };
            if (serve_delay > 0.0) {
              sim_.Schedule(serve_delay, respond);
            } else {
              respond();
            }
          },
          [invalidate, finalize_one] {
            invalidate();
            finalize_one();
          });
    }
  };

  // Resolution phase — issued under the prediction span, so every DHT
  // lookup (and the request/response traffic its continuation sends) stays
  // in the prediction's trace.
  ScopedTraceContext predict_scope(net_.tracer(), ctx->span);
  res->outstanding = 1;  // root token
  auto res_done = std::make_shared<std::function<void()>>();
  *res_done = [res, dispatch]() {
    if (--res->outstanding > 0) return;
    dispatch(res->resolved);
  };
  for (std::size_t h = 0; h < homes_.size(); ++h) {
    auto& cache = owner_cache_[requester];
    auto it = cache.find(h);
    if (options_.cache_super_peer_lookups && it != cache.end()) {
      res->resolved.emplace_back(h, it->second);
      continue;
    }
    ++res->outstanding;
    TagId tag = static_cast<TagId>(h / options_.regions_per_tag);
    std::size_t region = h % options_.regions_per_tag;
    chord_.Lookup(requester, HomeKey(tag, region),
                  [this, requester, h, res, res_done](
                      ChordOverlay::LookupResult lr) {
      if (lr.success) {
        res->resolved.emplace_back(h, lr.owner);
        if (options_.cache_super_peer_lookups) {
          owner_cache_[requester][h] = lr.owner;
        }
      }
      (*res_done)();
    });
  }
  (*res_done)();  // consume the root token
}

void Cempar::RepairRound(std::function<void()> on_complete) {
  // Detect dead homes: collection point offline (or never established).
  std::vector<bool> stale(homes_.size(), false);
  for (std::size_t h = 0; h < homes_.size(); ++h) {
    Home& home = homes_[h];
    bool dead = home.owner == kInvalidNode || !net_.IsOnline(home.owner);
    if (dead && home.standby_ready && home.standby != kInvalidNode &&
        net_.IsOnline(home.standby)) {
      // A live standby holds the replica: promote it instead of
      // discarding the cascade and forcing a full re-upload.
      home.owner = home.standby;
      home.standby = kInvalidNode;
      home.standby_ready = false;
      dead = false;
    }
    if (dead) {
      stale[h] = true;
      // Models held at the dead node are gone.
      home.locals.clear();
      home.local_versions.clear();
      home.has_regional = false;
      home.weight = 0.0;
      home.owner = kInvalidNode;
      home.standby = kInvalidNode;
      home.standby_ready = false;
    }
  }

  auto pending = std::make_shared<std::size_t>(1);
  auto barrier = std::make_shared<std::function<void()>>();
  *barrier = [this, pending, on_complete = std::move(on_complete)] {
    if (--*pending > 0) return;
    CascadeAll();
    ReplicateRegionals();
    on_complete();
  };

  for (NodeId peer = 0; peer < local_models_.size(); ++peer) {
    if (!net_.IsOnline(peer)) continue;
    for (const auto& [h, model] : local_models_[peer]) {
      if (!stale[h]) continue;
      TagId tag = static_cast<TagId>(h / options_.regions_per_tag);
      std::size_t region = h % options_.regions_per_tag;
      owner_cache_[peer].erase(h);
      ++*pending;
      UploadModel(peer, tag, region, model, model_version_[peer], barrier);
    }
  }
  (*barrier)();
}

std::size_t Cempar::NumLiveHomes() const {
  std::size_t live = 0;
  for (const Home& home : homes_) {
    if (home.has_regional && home.owner != kInvalidNode &&
        net_.IsOnline(home.owner)) {
      ++live;
    }
  }
  return live;
}

std::vector<NodeId> Cempar::HomeOwners() const {
  std::vector<NodeId> owners;
  owners.reserve(homes_.size());
  for (const Home& home : homes_) owners.push_back(home.owner);
  return owners;
}

std::size_t Cempar::TotalRegionalSupportVectors() const {
  std::size_t total = 0;
  for (const Home& home : homes_) {
    if (home.has_regional) total += home.regional.num_support_vectors();
  }
  return total;
}

std::size_t Cempar::NumReplicatedHomes() const {
  std::size_t count = 0;
  for (const Home& home : homes_) {
    if (home.standby_ready) ++count;
  }
  return count;
}

void Cempar::ReplicateHome(std::size_t h) {
  Home& home = homes_[h];
  if (!home.has_regional || home.owner == kInvalidNode) return;
  // Standby = the owner's first live successor on the ring — the node that
  // would inherit the home's key range if the owner vanished.
  NodeId standby = kInvalidNode;
  for (NodeId succ : chord_.SuccessorsOf(home.owner)) {
    if (succ != home.owner && net_.IsOnline(succ)) {
      standby = succ;
      break;
    }
  }
  if (standby == kInvalidNode) return;
  if (home.standby == standby && home.standby_ready) return;
  home.standby = standby;
  home.standby_ready = false;
  const std::size_t bytes = home.regional.WireSize() + 16;
  // The replica snapshot only becomes usable once it is *delivered*;
  // promotion checks standby_ready.
  auto install = [this, h, standby] {
    if (homes_[h].standby == standby) homes_[h].standby_ready = true;
  };
  if (transport_) {
    transport_->SendReliable(home.owner, standby, bytes,
                             MessageType::kModelReplicate, std::move(install));
  } else {
    net_.Send(home.owner, standby, bytes, MessageType::kModelReplicate,
              std::move(install));
  }
}

void Cempar::ReplicateRegionals() {
  if (transport_ == nullptr || !options_.replicate_regional_models) return;
  for (std::size_t h = 0; h < homes_.size(); ++h) ReplicateHome(h);
}

void Cempar::OnSuspect(NodeId suspect) {
  // Cached resolutions pointing at the suspect are poison: drop them so
  // the next prediction re-resolves through the DHT.
  for (auto& cache : owner_cache_) {
    for (auto it = cache.begin(); it != cache.end();) {
      it = it->second == suspect ? cache.erase(it) : std::next(it);
    }
  }
  if (!options_.replicate_regional_models) return;
  for (std::size_t h = 0; h < homes_.size(); ++h) {
    Home& home = homes_[h];
    if (home.owner != suspect) continue;
    if (!home.standby_ready || home.standby == kInvalidNode ||
        !net_.IsOnline(home.standby)) {
      continue;  // no usable replica; RepairRound can rebuild later
    }
    home.owner = home.standby;
    home.standby = kInvalidNode;
    home.standby_ready = false;
    // Restore the replication invariant under the new primary.
    ReplicateHome(h);
  }
}

Result<std::string> Cempar::Snapshot(NodeId peer) const {
  if (peer >= local_models_.size()) {
    return Status::InvalidArgument("snapshot of unknown peer " +
                                   std::to_string(peer));
  }
  std::string out;
  wire::PutU8(kCemparSnapshotVersion, out);
  wire::PutU32(num_tags_, out);
  wire::PutU32(static_cast<uint32_t>(options_.regions_per_tag), out);
  wire::PutU32(static_cast<uint32_t>(local_models_[peer].size()), out);
  for (const auto& [home, model] : local_models_[peer]) {
    wire::PutU64(home, out);
    wire::PutBytes(SerializeKernelSvm(model), out);
  }
  return out;
}

Status Cempar::Restore(NodeId peer, const std::string& blob) {
  if (peer >= local_models_.size()) {
    return Status::InvalidArgument("restore of unknown peer " +
                                   std::to_string(peer));
  }
  std::size_t offset = 0;
  Result<uint8_t> version = wire::GetU8(blob, offset);
  if (!version.ok()) return version.status();
  if (version.value() != kCemparSnapshotVersion) {
    return Status::InvalidArgument("unsupported cempar snapshot version " +
                                   std::to_string(version.value()));
  }
  Result<uint32_t> num_tags = wire::GetU32(blob, offset);
  if (!num_tags.ok()) return num_tags.status();
  Result<uint32_t> regions = wire::GetU32(blob, offset);
  if (!regions.ok()) return regions.status();
  if (num_tags.value() != num_tags_ ||
      regions.value() != options_.regions_per_tag) {
    return Status::InvalidArgument(
        "cempar snapshot was taken under a different configuration");
  }
  Result<uint32_t> count = wire::GetU32(blob, offset);
  if (!count.ok()) return count.status();
  // Every entry needs at least a home id (8) and a length prefix (4); a
  // count that cannot fit in the remaining bytes is a corrupted or hostile
  // length field — reject before looping, not after allocating.
  if (count.value() > (blob.size() - offset) / 12) {
    return Status::DataLoss("cempar snapshot model count exceeds buffer");
  }
  std::map<std::size_t, KernelSvmModel> restored;
  for (uint32_t i = 0; i < count.value(); ++i) {
    Result<uint64_t> home = wire::GetU64(blob, offset);
    if (!home.ok()) return home.status();
    if (home.value() >= homes_.size()) {
      return Status::InvalidArgument("cempar snapshot references home " +
                                     std::to_string(home.value()) +
                                     " out of " +
                                     std::to_string(homes_.size()));
    }
    Result<std::string> bytes = wire::GetBytes(blob, offset);
    if (!bytes.ok()) return bytes.status();
    Result<KernelSvmModel> model = DeserializeKernelSvm(bytes.value());
    if (!model.ok()) return model.status();
    if (options_.sanitize.enabled) {
      // A checkpoint is an ingestion point like any other: a tampered blob
      // that parses cleanly must still pass content sanitation.
      ModelRejectReason reason =
          SanitizeKernelModel(model.value(), options_.sanitize);
      if (reason != ModelRejectReason::kNone) {
        RecordRejected(reason);
        return RejectedModelStatus(reason);
      }
    }
    restored.emplace(static_cast<std::size_t>(home.value()),
                     std::move(model).value());
  }
  if (offset != blob.size()) {
    return Status::InvalidArgument("trailing bytes after cempar snapshot");
  }
  // Commit only after the whole blob parsed: restore is all-or-nothing.
  local_models_[peer] = std::move(restored);
  BumpPublishEpoch();
  return Status::OK();
}

void Cempar::EvictPeer(NodeId peer) {
  if (peer >= local_models_.size()) return;
  local_models_[peer].clear();
  owner_cache_[peer].clear();
  BumpPublishEpoch();
}

std::size_t Cempar::ColdRestart(NodeId peer) {
  if (peer >= peer_data_.size()) return 0;
  local_models_[peer].clear();
  owner_cache_[peer].clear();
  BumpPublishEpoch();
  const DatasetShard& data = peer_data_[peer];
  if (data.empty()) return 0;
  std::vector<std::size_t> counts = data.TagCounts();
  const std::size_t region = peer % options_.regions_per_tag;
  std::size_t examples_refit = 0;
  for (TagId tag = 0; tag < num_tags_; ++tag) {
    if (tag >= counts.size() || counts[tag] == 0) continue;
    // Same trainer, same data, same options as the original fit: SMO is
    // deterministic, so the recovered models are bit-identical and only
    // the work is different from a warm restore.
    Result<KernelSvmModel> model =
        TrainKernelSvm(data.OneAgainstAll(tag), options_.svm);
    if (!model.ok()) {
      P2PDT_LOG(Warning) << "peer " << peer << " tag " << tag
                         << " cold-restart SVM failed: "
                         << model.status().ToString();
      continue;
    }
    local_models_[peer].emplace(HomeIndex(tag, region),
                                std::move(model).value());
    examples_refit += data.size();
  }
  return examples_refit;
}

void Cempar::ResyncPeer(NodeId peer, std::function<void()> done) {
  (void)peer;  // RepairRound already sweeps every stale home network-wide.
  RepairRound(std::move(done));
}

Status Cempar::ReplacePeerData(NodeId peer, DatasetShard window) {
  if (peer >= peer_data_.size()) {
    return Status::InvalidArgument("replace data of unknown peer " +
                                   std::to_string(peer));
  }
  window.set_num_tags(num_tags_);
  peer_data_[peer] = std::move(window);
  if (reputation_ != nullptr) {
    // Trust scoring cross-validates against the peer's current window, so
    // refreshed contributors are judged on the data regime they now model.
    reputation_->SetHoldout(peer, peer_data_[peer]);
  }
  return Status::OK();
}

void Cempar::RefreshPeer(NodeId peer, std::function<void()> done) {
  if (peer >= peer_data_.size() || !net_.IsOnline(peer) ||
      peer_data_[peer].empty()) {
    sim_.Schedule(0.0, std::move(done));
    return;
  }
  // One publish version for the whole refreshed grid: every per-tag local
  // re-uploaded below carries it, so a home can tell this refresh from the
  // superseded fit no matter which copies (or retransmissions) arrive when.
  const uint32_t version = ++model_version_[peer];
  // The version bump invalidates cached predictions immediately, before
  // any re-upload lands (the coherence rule: never serve across a bump).
  BumpPublishEpoch();
  Stopwatch refresh_wall;
  local_models_[peer].clear();
  const DatasetShard& data = peer_data_[peer];
  std::vector<std::size_t> counts = data.TagCounts();
  const std::size_t region = peer % options_.regions_per_tag;
  for (TagId tag = 0; tag < num_tags_; ++tag) {
    if (tag >= counts.size() || counts[tag] == 0) continue;
    Result<KernelSvmModel> model =
        TrainKernelSvm(data.OneAgainstAll(tag), options_.svm);
    if (!model.ok()) {
      P2PDT_LOG(Warning) << "peer " << peer << " tag " << tag
                         << " refresh SVM failed: "
                         << model.status().ToString();
      continue;
    }
    local_models_[peer].emplace(HomeIndex(tag, region),
                                std::move(model).value());
  }
  if (Histogram* hist = PhaseHistogram(net_.metrics(), "model_refresh")) {
    hist->Observe(refresh_wall.ElapsedSeconds());
  }

  // Re-upload through the normal (possibly reliable) upload path; each
  // home's version-guarded intake evicts the stored old-version local and
  // re-cascades once the traffic quiesces — same barrier shape as Train.
  auto pending = std::make_shared<std::size_t>(1);
  auto barrier = std::make_shared<std::function<void()>>();
  *barrier = [this, pending, done = std::move(done)] {
    if (--*pending > 0) return;
    CascadeAll();
    ReplicateRegionals();
    done();
  };
  for (const auto& [h, model] : local_models_[peer]) {
    TagId tag = static_cast<TagId>(h / options_.regions_per_tag);
    std::size_t home_region = h % options_.regions_per_tag;
    ++*pending;
    UploadModel(peer, tag, home_region, model, version, barrier);
  }
  sim_.Schedule(0.0, [barrier] { (*barrier)(); });  // consume root token
}

uint64_t Cempar::ModelVersion(NodeId peer) const {
  return peer < model_version_.size() ? model_version_[peer] : 0;
}

bool Cempar::LocalScores(NodeId peer, const SparseVector& x,
                         std::vector<double>& scores) const {
  if (peer >= local_models_.size() || local_models_[peer].empty()) {
    return false;
  }
  scores.assign(num_tags_, 0.0);
  std::vector<double> weight(num_tags_, 0.0);
  for (const auto& [h, model] : local_models_[peer]) {
    TagId tag = static_cast<TagId>(h / options_.regions_per_tag);
    scores[tag] += model.Decision(x);
    weight[tag] += 1.0;
  }
  for (TagId t = 0; t < num_tags_; ++t) {
    if (weight[t] > 0.0) scores[t] /= weight[t];
  }
  return true;
}

}  // namespace p2pdt

