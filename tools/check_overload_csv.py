#!/usr/bin/env python3
"""Validates the overload-sweep CSV emitted by bench_overload.

Usage: check_overload_csv.py <overload.csv> [--strict]

Pure stdlib. Checks the column schema exactly, value ranges, and the
structural invariants every sweep must satisfy:

- Every algorithm carries a disarmed pair (load generator off, both arm
  configurations) whose fingerprints MATCH — the bit-identity witness
  that idle overload machinery (serving queues with no contention, an
  empty prediction cache, an unused batching window) changes no answer.
- Outcome arithmetic: ok + degraded + cached + failed == completed, and
  completed == offered (every request resolves — answered, degraded,
  or a typed give-up; nothing is silently dropped).
- The undefended arm never sheds and never retries (there is no
  admission control to reject and no typed overload signal to retry on).
- Latency quantiles are ordered (p50 <= p95 <= p99) and rates are sane
  (cache_hit_rate in [0, 1]; shed_rate >= 0 — transport-level retries
  can shed one client request more than once).

With --strict it additionally enforces the OVER1 acceptance bar: at
least one flash-burst point where the undefended arm is driven past the
SLO (p95 tagging latency above slo_s, or >5 % of requests failing)
while the defended arm of the same (algorithm, rate, burst) sustains
>= 2x the undefended goodput-within-SLO. Exits non-zero with one
message per violation.
"""

import csv
import sys

EXPECTED_COLUMNS = [
    "algorithm", "arm", "burst", "arrival_rate", "burst_multiplier",
    "offered", "completed", "ok", "degraded", "cached", "failed", "shed",
    "retries", "within_slo", "goodput_within_slo", "shed_rate",
    "cache_hit_rate", "p50_s", "p95_s", "p99_s", "slo_s", "give_ups",
    "fingerprint",
]

KNOWN_ARMS = {"undefended", "defended"}
KNOWN_BURSTS = {"disarmed", "none", "flash"}

GOODPUT_FACTOR = 2.0
FAIL_COLLAPSE = 0.05

errors = []


def check(cond, msg):
    if not cond:
        errors.append(msg)


def validate(path, strict):
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        check(reader.fieldnames == EXPECTED_COLUMNS,
              f"header mismatch: got {reader.fieldnames}")
        rows = list(reader)
    check(rows, "no data rows")
    if errors:
        return

    for i, row in enumerate(rows):
        where = f"row {i + 2}"
        check(row["algorithm"] in ("cempar", "pace"),
              f"{where}: unknown algorithm {row['algorithm']!r}")
        check(row["arm"] in KNOWN_ARMS,
              f"{where}: unknown arm {row['arm']!r}")
        check(row["burst"] in KNOWN_BURSTS,
              f"{where}: unknown burst {row['burst']!r}")
        for col in ("offered", "completed", "ok", "degraded", "cached",
                    "failed", "shed", "retries", "within_slo", "give_ups"):
            check(int(row[col]) >= 0, f"{where}: negative {col}")
        offered = int(row["offered"])
        completed = int(row["completed"])
        answered = (int(row["ok"]) + int(row["degraded"]) +
                    int(row["cached"]) + int(row["failed"]))
        check(completed == offered,
              f"{where}: completed {completed} != offered {offered} "
              "(requests went missing)")
        check(answered == completed,
              f"{where}: ok+degraded+cached+failed {answered} != "
              f"completed {completed}")
        check(int(row["within_slo"]) <= completed,
              f"{where}: within_slo exceeds completed")
        for col in ("goodput_within_slo", "shed_rate", "p50_s", "p95_s",
                    "p99_s", "slo_s"):
            check(float(row[col]) >= 0.0, f"{where}: negative {col}")
        hit = float(row["cache_hit_rate"])
        check(0.0 <= hit <= 1.0, f"{where}: cache_hit_rate {hit}")
        p50, p95, p99 = (float(row["p50_s"]), float(row["p95_s"]),
                         float(row["p99_s"]))
        check(p50 <= p95 + 1e-12 and p95 <= p99 + 1e-12,
              f"{where}: latency quantiles unordered "
              f"({p50}, {p95}, {p99})")
        check(len(row["fingerprint"]) == 16,
              f"{where}: fingerprint not a 16-hex-digit digest")
        if row["arm"] == "undefended":
            check(int(row["shed"]) == 0,
                  f"{where}: undefended arm shed requests")
            check(int(row["retries"]) == 0,
                  f"{where}: undefended arm retried")
            check(int(row["give_ups"]) == 0,
                  f"{where}: undefended arm recorded overload give-ups")
        if row["burst"] == "disarmed":
            check(float(row["arrival_rate"]) == 0.0,
                  f"{where}: disarmed row carries an arrival rate")

    algorithms = sorted({row["algorithm"] for row in rows})
    for algorithm in algorithms:
        # Disarmed bit-identity pair.
        disarmed = {row["arm"]: row["fingerprint"] for row in rows
                    if row["algorithm"] == algorithm
                    and row["burst"] == "disarmed"}
        check(set(disarmed) == KNOWN_ARMS,
              f"{algorithm}: disarmed pair incomplete "
              f"(have {sorted(disarmed)})")
        if set(disarmed) == KNOWN_ARMS:
            check(disarmed["undefended"] == disarmed["defended"],
                  f"{algorithm}: disarmed fingerprints differ — idle "
                  "overload machinery changed a prediction")
        check(any(row["algorithm"] == algorithm and row["burst"] == "flash"
                  for row in rows),
              f"{algorithm}: no flash-burst rows")

    if not strict:
        return

    # Acceptance bar: a flash point where the undefended arm collapses
    # (p95 past SLO or failure collapse) and the defended arm sustains
    # >= 2x its goodput-within-SLO.
    witnesses = []
    for row in rows:
        if row["burst"] != "flash" or row["arm"] != "undefended":
            continue
        defended = next(
            (r for r in rows
             if r["arm"] == "defended"
             and (r["algorithm"], r["burst"], r["arrival_rate"],
                  r["burst_multiplier"])
             == (row["algorithm"], row["burst"], row["arrival_rate"],
                 row["burst_multiplier"])), None)
        if defended is None:
            continue
        offered = int(row["offered"])
        fail_rate = int(row["failed"]) / offered if offered else 0.0
        past_slo = (float(row["p95_s"]) > float(row["slo_s"])
                    or fail_rate > FAIL_COLLAPSE)
        sustained = (float(defended["goodput_within_slo"])
                     >= GOODPUT_FACTOR * float(row["goodput_within_slo"]))
        if past_slo and sustained:
            witnesses.append(
                f"{row['algorithm']}@{row['arrival_rate']}"
                f"x{row['burst_multiplier']} "
                f"({row['goodput_within_slo']} -> "
                f"{defended['goodput_within_slo']} good/s)")
    check(witnesses,
          "acceptance bar not met: no flash point where the undefended arm "
          "is past SLO (or >5% failed) while the defended arm sustains "
          f">= {GOODPUT_FACTOR}x its goodput-within-SLO")
    if witnesses:
        print(f"acceptance witnesses: {', '.join(sorted(set(witnesses)))}")


def main():
    args = [a for a in sys.argv[1:] if a != "--strict"]
    strict = "--strict" in sys.argv[1:]
    if len(args) != 1:
        print(__doc__)
        return 2
    validate(args[0], strict)
    if errors:
        for msg in errors:
            print(f"FAIL: {msg}")
        return 1
    print(f"OK: {args[0]} passes schema and overload invariants"
          + (" (strict)" if strict else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
