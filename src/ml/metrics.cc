#include "ml/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace p2pdt {

namespace {

double SafeDiv(double num, double den) { return den == 0.0 ? 0.0 : num / den; }

double F1(double precision, double recall) {
  return SafeDiv(2.0 * precision * recall, precision + recall);
}

}  // namespace

MultiLabelMetrics EvaluateMultiLabel(
    const std::vector<std::vector<TagId>>& truth,
    const std::vector<std::vector<TagId>>& predicted, TagId num_tags) {
  assert(truth.size() == predicted.size());
  MultiLabelMetrics m;
  m.num_examples = truth.size();
  m.num_tags = num_tags;
  if (truth.empty()) return m;

  std::vector<std::size_t> tp(num_tags, 0), fp(num_tags, 0), fn(num_tags, 0);
  std::size_t exact = 0;
  double jaccard_sum = 0.0;
  std::size_t hamming_errors = 0;

  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto& t = truth[i];
    const auto& p = predicted[i];
    std::vector<TagId> inter;
    std::set_intersection(t.begin(), t.end(), p.begin(), p.end(),
                          std::back_inserter(inter));
    std::size_t union_size = t.size() + p.size() - inter.size();
    jaccard_sum += union_size == 0
                       ? 1.0
                       : static_cast<double>(inter.size()) /
                             static_cast<double>(union_size);
    if (t == p) ++exact;
    hamming_errors += (t.size() - inter.size()) + (p.size() - inter.size());
    for (TagId tag : inter) {
      if (tag < num_tags) ++tp[tag];
    }
    for (TagId tag : p) {
      if (tag < num_tags && !std::binary_search(t.begin(), t.end(), tag)) {
        ++fp[tag];
      }
    }
    for (TagId tag : t) {
      if (tag < num_tags && !std::binary_search(p.begin(), p.end(), tag)) {
        ++fn[tag];
      }
    }
  }

  std::size_t tp_sum = 0, fp_sum = 0, fn_sum = 0;
  double macro_f1_sum = 0.0;
  std::size_t occurring_tags = 0;
  m.per_tag.resize(num_tags);
  for (TagId tag = 0; tag < num_tags; ++tag) {
    auto& row = m.per_tag[tag];
    row.support = tp[tag] + fn[tag];
    row.precision = SafeDiv(static_cast<double>(tp[tag]),
                            static_cast<double>(tp[tag] + fp[tag]));
    row.recall = SafeDiv(static_cast<double>(tp[tag]),
                         static_cast<double>(tp[tag] + fn[tag]));
    row.f1 = F1(row.precision, row.recall);
    tp_sum += tp[tag];
    fp_sum += fp[tag];
    fn_sum += fn[tag];
    if (row.support > 0) {
      macro_f1_sum += row.f1;
      ++occurring_tags;
    }
  }

  m.micro_precision = SafeDiv(static_cast<double>(tp_sum),
                              static_cast<double>(tp_sum + fp_sum));
  m.micro_recall = SafeDiv(static_cast<double>(tp_sum),
                           static_cast<double>(tp_sum + fn_sum));
  m.micro_f1 = F1(m.micro_precision, m.micro_recall);
  m.macro_f1 = SafeDiv(macro_f1_sum, static_cast<double>(occurring_tags));
  m.hamming_loss =
      SafeDiv(static_cast<double>(hamming_errors),
              static_cast<double>(truth.size()) * static_cast<double>(
                  num_tags == 0 ? 1 : num_tags));
  m.subset_accuracy =
      static_cast<double>(exact) / static_cast<double>(truth.size());
  m.jaccard_accuracy = jaccard_sum / static_cast<double>(truth.size());
  return m;
}

std::string MultiLabelMetrics::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "microF1=%.4f macroF1=%.4f jaccard=%.4f subset=%.4f "
                "hamming=%.4f (n=%zu, tags=%u)",
                micro_f1, macro_f1, jaccard_accuracy, subset_accuracy,
                hamming_loss, num_examples, num_tags);
  return buf;
}

double BinaryAccuracy(const std::vector<double>& truth,
                      const std::vector<double>& predicted) {
  assert(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if ((truth[i] >= 0) == (predicted[i] >= 0)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

}  // namespace p2pdt
