#include "p2pdmt/environment.h"

#include <algorithm>

namespace p2pdt {

const char* OverlayTypeToString(OverlayType t) {
  switch (t) {
    case OverlayType::kChord:
      return "chord";
    case OverlayType::kUnstructured:
      return "unstructured";
  }
  return "unknown";
}

const char* ChurnTypeToString(ChurnType t) {
  switch (t) {
    case ChurnType::kNone:
      return "none";
    case ChurnType::kExponential:
      return "exponential";
    case ChurnType::kPareto:
      return "pareto";
  }
  return "unknown";
}

Result<std::unique_ptr<Environment>> Environment::Create(
    const EnvironmentOptions& options) {
  if (options.num_peers == 0) {
    return Status::InvalidArgument("environment needs at least one peer");
  }
  auto env = std::unique_ptr<Environment>(new Environment());
  env->options_ = options;
  env->sim_ = std::make_unique<Simulator>();

  PhysicalNetworkOptions phys = options.physical;
  phys.seed ^= options.seed;
  env->net_ = std::make_unique<PhysicalNetwork>(*env->sim_, phys);
  env->net_->AddNodes(options.num_peers);

  // Observability attaches before the overlay joins so bootstrap traffic is
  // measured too. Disabled subsystems stay null — zero cost downstream.
  if (options.observe.metrics) {
    env->metrics_ = std::make_unique<MetricsRegistry>();
    env->net_->SetMetrics(env->metrics_.get());
  }
  if (options.observe.tracing) {
    env->tracer_ = std::make_unique<Tracer>();
    env->net_->SetTracer(env->tracer_.get());
  }
  if (options.observe.profiling) {
    env->profiler_ = std::make_unique<PhaseProfiler>();
    PhaseProfiler::Install(env->profiler_.get());
  }

  switch (options.overlay) {
    case OverlayType::kChord: {
      ChordOptions chord = options.chord;
      chord.seed ^= options.seed;
      auto overlay =
          std::make_unique<ChordOverlay>(*env->sim_, *env->net_, chord);
      env->chord_ = overlay.get();
      env->overlay_ = std::move(overlay);
      break;
    }
    case OverlayType::kUnstructured: {
      UnstructuredOptions unstructured = options.unstructured;
      unstructured.seed ^= options.seed;
      auto overlay = std::make_unique<UnstructuredOverlay>(
          *env->sim_, *env->net_, unstructured);
      env->unstructured_ = overlay.get();
      env->overlay_ = std::move(overlay);
      break;
    }
  }
  for (NodeId n = 0; n < options.num_peers; ++n) env->overlay_->AddNode(n);
  // Converge routing state: node k's join only builds k's own tables.
  if (env->chord_ != nullptr) env->chord_->Bootstrap();

  std::shared_ptr<ChurnModel> model;
  switch (options.churn) {
    case ChurnType::kNone:
      model = std::make_shared<NoChurn>();
      break;
    case ChurnType::kExponential:
      model = std::make_shared<ExponentialChurn>(
          options.churn_mean_online_sec, options.churn_mean_offline_sec);
      break;
    case ChurnType::kPareto:
      model = std::make_shared<ParetoChurn>(options.churn_mean_online_sec,
                                            options.churn_mean_offline_sec,
                                            options.churn_pareto_alpha);
      break;
  }
  env->churn_ = std::make_unique<ChurnDriver>(*env->sim_, *env->net_, model,
                                              options.seed ^ 0xC0FFEE);
  Overlay* overlay = env->overlay_.get();
  env->churn_->AddListener([overlay](NodeId node, bool online) {
    overlay->OnTransition(node, online);
  });

  if (!options.fault.empty()) {
    env->fault_ = std::make_unique<FaultInjector>(
        *env->sim_, *env->net_, options.fault.seed ^ options.seed);
    env->fault_->AddPlan(options.fault);
    env->fault_->AddTransitionListener([overlay](NodeId node, bool online) {
      overlay->OnTransition(node, online);
    });
  }
  return env;
}

Environment::~Environment() {
  // Only uninstall our own profiler: a newer environment may have replaced
  // the process-wide registration already.
  if (profiler_ != nullptr && PhaseProfiler::Current() == profiler_.get()) {
    PhaseProfiler::Install(nullptr);
  }
}

void Environment::StartDynamics() {
  if (options_.churn != ChurnType::kNone) churn_->Start();
  if (chord_ != nullptr) chord_->StartStabilization();
  if (fault_ != nullptr && !fault_->armed()) fault_->Arm();
}

double Environment::RunUntilFlag(const bool& flag, double max_sim_seconds) {
  const SimTime start = sim_->Now();
  const SimTime deadline = start + max_sim_seconds;
  // Advance in slices so recurring churn/stabilization events cannot stall
  // completion detection.
  while (!flag && sim_->Now() < deadline) {
    if (sim_->pending_events() == 0) break;
    SimTime slice_end = std::min(deadline, sim_->Now() + 1.0);
    sim_->RunUntil(slice_end);
  }
  return sim_->Now() - start;
}

}  // namespace p2pdt
