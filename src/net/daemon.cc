#include "net/daemon.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "common/logging.h"

namespace p2pdt {

namespace {

std::string PeerName(const struct sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = "?";
  inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

ServiceDaemon::ServiceDaemon(DaemonOptions options, Dispatch dispatch)
    : options_(std::move(options)),
      dispatch_(std::move(dispatch)),
      serve_queue_(options_.serve) {
  if (options_.metrics != nullptr) {
    latency_hist_ = &options_.metrics->GetHistogram(
        "service_latency_seconds", {{"component", "p2pdtd"}});
  }
  loop_.OnWakeup([this] { BeginDrain(); });
}

ServiceDaemon::~ServiceDaemon() {
  for (auto& [fd, conn] : conns_) {
    (void)fd;
    conn->CloseFd();
  }
  if (listen_fd_ >= 0) close(listen_fd_);
}

void ServiceDaemon::Count(const char* name, uint64_t n) {
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter(name, {{"component", "p2pdtd"}})
        .Increment(n);
  }
}

Status ServiceDaemon::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return Status::IOError(std::string("bind: ") + strerror(errno));
  }
  if (listen(listen_fd_, options_.listen_backlog) != 0) {
    return Status::IOError(std::string("listen: ") + strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &len) != 0) {
    return Status::IOError(std::string("getsockname: ") + strerror(errno));
  }
  port_ = ntohs(addr.sin_port);

  P2PDT_RETURN_IF_ERROR(loop_.Add(listen_fd_, EPOLLIN,
                                  [this](uint32_t ev) { HandleAccept(ev); }));
  P2PDT_LOG(Info) << "p2pdtd listening on " << options_.bind_address << ":"
                  << port_;
  return Status::OK();
}

void ServiceDaemon::Run() { loop_.Run(); }

void ServiceDaemon::RequestDrain() { loop_.Wakeup(); }

void ServiceDaemon::HandleAccept(uint32_t events) {
  if ((events & EPOLLIN) == 0) return;
  for (;;) {
    struct sockaddr_in addr;
    socklen_t len = sizeof(addr);
    const int fd =
        accept4(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len,
                SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      // Transient accept errors (ECONNABORTED, EMFILE burst) must not kill
      // the daemon; log and keep serving existing connections.
      P2PDT_LOG(Warning) << "accept failed: " << strerror(errno);
      return;
    }
    if (conns_.size() >= options_.max_connections) {
      // Typed refusal, best effort: the fresh socket's send buffer is
      // empty, so the single small frame either goes out instantly or the
      // client only sees the close.
      ErrorReject reject;
      reject.code = WireError::kTooManyConnections;
      reject.message = "connection limit reached";
      const std::string frame =
          EncodeFrame(FrameType::kError, EncodeErrorReject(reject));
      [[maybe_unused]] ssize_t rc = write(fd, frame.data(), frame.size());
      close(fd);
      ++stats_.refused;
      Count("service_connections_refused");
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(fd, PeerName(addr),
                                             options_.max_frame_payload);
    conn->last_activity = loop_.Now();
    Status added =
        loop_.Add(fd, EPOLLIN, [this, fd](uint32_t ev) {
          HandleConnEvent(fd, ev);
        });
    if (!added.ok()) {
      P2PDT_LOG(Warning) << "cannot watch accepted fd: " << added.ToString();
      continue;  // unique_ptr closes the fd
    }
    ArmIdleTimer(*conn);
    conns_.emplace(fd, std::move(conn));
    ++stats_.accepted;
    Count("service_connections_accepted");
  }
}

void ServiceDaemon::ArmIdleTimer(Connection& conn) {
  if (options_.idle_timeout <= 0.0) return;
  const int fd = conn.fd();
  conn.idle_timer = loop_.wheel().Arm(
      conn.last_activity + options_.idle_timeout, [this, fd] {
        auto it = conns_.find(fd);
        if (it == conns_.end()) return;
        Connection& c = *it->second;
        c.idle_timer = DeadlineWheel::kInvalidTimer;
        const double idle = loop_.Now() - c.last_activity;
        // One wheel tick of slack: deadlines are coarse by design.
        if (idle + 1e-9 >= options_.idle_timeout) {
          ++stats_.reaped_idle;
          Count("service_connections_reaped");
          P2PDT_LOG(Debug) << "reaping idle connection " << c.peer_name();
          CloseConn(fd);
        } else {
          ArmIdleTimer(c);
        }
      });
}

void ServiceDaemon::HandleConnEvent(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    ++stats_.read_errors;
    CloseConn(fd);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    HandleWritable(conn);
    if (conns_.count(fd) == 0) return;
  }
  if ((events & EPOLLIN) != 0) HandleReadable(conn);
}

void ServiceDaemon::HandleReadable(Connection& conn) {
  const int fd = conn.fd();
  std::size_t bytes = 0;
  const Connection::IoResult io = conn.ReadIntoDecoder(bytes);
  if (bytes > 0) {
    stats_.bytes_in += bytes;
    conn.last_activity = loop_.Now();
  }
  if (!DrainFrames(conn)) return;  // connection closed on us
  switch (io) {
    case Connection::IoResult::kOk:
      break;
    case Connection::IoResult::kEof:
      // Peer finished sending. Anything already framed was dispatched by
      // DrainFrames; flush what remains and close.
      if (conn.write_empty()) {
        CloseConn(fd);
      } else {
        conn.close_after_flush = true;
        UpdateInterest(conn);
      }
      break;
    case Connection::IoResult::kError:
      // Abrupt reset — the fault injector's bread and butter. Only this
      // connection dies.
      ++stats_.read_errors;
      Count("service_read_errors");
      CloseConn(fd);
      break;
    case Connection::IoResult::kOverflow:
      ++stats_.malformed_frames;
      // Flag first: SendFrame closes the connection itself when the error
      // frame flushes in one write (the common case).
      conn.close_after_flush = true;
      conn.read_paused = true;
      SendError(conn, 0, WireError::kMalformed, "read buffer bound exceeded");
      break;
  }
}

bool ServiceDaemon::DrainFrames(Connection& conn) {
  const int fd = conn.fd();
  Frame frame;
  for (;;) {
    const FrameDecoder::Next verdict = conn.decoder().Poll(frame);
    if (verdict == FrameDecoder::Next::kNeedMore) return true;
    if (verdict != FrameDecoder::Next::kFrame) {
      // Header-level reject: the stream is unsynchronized. Answer with the
      // typed error (the length was rejected before any allocation), then
      // flush-and-close.
      if (verdict == FrameDecoder::Next::kOversized) {
        ++stats_.oversized_frames;
        Count("service_frames_oversized");
      } else {
        ++stats_.malformed_frames;
        Count("service_frames_malformed");
      }
      conn.close_after_flush = true;
      conn.read_paused = true;
      SendError(conn, 0, FrameDecoder::RejectToError(verdict),
                "unrecoverable framing error");
      return conns_.count(fd) != 0;
    }
    ++stats_.frames_in;
    ++conn.frames_in;
    DispatchFrame(conn, frame);
    if (conns_.count(fd) == 0) return false;
  }
}

void ServiceDaemon::DispatchFrame(Connection& conn, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kPredictRequest:
      ServePredict(conn, frame);
      return;
    case FrameType::kPing: {
      Result<uint64_t> token = DecodePingPayload(frame.payload);
      if (!token.ok()) {
        ++stats_.malformed_payloads;
        SendError(conn, 0, WireError::kMalformed, token.status().message());
        return;
      }
      ++stats_.pings;
      SendFrame(conn, FrameType::kPong, EncodePingPayload(*token));
      return;
    }
    case FrameType::kPredictResponse:
    case FrameType::kOverload:
    case FrameType::kError:
    case FrameType::kPong:
      break;
  }
  // Well-formed frame of a type only a server sends: a confused or hostile
  // client. Typed reject, then close — there is nothing sane to resume.
  ++stats_.unexpected_type;
  Count("service_frames_unexpected");
  conn.close_after_flush = true;
  conn.read_paused = true;
  SendError(conn, 0, WireError::kUnexpectedType,
            std::string("server does not accept ") +
                FrameTypeToString(frame.type));
}

void ServiceDaemon::ServePredict(Connection& conn, const Frame& frame) {
  Result<PredictRequest> req = DecodePredictRequest(frame.payload);
  if (!req.ok()) {
    // Payload-level failure: the frame boundary held, so the stream is
    // still synchronized — reject this request, keep the connection.
    ++stats_.malformed_payloads;
    Count("service_payloads_malformed");
    SendError(conn, 0, WireError::kMalformed, req.status().message());
    return;
  }
  ++stats_.requests;
  Count("service_requests");

  if (serve_queue_.options().enabled &&
      serve_queue_.options().admission_control) {
    const NodeId node = static_cast<NodeId>(
        req->requester % std::max<std::size_t>(options_.admission_nodes, 1));
    const Admission adm = serve_queue_.Admit(node, loop_.Now());
    if (adm.outcome != AdmitOutcome::kAccept) {
      ++stats_.shed;
      Count("service_requests_shed");
      OverloadReject reject;
      reject.id = req->id;
      reject.reason = static_cast<uint8_t>(adm.outcome);
      reject.retry_after = adm.retry_after;
      SendFrame(conn, FrameType::kOverload, EncodeOverloadReject(reject));
      return;
    }
  }

  const double t0 = loop_.Now();
  P2PPrediction p = dispatch_(static_cast<NodeId>(req->requester), req->doc);
  const double elapsed = loop_.Now() - t0;
  if (latency_hist_ != nullptr) latency_hist_->Observe(elapsed);

  PredictResponse resp;
  resp.id = req->id;
  resp.success = p.success;
  resp.degraded = p.degraded;
  resp.cached = p.cached;
  resp.tags.reserve(p.tags.size());
  for (TagId t : p.tags) resp.tags.push_back(static_cast<uint32_t>(t));
  resp.scores = p.scores;
  if (!p.success) {
    ++stats_.served_failed;
  } else if (p.degraded) {
    ++stats_.served_degraded;
  } else {
    ++stats_.served_ok;
  }
  SendFrame(conn, FrameType::kPredictResponse, EncodePredictResponse(resp));
}

void ServiceDaemon::SendFrame(Connection& conn, FrameType type,
                              const std::string& payload) {
  const int fd = conn.fd();
  conn.QueueWrite(EncodeFrame(type, payload));
  ++stats_.frames_out;
  ++conn.frames_out;
  std::size_t written = 0;
  const Connection::IoResult io = conn.TryFlush(written);
  stats_.bytes_out += written;
  if (written > 0) conn.last_activity = loop_.Now();
  if (io == Connection::IoResult::kError) {
    ++stats_.read_errors;
    CloseConn(fd);
    return;
  }
  if (conn.write_buffered() > options_.write_hard_cap) {
    // The peer stopped draining entirely; cut it loose before its buffer
    // eats the process.
    ++stats_.slow_consumer_closed;
    Count("service_slow_consumers_closed");
    CloseConn(fd);
    return;
  }
  if (!conn.read_paused &&
      conn.write_buffered() > options_.write_high_watermark) {
    conn.read_paused = true;  // backpressure: resume when drained
  }
  if (conn.write_empty() && conn.close_after_flush) {
    CloseConn(fd);
    return;
  }
  UpdateInterest(conn);
}

void ServiceDaemon::SendError(Connection& conn, uint64_t id, WireError code,
                              const std::string& message) {
  ErrorReject reject;
  reject.id = id;
  reject.code = code;
  reject.message = message;
  SendFrame(conn, FrameType::kError, EncodeErrorReject(reject));
}

void ServiceDaemon::HandleWritable(Connection& conn) {
  const int fd = conn.fd();
  std::size_t written = 0;
  const Connection::IoResult io = conn.TryFlush(written);
  stats_.bytes_out += written;
  if (written > 0) conn.last_activity = loop_.Now();
  if (io == Connection::IoResult::kError) {
    ++stats_.read_errors;
    CloseConn(fd);
    return;
  }
  if (conn.read_paused && !conn.close_after_flush &&
      conn.write_buffered() <= options_.write_high_watermark / 2) {
    conn.read_paused = false;  // backpressure released
  }
  if (conn.write_empty() && conn.close_after_flush) {
    CloseConn(fd);
    return;
  }
  UpdateInterest(conn);
}

void ServiceDaemon::UpdateInterest(Connection& conn) {
  uint32_t events = 0;
  if (!conn.read_paused && !conn.close_after_flush) events |= EPOLLIN;
  if (!conn.write_empty()) events |= EPOLLOUT;
  loop_.Modify(conn.fd(), events);
}

void ServiceDaemon::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  if (conn.idle_timer != DeadlineWheel::kInvalidTimer) {
    loop_.wheel().Cancel(conn.idle_timer);
  }
  loop_.Remove(fd);
  conns_.erase(it);  // destructor closes the fd
  ++stats_.closed;
  Count("service_connections_closed");
  FinishDrainIfIdle();
}

void ServiceDaemon::BeginDrain() {
  if (draining_) return;
  draining_ = true;
  drain_started_ = loop_.Now();
  P2PDT_LOG(Info) << "p2pdtd drain: stop accepting, finishing "
                  << conns_.size() << " connection(s)";
  // 1. Stop accepting.
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // 2. One final read pass per connection: everything the kernel already
  //    buffered counts as in-flight and gets served; then flush-and-close.
  //    (Snapshot the fds — serving may close connections mid-walk.)
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Connection& conn = *it->second;
    HandleReadable(conn);
    auto again = conns_.find(fd);
    if (again == conns_.end()) continue;
    Connection& still = *again->second;
    if (still.write_empty()) {
      CloseConn(fd);
    } else {
      still.close_after_flush = true;
      still.read_paused = true;
      UpdateInterest(still);
    }
  }
  // 3. Force the stragglers at the deadline.
  drain_timer_ = loop_.wheel().Arm(
      drain_started_ + options_.drain_timeout, [this] {
        drain_timer_ = DeadlineWheel::kInvalidTimer;
        if (!conns_.empty()) {
          stats_.drain_forced_close += conns_.size();
          P2PDT_LOG(Warning) << "drain deadline: force-closing "
                             << conns_.size() << " connection(s)";
          std::vector<int> fds;
          for (const auto& [fd, conn] : conns_) fds.push_back(fd);
          for (int fd : fds) CloseConn(fd);
        }
        FinishDrainIfIdle();
      });
  FinishDrainIfIdle();
}

void ServiceDaemon::FinishDrainIfIdle() {
  if (!draining_ || !conns_.empty()) return;
  if (drain_timer_ != DeadlineWheel::kInvalidTimer) {
    loop_.wheel().Cancel(drain_timer_);
    drain_timer_ = DeadlineWheel::kInvalidTimer;
  }
  stats_.drain_completed = stats_.drain_forced_close == 0;
  P2PDT_LOG(Info) << "p2pdtd drain complete (forced="
                  << stats_.drain_forced_close << ")";
  loop_.Stop();
}

}  // namespace p2pdt
