// Fuzz-style hardening tests for the wire format: every truncation prefix
// of a valid model buffer must fail cleanly, deterministic bit flips must
// never crash or read out of bounds (ASan/UBSan builds make this real), and
// hand-crafted oversized length fields must be rejected before any
// allocation is sized from them. Also covers the classifier checkpoint
// Restore paths, which parse the same wire primitives.

#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/sanitize.h"
#include "ml/serialization.h"
#include "net/frame.h"
#include "p2pdmt/environment.h"
#include "p2pdmt/experiment.h"
#include "p2pml/cempar.h"
#include "p2pml/pace.h"

namespace p2pdt {
namespace {

LinearSvmModel SampleLinear() {
  return LinearSvmModel(
      SparseVector::FromPairs({{0, 0.5}, {3, -1.25}, {100, 2.0}}), 0.25);
}

KernelSvmModel SampleKernel() {
  std::vector<SupportVector> svs;
  for (uint32_t i = 0; i < 3; ++i) {
    SupportVector sv;
    sv.x = SparseVector::FromPairs({{i, 1.0}, {i + 7, -0.5}});
    sv.y = i % 2 == 0 ? 1.0 : -1.0;
    sv.alpha = 0.25 * (i + 1);
    svs.push_back(std::move(sv));
  }
  return KernelSvmModel(Kernel::Linear(), std::move(svs), -0.125);
}

OneVsAllModel SampleOneVsAll() {
  std::vector<std::unique_ptr<BinaryClassifier>> models;
  models.push_back(std::make_unique<LinearSvmModel>(SampleLinear()));
  models.push_back(nullptr);
  models.push_back(std::make_unique<ConstantClassifier>(-1.0));
  models.push_back(std::make_unique<KernelSvmModel>(SampleKernel()));
  return OneVsAllModel(std::move(models));
}

std::vector<SparseVector> SampleCentroids() {
  return {SparseVector::FromPairs({{1, 0.5}}),
          SparseVector::FromPairs({{2, -0.5}, {9, 1.5}})};
}

/// Patches 4 bytes at `offset` with an absurd little-endian count.
std::string WithCount(std::string blob, std::size_t offset, uint32_t count) {
  for (int i = 0; i < 4; ++i) {
    blob[offset + i] = static_cast<char>(count >> (8 * i));
  }
  return blob;
}

TEST(WireFuzzTest, RoundTripsStayIntact) {
  Result<LinearSvmModel> lin =
      DeserializeLinearSvm(SerializeLinearSvm(SampleLinear()));
  ASSERT_TRUE(lin.ok());
  EXPECT_DOUBLE_EQ(lin->bias(), 0.25);

  Result<KernelSvmModel> ker =
      DeserializeKernelSvm(SerializeKernelSvm(SampleKernel()));
  ASSERT_TRUE(ker.ok());
  EXPECT_EQ(ker->num_support_vectors(), 3u);

  Result<OneVsAllModel> ova =
      DeserializeOneVsAll(SerializeOneVsAll(SampleOneVsAll()));
  ASSERT_TRUE(ova.ok());
  EXPECT_EQ(ova->num_tags(), 4u);
  EXPECT_EQ(ova->model(1), nullptr);

  Result<std::vector<SparseVector>> cent =
      DeserializeCentroids(SerializeCentroids(SampleCentroids()));
  ASSERT_TRUE(cent.ok());
  EXPECT_EQ(cent->size(), 2u);
}

TEST(WireFuzzTest, EveryTruncationPrefixFailsCleanly) {
  // Every byte of a serialized model is load-bearing, so each proper prefix
  // must surface an error (never crash, never return a bogus model).
  const std::string blobs[] = {
      SerializeLinearSvm(SampleLinear()),
      SerializeKernelSvm(SampleKernel()),
      SerializeOneVsAll(SampleOneVsAll()),
      SerializeCentroids(SampleCentroids()),
  };
  for (std::size_t len = 0; len < blobs[0].size(); ++len) {
    EXPECT_FALSE(DeserializeLinearSvm(blobs[0].substr(0, len)).ok()) << len;
  }
  for (std::size_t len = 0; len < blobs[1].size(); ++len) {
    EXPECT_FALSE(DeserializeKernelSvm(blobs[1].substr(0, len)).ok()) << len;
  }
  for (std::size_t len = 0; len < blobs[2].size(); ++len) {
    EXPECT_FALSE(DeserializeOneVsAll(blobs[2].substr(0, len)).ok()) << len;
  }
  for (std::size_t len = 0; len < blobs[3].size(); ++len) {
    EXPECT_FALSE(DeserializeCentroids(blobs[3].substr(0, len)).ok()) << len;
  }
}

TEST(WireFuzzTest, RandomBitFlipsNeverCrash) {
  // Deterministic single-bit corruption across the whole buffer: the parse
  // may succeed (a flipped payload double is still a double) or fail with a
  // status, but must never crash, leak or read out of bounds. Successful
  // parses are additionally run through sanitation, mirroring the ingestion
  // pipeline on a hostile network.
  const std::string blob = SerializeOneVsAll(SampleOneVsAll());
  SanitizeOptions sanitize;
  Rng rng(0xF1A9);
  for (int trial = 0; trial < 400; ++trial) {
    std::string corrupt = blob;
    std::size_t pos = rng.NextU64(corrupt.size());
    corrupt[pos] = static_cast<char>(
        static_cast<uint8_t>(corrupt[pos]) ^ (1u << rng.NextU64(8)));
    Result<OneVsAllModel> model = DeserializeOneVsAll(corrupt);
    if (model.ok()) {
      (void)SanitizeOneVsAll(model.value(), 4, sanitize);
    }
  }

  const std::string kblob = SerializeKernelSvm(SampleKernel());
  for (int trial = 0; trial < 400; ++trial) {
    std::string corrupt = kblob;
    std::size_t pos = rng.NextU64(corrupt.size());
    corrupt[pos] = static_cast<char>(
        static_cast<uint8_t>(corrupt[pos]) ^ (1u << rng.NextU64(8)));
    Result<KernelSvmModel> model = DeserializeKernelSvm(corrupt);
    if (model.ok()) {
      (void)SanitizeKernelModel(model.value(), sanitize);
    }
  }
}

TEST(WireFuzzTest, OversizedCountFieldsRejectedBeforeAllocation) {
  // Layout: magic(4) + version(2), then per-format fields. A count field
  // claiming more elements than the remaining bytes could possibly back
  // must be rejected (DataLoss / InvalidArgument) before any reserve().
  auto expect_rejected = [](const Status& s) {
    EXPECT_TRUE(s.code() == StatusCode::kDataLoss ||
                s.code() == StatusCode::kInvalidArgument)
        << s.ToString();
  };

  // Linear: kind byte at 6, sparse-vector nnz at 7.
  std::string lin = WithCount(SerializeLinearSvm(SampleLinear()), 7,
                              0xFFFFFFFFu);
  expect_rejected(DeserializeLinearSvm(lin).status());

  // OneVsAll: per-tag model count at 6.
  std::string ova = WithCount(SerializeOneVsAll(SampleOneVsAll()), 6,
                              0x7FFFFFFFu);
  expect_rejected(DeserializeOneVsAll(ova).status());

  // Kernel: kind(1) + kernel params(21) + bias(8) put the SV count at 36.
  std::string ker = WithCount(SerializeKernelSvm(SampleKernel()), 36,
                              0x00FFFFFFu);
  expect_rejected(DeserializeKernelSvm(ker).status());

  // Centroids: kind byte at 6, centroid count at 7.
  std::string cent = WithCount(SerializeCentroids(SampleCentroids()), 7,
                               0x00FFFFFFu);
  expect_rejected(DeserializeCentroids(cent).status());
}

// ---------------------------------------------------------------------------
// Socket framing: the newest wire surface. Malformed prefixes against the
// live incremental FrameDecoder — same contract as the model blobs: typed
// reject or need-more, never a crash, never an allocation sized from a
// hostile length.

TEST(WireFuzzTest, FramerSurvivesMalformedPrefixes) {
  PredictRequest req;
  req.id = 11;
  req.requester = 2;
  req.doc = SparseVector::FromPairs({{1, 0.5}, {40, -2.0}});
  const std::string valid =
      EncodeFrame(FrameType::kPredictRequest, EncodePredictRequest(req));

  // Every truncation prefix of a valid frame: kNeedMore (header rejects
  // need the full 9 bytes; a short payload is just un-arrived bytes).
  for (std::size_t len = 0; len < valid.size(); ++len) {
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(valid.data(), len));
    Frame frame;
    EXPECT_EQ(decoder.Poll(frame), FrameDecoder::Next::kNeedMore) << len;
    EXPECT_FALSE(decoder.poisoned()) << len;
  }

  // Deterministic single-byte corruption anywhere in the frame: the poll
  // either yields a typed reject (header corrupted), a frame whose payload
  // then fails its own typed decode, or — when the length field shrank —
  // a valid-looking shorter frame followed by a poisoned remainder. Never
  // a crash; ASan/UBSan builds make that check real.
  Rng rng(0xF8A3E);
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupt = valid;
    const std::size_t pos = rng.NextU64(corrupt.size());
    corrupt[pos] = static_cast<char>(
        static_cast<uint8_t>(corrupt[pos]) ^ (1u << rng.NextU64(8)));
    FrameDecoder decoder;
    if (!decoder.Feed(corrupt.data(), corrupt.size())) continue;
    Frame frame;
    for (int polls = 0; polls < 4; ++polls) {
      const FrameDecoder::Next verdict = decoder.Poll(frame);
      if (verdict == FrameDecoder::Next::kFrame) {
        (void)DecodePredictRequest(frame.payload);  // typed or ok, no crash
        continue;
      }
      if (verdict != FrameDecoder::Next::kNeedMore) {
        EXPECT_TRUE(decoder.poisoned());
        EXPECT_NE(FrameDecoder::RejectToError(verdict),
                  WireError::kInternal);
      }
      break;
    }
  }

  // Pure garbage streams: random bytes must never crash the decoder, and
  // the buffered total stays bounded even when fed past a reject.
  for (int trial = 0; trial < 50; ++trial) {
    FrameDecoder decoder(/*max_payload=*/512);
    for (int chunk = 0; chunk < 8; ++chunk) {
      std::string bytes;
      const int n = 1 + static_cast<int>(rng.UniformInt(0, 99));
      for (int i = 0; i < n; ++i) {
        bytes.push_back(static_cast<char>(rng.UniformInt(0, 255)));
      }
      if (!decoder.Feed(bytes.data(), bytes.size())) break;
      Frame frame;
      while (decoder.Poll(frame) == FrameDecoder::Next::kFrame) {
      }
      EXPECT_LE(decoder.buffered(), kFrameHeaderBytes + 512 + bytes.size());
    }
  }
}

// ---------------------------------------------------------------------------
// Classifier checkpoint restore: the other wire surface an attacker (or a
// corrupt disk) can reach. Same contract: truncations and garbage fail with
// a status, never a crash.

class RestoreFuzzTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kPeers = 6;

  template <typename Algo>
  void FuzzRestore(Algo& algo, NodeId peer) {
    Result<std::string> snap = algo.Snapshot(peer);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    const std::string& blob = snap.value();

    // Every truncation prefix fails cleanly and leaves the peer usable.
    for (std::size_t len = 0; len < blob.size(); ++len) {
      EXPECT_FALSE(algo.Restore(peer, blob.substr(0, len)).ok()) << len;
    }
    // Deterministic bit flips: error or success, never a crash.
    Rng rng(0xB17F115ull);
    for (int trial = 0; trial < 200; ++trial) {
      std::string corrupt = blob;
      std::size_t pos = rng.NextU64(corrupt.size());
      corrupt[pos] = static_cast<char>(
          static_cast<uint8_t>(corrupt[pos]) ^ (1u << rng.NextU64(8)));
      (void)algo.Restore(peer, corrupt);
    }
    // A pristine snapshot still restores after all that abuse.
    EXPECT_TRUE(algo.Restore(peer, blob).ok());
  }

  std::vector<MultiLabelDataset> Partition() {
    CorpusOptions copt;
    copt.num_users = kPeers;
    copt.min_docs_per_user = 15;
    copt.max_docs_per_user = 20;
    copt.num_tags = 4;
    copt.vocabulary_size = 400;
    copt.seed = 99;
    corpus_ = std::move(MakeVectorizedCorpus(copt)).value();
    DataDistributionOptions dopt;
    dopt.cls = ClassDistribution::kIid;
    return std::move(
               DistributeData(corpus_.dataset, kPeers, dopt,
                              &corpus_.doc_user))
        .value();
  }

  VectorizedCorpus corpus_;
};

TEST_F(RestoreFuzzTest, PaceRestoreSurvivesHostileBlobs) {
  EnvironmentOptions eo;
  eo.num_peers = kPeers;
  auto env = std::move(Environment::Create(eo)).value();
  Pace pace(env->sim(), env->net(), env->overlay(), {});
  std::vector<MultiLabelDataset> parts = Partition();
  ASSERT_TRUE(pace.Setup(std::move(parts), corpus_.dataset.num_tags()).ok());
  bool done = false;
  pace.Train([&](Status s) {
    EXPECT_TRUE(s.ok());
    done = true;
  });
  env->RunUntilFlag(done, 3600);
  ASSERT_TRUE(done);
  FuzzRestore(pace, /*peer=*/0);
}

TEST_F(RestoreFuzzTest, CemparRestoreSurvivesHostileBlobs) {
  EnvironmentOptions eo;
  eo.num_peers = kPeers;
  auto env = std::move(Environment::Create(eo)).value();
  CemparOptions opt;
  opt.svm.kernel = Kernel::Linear();
  Cempar cempar(env->sim(), env->net(), *env->chord(), opt);
  std::vector<MultiLabelDataset> parts = Partition();
  ASSERT_TRUE(cempar.Setup(std::move(parts), corpus_.dataset.num_tags()).ok());
  bool done = false;
  cempar.Train([&](Status s) {
    EXPECT_TRUE(s.ok());
    done = true;
  });
  env->RunUntilFlag(done, 3600);
  ASSERT_TRUE(done);
  FuzzRestore(cempar, /*peer=*/0);
}

TEST_F(RestoreFuzzTest, PaceRestoreClampsCheckpointedAccuracies) {
  // Satellite regression test for the trust-hole fix at the checkpoint
  // ingestion point: NaN / out-of-range self-reported accuracies inside a
  // snapshot are clamped into [0, 1] on restore. We corrupt the accuracy
  // section in a real snapshot, restore it, and verify the re-snapshotted
  // values come back clamped.
  EnvironmentOptions eo;
  eo.num_peers = kPeers;
  auto env = std::move(Environment::Create(eo)).value();
  Pace pace(env->sim(), env->net(), env->overlay(), {});
  std::vector<MultiLabelDataset> parts = Partition();
  ASSERT_TRUE(pace.Setup(std::move(parts), corpus_.dataset.num_tags()).ok());
  bool done = false;
  pace.Train([&](Status s) { done = s.ok(); });
  env->RunUntilFlag(done, 3600);
  ASSERT_TRUE(done);

  std::string blob = std::move(pace.Snapshot(0)).value();
  // Walk the snapshot to the accuracy array: version(1) + num_tags(4) +
  // num_peers(4) + valid(1), two length-prefixed byte sections (model,
  // centroids), then the u32 accuracy count.
  std::size_t offset = 1 + 4 + 4 + 1;
  ASSERT_TRUE(wire::GetBytes(blob, offset).ok());
  ASSERT_TRUE(wire::GetBytes(blob, offset).ok());
  Result<uint32_t> n_acc = wire::GetU32(blob, offset);
  ASSERT_TRUE(n_acc.ok());
  ASSERT_GE(n_acc.value(), 2u);

  auto patch_double = [&blob](std::size_t at, double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      blob[at + i] = static_cast<char>(bits >> (8 * i));
    }
  };
  patch_double(offset, std::numeric_limits<double>::quiet_NaN());
  patch_double(offset + 8, 3.5);

  ASSERT_TRUE(pace.Restore(0, blob).ok());
  std::string again = std::move(pace.Snapshot(0)).value();
  std::size_t check = offset;
  Result<double> a0 = wire::GetDouble(again, check);
  Result<double> a1 = wire::GetDouble(again, check);
  ASSERT_TRUE(a0.ok() && a1.ok());
  EXPECT_DOUBLE_EQ(a0.value(), 0.0);  // NaN -> 0
  EXPECT_DOUBLE_EQ(a1.value(), 1.0);  // 3.5 -> 1
}

}  // namespace
}  // namespace p2pdt
