#include "ml/linear_svm.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/metrics.h"

namespace p2pdt {
namespace {

Example Make(std::vector<SparseVector::Entry> f, double y) {
  return {SparseVector::FromPairs(std::move(f)), y};
}

TEST(LinearSvmTest, RejectsEmptyData) {
  EXPECT_EQ(TrainLinearSvm({}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LinearSvmTest, RejectsNonPositiveC) {
  LinearSvmOptions opt;
  opt.c = 0.0;
  EXPECT_FALSE(TrainLinearSvm({Make({{0, 1.0}}, 1)}, opt).ok());
}

TEST(LinearSvmTest, SeparablePairClassifiedCorrectly) {
  std::vector<Example> data = {Make({{0, 1.0}}, 1), Make({{1, 1.0}}, -1)};
  Result<LinearSvmModel> model = TrainLinearSvm(data);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->Decision(data[0].x), 0.0);
  EXPECT_LT(model->Decision(data[1].x), 0.0);
}

TEST(LinearSvmTest, SeparableClusters) {
  Rng rng(1);
  std::vector<Example> data;
  for (int i = 0; i < 40; ++i) {
    // Positive: mass on features 0-4; negative: features 5-9.
    uint32_t base = (i % 2 == 0) ? 0 : 5;
    std::vector<SparseVector::Entry> f;
    for (uint32_t j = 0; j < 5; ++j) {
      f.emplace_back(base + j, rng.Uniform(0.5, 1.5));
    }
    data.push_back(Make(std::move(f), (i % 2 == 0) ? 1.0 : -1.0));
  }
  Result<LinearSvmModel> model = TrainLinearSvm(data);
  ASSERT_TRUE(model.ok());
  for (const Example& ex : data) {
    EXPECT_EQ(model->Predict(ex.x), ex.y);
  }
}

TEST(LinearSvmTest, AllSupportVectorsInsideMargin) {
  // For separable data the decision values should be pushed toward >= 1
  // margins with large C.
  LinearSvmOptions opt;
  opt.c = 100.0;
  opt.max_iterations = 2000;
  std::vector<Example> data = {Make({{0, 1.0}}, 1), Make({{1, 1.0}}, -1),
                               Make({{0, 0.9}, {2, 0.1}}, 1),
                               Make({{1, 0.9}, {2, 0.1}}, -1)};
  Result<LinearSvmModel> model = TrainLinearSvm(data, opt);
  ASSERT_TRUE(model.ok());
  for (const Example& ex : data) {
    EXPECT_GE(ex.y * model->Decision(ex.x), 0.99);
  }
}

TEST(LinearSvmTest, HugeHashedFeatureSpaceStaysCheap) {
  // Feature ids near 2^31: the trainer must remap, not allocate densely.
  std::vector<Example> data = {Make({{2000000000u, 1.0}}, 1),
                               Make({{2100000000u, 1.0}}, -1)};
  Result<LinearSvmModel> model = TrainLinearSvm(data);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->Decision(data[0].x), 0.0);
  EXPECT_LT(model->Decision(data[1].x), 0.0);
  EXPECT_LE(model->weights().nnz(), 2u);
}

TEST(LinearSvmTest, SingleClassDataBiasesToThatClass) {
  std::vector<Example> data = {Make({{0, 1.0}}, 1), Make({{1, 1.0}}, 1)};
  Result<LinearSvmModel> model = TrainLinearSvm(data);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->Decision(SparseVector::FromPairs({{7, 1.0}})), 0.0);
}

TEST(LinearSvmTest, DeterministicInSeed) {
  std::vector<Example> data;
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    data.push_back(Make({{static_cast<uint32_t>(i % 7), rng.NextDouble()},
                         {static_cast<uint32_t>(7 + i % 3), 1.0}},
                        i % 2 ? 1.0 : -1.0));
  }
  LinearSvmOptions opt;
  opt.seed = 42;
  Result<LinearSvmModel> a = TrainLinearSvm(data, opt);
  Result<LinearSvmModel> b = TrainLinearSvm(data, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->weights(), b->weights());
  EXPECT_DOUBLE_EQ(a->bias(), b->bias());
}

TEST(LinearSvmTest, NoisyDataStillMostlyCorrect) {
  Rng rng(11);
  std::vector<Example> data;
  for (int i = 0; i < 200; ++i) {
    bool pos = i % 2 == 0;
    std::vector<SparseVector::Entry> f;
    // Signal features plus shared noise features.
    f.emplace_back(pos ? 0 : 1, 1.0);
    f.emplace_back(2 + rng.NextU64(5), rng.NextDouble());
    double label = (pos ? 1.0 : -1.0);
    if (rng.Bernoulli(0.05)) label = -label;  // 5% label noise
    data.push_back(Make(std::move(f), label));
  }
  Result<LinearSvmModel> model = TrainLinearSvm(data);
  ASSERT_TRUE(model.ok());
  std::vector<double> truth, pred;
  for (int i = 0; i < 200; ++i) {
    truth.push_back(i % 2 == 0 ? 1.0 : -1.0);
    pred.push_back(model->Predict(data[i].x));
  }
  EXPECT_GT(BinaryAccuracy(truth, pred), 0.9);
}

TEST(LinearSvmTest, WireSizeTracksSparsity) {
  std::vector<Example> data = {Make({{0, 1.0}}, 1), Make({{1, 1.0}}, -1)};
  Result<LinearSvmModel> model = TrainLinearSvm(data);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->WireSize(), model->weights().WireSize() + 8);
}

TEST(LinearSvmTest, BiasDisabled) {
  LinearSvmOptions opt;
  opt.use_bias = false;
  std::vector<Example> data = {Make({{0, 1.0}}, 1), Make({{1, 1.0}}, -1)};
  Result<LinearSvmModel> model = TrainLinearSvm(data, opt);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->bias(), 0.0);
  EXPECT_GT(model->Decision(data[0].x), 0.0);
}

// Property sweep: for any soft-margin C, separable data must be classified
// perfectly and the solution must respect the dual box constraints
// (verified indirectly via the margin bound y·f(x) growing with C).
class LinearSvmCSweep : public ::testing::TestWithParam<double> {};

TEST_P(LinearSvmCSweep, SeparableDataAlwaysCorrect) {
  const double c = GetParam();
  Rng rng(100);
  std::vector<Example> data;
  for (int i = 0; i < 60; ++i) {
    uint32_t base = (i % 2 == 0) ? 0 : 8;
    std::vector<SparseVector::Entry> f;
    for (uint32_t j = 0; j < 4; ++j) {
      f.emplace_back(base + j, rng.Uniform(0.5, 1.5));
    }
    data.push_back(Make(std::move(f), (i % 2 == 0) ? 1.0 : -1.0));
  }
  LinearSvmOptions opt;
  opt.c = c;
  opt.max_iterations = 500;
  Result<LinearSvmModel> model = TrainLinearSvm(data, opt);
  ASSERT_TRUE(model.ok()) << "C=" << c;
  for (const Example& ex : data) {
    EXPECT_EQ(model->Predict(ex.x), ex.y) << "C=" << c;
  }
}

TEST_P(LinearSvmCSweep, WeightNormBoundedByDualBox) {
  // ||w|| = ||Σ α_i y_i x_i|| ≤ Σ α_i ||x_i|| ≤ n·C·max||x||.
  const double c = GetParam();
  std::vector<Example> data = {Make({{0, 1.0}}, 1), Make({{0, 1.0}}, -1)};
  LinearSvmOptions opt;
  opt.c = c;
  Result<LinearSvmModel> model = TrainLinearSvm(data, opt);
  ASSERT_TRUE(model.ok());
  EXPECT_LE(model->weights().Norm(), 2.0 * c + 1e-9) << "C=" << c;
}

INSTANTIATE_TEST_SUITE_P(CValues, LinearSvmCSweep,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0, 100.0));

TEST(LinearSvmModelTest, UpdateShiftsDecision) {
  LinearSvmModel model(SparseVector::FromPairs({{0, 1.0}}), 0.0);
  SparseVector x = SparseVector::FromPairs({{0, 1.0}});
  double before = model.Decision(x);
  model.Update(x, 0.5, 1.0);
  EXPECT_NEAR(model.Decision(x), before + 0.5 * x.Dot(x) + 0.5, 1e-12);
}

}  // namespace
}  // namespace p2pdt
