// CLAIM6 — "peers are autonomous and hence there is no single point of
// failure in the system" (paper Sec. 1.1). Fault-injection protocol:
//
//   1. Train CEMPaR and the centralized baseline on the same data.
//   2. Kill the coordinator (centralized) / every super-peer (CEMPaR).
//   3. Measure the failure rate of predictions in the broken state.
//   4. Let the DHT stabilize and run CEMPaR's repair round; re-measure.
//
// Expected shape: centralized goes to 100 % failures and stays there;
// CEMPaR degrades, then *recovers to full accuracy* after repair.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"

using namespace p2pdt_bench;

namespace {

struct EvalResult {
  double micro_f1 = 0.0;
  std::size_t failed = 0;
  std::size_t attempted = 0;
};

EvalResult Evaluate(Environment& env, P2PClassifier& algo,
                    const MultiLabelDataset& test, TagId num_tags,
                    const std::set<NodeId>& excluded_requesters,
                    uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<TagId>> truth, predicted;
  std::size_t failed = 0;
  std::size_t n = std::min<std::size_t>(test.size(), 150);
  std::size_t outstanding = n;
  bool done = (n == 0);
  truth.resize(n);
  predicted.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = test[i].tags;
    NodeId requester;
    int guard = 0;
    do {
      requester = rng.NextU64(env.net().num_nodes());
    } while ((excluded_requesters.count(requester) ||
              !env.net().IsOnline(requester)) &&
             ++guard < 256);
    algo.Predict(requester, test[i].x, [&, i](P2PPrediction p) {
      if (!p.success) ++failed;
      predicted[i] = std::move(p.tags);
      if (--outstanding == 0) done = true;
    });
  }
  env.RunUntilFlag(done, 3600);
  EvalResult out;
  out.micro_f1 = EvaluateMultiLabel(truth, predicted, num_tags).micro_f1;
  out.failed = failed;
  out.attempted = n;
  return out;
}

}  // namespace

int main() {
  std::printf("=== CLAIM6: fault tolerance — no single point of failure "
              "===\n\n");
  const VectorizedCorpus& corpus = SharedCorpus(64, 12);
  CorpusSplit split = SplitCorpus(corpus, 0.2, 11);
  CsvWriter csv({"system", "phase", "micro_f1", "failed", "attempted"});

  // ---- Centralized: kill the coordinator. -------------------------------
  {
    ExperimentOptions opt = MacroDefaults(AlgorithmType::kCentralized, 64);
    auto env = std::move(Environment::Create(opt.env)).value();
    auto algo = std::move(MakeClassifier(*env, opt)).value();
    auto peers = std::move(DistributeData(split.train, 64, opt.distribution,
                                          &split.train_user))
                     .value();
    algo->Setup(std::move(peers), corpus.dataset.num_tags()).ToString();
    bool trained = false;
    algo->Train([&](Status) { trained = true; });
    env->RunUntilFlag(trained, 3600);

    EvalResult before = Evaluate(*env, *algo, split.test,
                                 corpus.dataset.num_tags(), {0}, 1);
    env->net().SetOnline(0, false);  // the coordinator dies
    EvalResult after = Evaluate(*env, *algo, split.test,
                                corpus.dataset.num_tags(), {0}, 2);
    std::printf("centralized  before-failure: microF1=%.4f failed=%zu/%zu\n",
                before.micro_f1, before.failed, before.attempted);
    std::printf("centralized  after-failure:  microF1=%.4f failed=%zu/%zu "
                "(coordinator down — unrecoverable)\n\n",
                after.micro_f1, after.failed, after.attempted);
    csv.AddRow({"centralized", "before", std::to_string(before.micro_f1),
                std::to_string(before.failed),
                std::to_string(before.attempted)});
    csv.AddRow({"centralized", "after_failure",
                std::to_string(after.micro_f1), std::to_string(after.failed),
                std::to_string(after.attempted)});
  }

  // ---- CEMPaR: kill every super-peer, stabilize, repair. ----------------
  {
    ExperimentOptions opt = MacroDefaults(AlgorithmType::kCempar, 64);
    auto env = std::move(Environment::Create(opt.env)).value();
    Cempar cempar(env->sim(), env->net(), *env->chord(), opt.cempar);
    auto peers = std::move(DistributeData(split.train, 64, opt.distribution,
                                          &split.train_user))
                     .value();
    cempar.Setup(std::move(peers), corpus.dataset.num_tags()).ToString();
    bool trained = false;
    cempar.Train([&](Status) { trained = true; });
    env->RunUntilFlag(trained, 3600);

    EvalResult before = Evaluate(*env, cempar, split.test,
                                 corpus.dataset.num_tags(), {}, 3);

    std::set<NodeId> killed;
    for (NodeId owner : cempar.HomeOwners()) {
      if (owner != kInvalidNode && killed.insert(owner).second) {
        env->net().SetOnline(owner, false);
      }
    }
    std::printf("cempar       killed %zu super-peers; live homes %zu/%zu\n",
                killed.size(), cempar.NumLiveHomes(),
                cempar.HomeOwners().size());
    EvalResult broken = Evaluate(*env, cempar, split.test,
                                 corpus.dataset.num_tags(), killed, 4);

    // Recovery: DHT stabilization + model re-upload.
    env->chord()->Bootstrap();
    bool repaired = false;
    cempar.RepairRound([&] { repaired = true; });
    env->RunUntilFlag(repaired, 3600);
    EvalResult recovered = Evaluate(*env, cempar, split.test,
                                    corpus.dataset.num_tags(), killed, 5);

    std::printf("cempar       before-failure: microF1=%.4f failed=%zu/%zu\n",
                before.micro_f1, before.failed, before.attempted);
    std::printf("cempar       super-peers down: microF1=%.4f failed=%zu/%zu\n",
                broken.micro_f1, broken.failed, broken.attempted);
    std::printf("cempar       after repair:   microF1=%.4f failed=%zu/%zu "
                "(recovered)\n",
                recovered.micro_f1, recovered.failed, recovered.attempted);
    csv.AddRow({"cempar", "before", std::to_string(before.micro_f1),
                std::to_string(before.failed),
                std::to_string(before.attempted)});
    csv.AddRow({"cempar", "superpeers_down", std::to_string(broken.micro_f1),
                std::to_string(broken.failed),
                std::to_string(broken.attempted)});
    csv.AddRow({"cempar", "after_repair",
                std::to_string(recovered.micro_f1),
                std::to_string(recovered.failed),
                std::to_string(recovered.attempted)});
  }
  WriteResults(csv, "claim6_fault_tolerance.csv");
  return 0;
}
