#include "ml/multilabel.h"

#include <gtest/gtest.h>

#include "ml/linear_svm.h"

namespace p2pdt {
namespace {

BinaryTrainer LinearTrainer() {
  return [](const std::vector<Example>& ex)
             -> Result<std::unique_ptr<BinaryClassifier>> {
    Result<LinearSvmModel> m = TrainLinearSvm(ex);
    if (!m.ok()) return m.status();
    return std::unique_ptr<BinaryClassifier>(
        std::make_unique<LinearSvmModel>(std::move(m).value()));
  };
}

MultiLabelDataset ThreeTagData() {
  MultiLabelDataset d(3);
  auto add = [&](uint32_t feature, std::vector<TagId> tags) {
    MultiLabelExample ex;
    ex.x = SparseVector::FromPairs({{feature, 1.0}});
    ex.tags = std::move(tags);
    d.Add(std::move(ex));
  };
  // Feature 0 → tag 0; feature 1 → tag 1; feature 2 → tags {0, 2}.
  for (int i = 0; i < 4; ++i) {
    add(0, {0});
    add(1, {1});
    add(2, {0, 2});
  }
  return d;
}

TEST(DecideTagsTest, ThresholdSelection) {
  TagDecisionPolicy policy;
  policy.threshold = 0.0;
  policy.assign_best_when_empty = false;
  EXPECT_EQ(DecideTags({-1.0, 0.5, 0.2}, policy),
            (std::vector<TagId>{1, 2}));
}

TEST(DecideTagsTest, FallbackToBestWhenEmpty) {
  TagDecisionPolicy policy;
  policy.threshold = 0.0;
  policy.assign_best_when_empty = true;
  EXPECT_EQ(DecideTags({-3.0, -0.5, -2.0}, policy),
            (std::vector<TagId>{1}));
}

TEST(DecideTagsTest, NoFallbackLeavesEmpty) {
  TagDecisionPolicy policy;
  policy.assign_best_when_empty = false;
  EXPECT_TRUE(DecideTags({-3.0, -0.5}, policy).empty());
}

TEST(DecideTagsTest, MaxTagsKeepsHighestScores) {
  TagDecisionPolicy policy;
  policy.threshold = 0.0;
  policy.max_tags = 2;
  std::vector<TagId> tags = DecideTags({0.9, 0.1, 0.5, 0.7}, policy);
  EXPECT_EQ(tags, (std::vector<TagId>{0, 3}));
}

TEST(DecideTagsTest, EmptyScores) {
  EXPECT_TRUE(DecideTags({}, {}).empty());
}

TEST(OneVsAllTest, TrainsPerTagAndPredicts) {
  Result<OneVsAllModel> model = TrainOneVsAll(ThreeTagData(), LinearTrainer());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_tags(), 3u);

  TagDecisionPolicy policy;
  EXPECT_EQ(model->PredictTags(SparseVector::FromPairs({{0, 1.0}}), policy),
            (std::vector<TagId>{0}));
  EXPECT_EQ(model->PredictTags(SparseVector::FromPairs({{1, 1.0}}), policy),
            (std::vector<TagId>{1}));
  EXPECT_EQ(model->PredictTags(SparseVector::FromPairs({{2, 1.0}}), policy),
            (std::vector<TagId>{0, 2}));
}

TEST(OneVsAllTest, EmptyDataRejected) {
  EXPECT_FALSE(TrainOneVsAll(MultiLabelDataset(2), LinearTrainer()).ok());
}

TEST(OneVsAllTest, TagWithoutPositivesGetsConstantNegative) {
  MultiLabelDataset d(2);
  MultiLabelExample ex;
  ex.x = SparseVector::FromPairs({{0, 1.0}});
  ex.tags = {0};
  d.Add(ex);
  d.Add(ex);
  Result<OneVsAllModel> model = TrainOneVsAll(d, LinearTrainer());
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->model(1)->Decision(ex.x), 0.0);
}

TEST(OneVsAllTest, TagOnEveryExampleGetsConstantPositive) {
  MultiLabelDataset d(1);
  MultiLabelExample ex;
  ex.x = SparseVector::FromPairs({{0, 1.0}});
  ex.tags = {0};
  d.Add(ex);
  d.Add(ex);
  Result<OneVsAllModel> model = TrainOneVsAll(d, LinearTrainer());
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->model(0)->Decision(SparseVector()), 0.0);
}

TEST(OneVsAllTest, ScoresMatchPerModelDecisions) {
  Result<OneVsAllModel> model = TrainOneVsAll(ThreeTagData(), LinearTrainer());
  ASSERT_TRUE(model.ok());
  SparseVector x = SparseVector::FromPairs({{2, 1.0}});
  std::vector<double> scores = model->Scores(x);
  for (TagId t = 0; t < 3; ++t) {
    EXPECT_DOUBLE_EQ(scores[t], model->model(t)->Decision(x));
  }
}

TEST(OneVsAllTest, CopySemanticsDeep) {
  Result<OneVsAllModel> model = TrainOneVsAll(ThreeTagData(), LinearTrainer());
  ASSERT_TRUE(model.ok());
  OneVsAllModel copy = model.value();  // deep copy via Clone
  SparseVector x = SparseVector::FromPairs({{0, 1.0}});
  EXPECT_EQ(copy.Scores(x), model->Scores(x));
}

TEST(OneVsAllTest, SetModelReplacesAndResizes) {
  OneVsAllModel model;
  model.SetModel(4, nullptr);
  EXPECT_EQ(model.num_tags(), 5u);
  EXPECT_EQ(model.model(4), nullptr);
  EXPECT_EQ(model.model(10), nullptr);  // out of range is safe
}

TEST(OneVsAllTest, WireSizeSumsModels) {
  Result<OneVsAllModel> model = TrainOneVsAll(ThreeTagData(), LinearTrainer());
  ASSERT_TRUE(model.ok());
  std::size_t sum = 0;
  for (TagId t = 0; t < model->num_tags(); ++t) {
    sum += model->model(t)->WireSize();
  }
  EXPECT_EQ(model->WireSize(), sum);
}

TEST(OneVsAllTest, TrainerFailurePropagates) {
  BinaryTrainer failing =
      [](const std::vector<Example>&)
      -> Result<std::unique_ptr<BinaryClassifier>> {
    return Status::Internal("boom");
  };
  EXPECT_EQ(TrainOneVsAll(ThreeTagData(), failing).status().code(),
            StatusCode::kInternal);
}

}  // namespace
}  // namespace p2pdt
