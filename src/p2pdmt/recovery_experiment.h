#ifndef P2PDT_P2PDMT_RECOVERY_EXPERIMENT_H_
#define P2PDT_P2PDMT_RECOVERY_EXPERIMENT_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "p2pdmt/experiment.h"

namespace p2pdt {

/// Outcome of the crash-restore equivalence experiment.
struct CrashRestoreReport {
  std::string algorithm;
  std::size_t crashed_peers = 0;
  std::size_t restored_peers = 0;
  uint64_t checkpoint_bytes = 0;
  std::size_t predictions = 0;
  /// Predictions whose tag sets differ between the uninterrupted run and
  /// the crash→checkpoint-restore run.
  std::size_t mismatched_tags = 0;
  /// Predictions whose raw score vectors differ *bitwise* (exact double
  /// comparison, no tolerance).
  std::size_t mismatched_scores = 0;
  /// Restored peers whose re-snapshot differs from the pre-crash blob —
  /// a byte-exact round-trip check on Snapshot/Restore themselves.
  std::size_t resnapshot_mismatches = 0;

  /// The durability guarantee under test: restoring from checkpoints is
  /// indistinguishable — bit for bit — from never having crashed.
  bool bit_identical() const {
    return mismatched_tags == 0 && mismatched_scores == 0 &&
           resnapshot_mismatches == 0 && predictions > 0 &&
           restored_peers == crashed_peers;
  }
};

/// Runs the same experiment twice with identical seeds — once uninterrupted,
/// once crashing `num_crashed_peers` peers after training (state evicted),
/// checkpoint-restoring them, and re-running the identical prediction
/// workload — then compares every prediction bitwise.
///
/// `base.env.churn` is forced to none: this experiment isolates the
/// restore path; the churn sweep covers random failure timing.
Result<CrashRestoreReport> RunCrashRestoreExperiment(
    const VectorizedCorpus& corpus, const ExperimentOptions& base,
    std::size_t num_crashed_peers);

/// One grid point of the warm-vs-cold rejoin sweep, flattened for
/// bench_results/churn.csv.
struct ChurnRow {
  std::string algorithm;
  std::string churn = "none";
  /// "warm" (checkpoint restore) or "cold" (retrain from scratch).
  std::string rejoin_mode = "warm";

  double micro_f1 = 0.0;
  double macro_f1 = 0.0;
  std::size_t failed_predictions = 0;
  std::size_t test_documents = 0;

  uint64_t failures = 0;
  uint64_t rejoins = 0;
  uint64_t warm_rejoins = 0;
  uint64_t cold_rejoins = 0;
  uint64_t corrupt_checkpoints = 0;
  /// Retrain work a rejoining peer performed (training examples refit);
  /// the cost warm rejoin avoids.
  uint64_t retrain_examples = 0;
  uint64_t checkpoint_bytes = 0;
  double mean_rejoin_latency_sec = 0.0;
  double max_rejoin_latency_sec = 0.0;
};

struct ChurnSweepOptions {
  /// Template for every run; churn model and rejoin mode are overridden
  /// per grid point.
  ExperimentOptions base;
  std::vector<AlgorithmType> algorithms = {AlgorithmType::kCempar,
                                           AlgorithmType::kPace};
  std::vector<ChurnType> churn_models = {ChurnType::kNone,
                                         ChurnType::kExponential,
                                         ChurnType::kPareto};
  /// Post-training churn exposure before evaluation (simulated seconds).
  double exposure_sim_seconds = 600.0;
  /// Invoked after every completed point (progress reporting); may be null.
  std::function<void(const ChurnRow&)> on_point;
};

/// Runs algorithms × churn models × {warm, cold}: every churned point runs
/// with recovery enabled, once restoring from checkpoints and once
/// retraining cold, under identical seeds — so the rows differ only in
/// recovery cost, never in final accuracy (training is deterministic).
/// Failed runs are skipped with a warning rather than aborting the sweep.
std::vector<ChurnRow> RunWarmColdSweep(const VectorizedCorpus& corpus,
                                       const ChurnSweepOptions& options);

/// Flattens sweep rows into the CSV schema bench_churn writes
/// (bench_results/churn.csv).
CsvWriter ChurnCsv(const std::vector<ChurnRow>& rows);

}  // namespace p2pdt

#endif  // P2PDT_P2PDMT_RECOVERY_EXPERIMENT_H_
