#include "p2psim/churn.h"

#include <set>

#include <gtest/gtest.h>

#include "p2pdmt/environment.h"
#include "p2pml/cempar.h"
#include "p2pml/pace.h"

namespace p2pdt {
namespace {

TEST(ChurnModelTest, NoChurnNeverEnds) {
  NoChurn model;
  Rng rng(1);
  EXPECT_GE(model.NextOnlineDuration(rng), 1e17);
  EXPECT_DOUBLE_EQ(model.NextOfflineDuration(rng), 0.0);
  EXPECT_EQ(model.name(), "none");
}

TEST(ChurnModelTest, ExponentialMeansMatch) {
  ExponentialChurn model(100.0, 25.0);
  Rng rng(2);
  double on = 0, off = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    on += model.NextOnlineDuration(rng);
    off += model.NextOfflineDuration(rng);
  }
  EXPECT_NEAR(on / n, 100.0, 3.0);
  EXPECT_NEAR(off / n, 25.0, 1.0);
}

TEST(ChurnModelTest, ParetoMeanAndMinimum) {
  ParetoChurn model(90.0, 10.0, 1.5);
  Rng rng(3);
  double sum = 0, min_seen = 1e18;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double d = model.NextOnlineDuration(rng);
    sum += d;
    min_seen = std::min(min_seen, d);
  }
  // xm = mean*(a-1)/a = 30; heavy tail → generous tolerance on the mean.
  EXPECT_NEAR(min_seen, 30.0, 1.0);
  EXPECT_NEAR(sum / n, 90.0, 10.0);
}

TEST(ChurnDriverTest, NoChurnSchedulesNothing) {
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(10);
  ChurnDriver driver(sim, net, std::make_shared<NoChurn>());
  driver.Start();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(ChurnDriverTest, TransitionsToggleAndNotify) {
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(20);
  ChurnDriver driver(sim, net,
                     std::make_shared<ExponentialChurn>(10.0, 5.0), 77);
  int offline_events = 0, online_events = 0;
  driver.AddListener([&](NodeId, bool online) {
    (online ? online_events : offline_events) += 1;
  });
  driver.Start();
  sim.RunUntil(100.0);

  EXPECT_GT(driver.num_failures(), 0u);
  EXPECT_GT(driver.num_rejoins(), 0u);
  EXPECT_EQ(driver.num_failures(),
            static_cast<uint64_t>(offline_events));
  EXPECT_EQ(driver.num_rejoins(), static_cast<uint64_t>(online_events));
  // Transitions alternate per node, so failures ≥ rejoins ≥ failures - N.
  EXPECT_GE(driver.num_failures(), driver.num_rejoins());
  EXPECT_LE(driver.num_failures() - driver.num_rejoins(), 20u);
}

TEST(ChurnDriverTest, SteadyStateOnlineFractionMatchesTheory) {
  // With mean online 30 and offline 10, availability → 0.75.
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(200);
  ChurnDriver driver(sim, net, std::make_shared<ExponentialChurn>(30.0, 10.0),
                     5);
  driver.Start();
  sim.RunUntil(300.0);  // burn-in
  double sum = 0;
  int samples = 0;
  for (int i = 0; i < 50; ++i) {
    sim.RunUntil(sim.Now() + 5.0);
    sum += static_cast<double>(net.num_online()) / 200.0;
    ++samples;
  }
  EXPECT_NEAR(sum / samples, 0.75, 0.06);
}

TEST(ChurnDriverTest, DeterministicInSeed) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    PhysicalNetwork net(sim);
    net.AddNodes(30);
    ChurnDriver driver(sim, net,
                       std::make_shared<ExponentialChurn>(5.0, 5.0), seed);
    driver.Start();
    sim.RunUntil(50.0);
    std::vector<bool> state;
    for (NodeId n = 0; n < 30; ++n) state.push_back(net.IsOnline(n));
    return std::make_pair(driver.num_failures(), state);
  };
  auto [f1, s1] = run(11);
  auto [f2, s2] = run(11);
  auto [f3, s3] = run(12);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(s1, s2);
  EXPECT_TRUE(f1 != f3 || s1 != s3);
}

// ---------------------------------------------------------------------------
// Regression tests: a prediction whose serving peers die mid-flight must
// resolve to P2PPrediction::success == false — promptly, not as a hang, and
// not as an empty "successful" prediction.
// ---------------------------------------------------------------------------

// Four tags, each tied to a distinct feature; peers specialize in two tags.
std::vector<MultiLabelDataset> MakeChurnPeerData(std::size_t num_peers,
                                                 std::size_t per_peer,
                                                 uint64_t seed) {
  Rng data_rng(seed);
  std::vector<MultiLabelDataset> peers(num_peers, MultiLabelDataset(4));
  for (std::size_t p = 0; p < num_peers; ++p) {
    for (std::size_t i = 0; i < per_peer; ++i) {
      TagId tag = static_cast<TagId>((p + i) % 4);
      MultiLabelExample ex;
      ex.x = SparseVector::FromPairs(
          {{tag * 3 + static_cast<uint32_t>(data_rng.NextU64(3)), 1.0},
           {12 + static_cast<uint32_t>(data_rng.NextU64(4)),
            0.3 * data_rng.NextDouble()}});
      ex.tags = {tag};
      peers[p].Add(std::move(ex));
    }
  }
  return peers;
}

TEST(ChurnPredictionTest, CemparAllSuperPeersFailMidPrediction) {
  EnvironmentOptions eo;
  eo.num_peers = 16;
  auto env = std::move(Environment::Create(eo)).value();
  CemparOptions opt;
  opt.svm.kernel = Kernel::Linear();
  Cempar cempar(env->sim(), env->net(), *env->chord(), opt);
  ASSERT_TRUE(cempar.Setup(MakeChurnPeerData(16, 8, 21), 4).ok());
  bool trained = false;
  cempar.Train([&](Status s) {
    ASSERT_TRUE(s.ok());
    trained = true;
  });
  env->RunUntilFlag(trained, 3600);
  ASSERT_TRUE(trained);

  // A requester that hosts no home, so every score must come off-node.
  std::set<NodeId> owners;
  for (NodeId owner : cempar.HomeOwners()) {
    if (owner != kInvalidNode) owners.insert(owner);
  }
  NodeId requester = 0;
  while (owners.count(requester)) ++requester;
  ASSERT_LT(requester, 16u);

  // Issue the prediction — requests to the super-peers are now in flight —
  // then kill every super-peer before the simulator delivers anything.
  bool done = false;
  P2PPrediction pred;
  cempar.Predict(requester,
                 SparseVector::FromPairs({{0u, 1.0}, {1u, 1.0}}),
                 [&](P2PPrediction p) {
                   pred = std::move(p);
                   done = true;
                 });
  for (NodeId owner : owners) env->net().SetOnline(owner, false);
  env->RunUntilFlag(done, 3600);

  ASSERT_TRUE(done) << "prediction hung after super-peer failure";
  EXPECT_FALSE(pred.success);
  EXPECT_TRUE(pred.tags.empty());
}

TEST(ChurnPredictionTest, PaceRequesterWithNoModelsFailsPromptly) {
  // PACE's serving peers are the model contributors. A peer that missed
  // every broadcast (offline through training) holds no models; once the
  // contributors fail there is nothing to fall back to — prediction must
  // report failure, not hang and not return an empty success.
  EnvironmentOptions eo;
  eo.num_peers = 10;
  auto env = std::move(Environment::Create(eo)).value();
  Pace pace(env->sim(), env->net(), env->overlay(), {});
  ASSERT_TRUE(pace.Setup(MakeChurnPeerData(10, 8, 22), 4).ok());
  env->net().SetOnline(7, false);
  bool trained = false;
  pace.Train([&](Status) { trained = true; });
  env->RunUntilFlag(trained, 3600);
  ASSERT_TRUE(trained);

  env->net().SetOnline(7, true);
  for (NodeId peer = 0; peer < 10; ++peer) {
    if (peer != 7) env->net().SetOnline(peer, false);
  }
  bool done = false;
  P2PPrediction pred;
  pace.Predict(7, SparseVector::FromPairs({{0u, 1.0}, {1u, 1.0}}),
               [&](P2PPrediction p) {
                 pred = std::move(p);
                 done = true;
               });
  env->RunUntilFlag(done, 3600);

  ASSERT_TRUE(done) << "prediction hung with no reachable models";
  EXPECT_FALSE(pred.success);
  EXPECT_TRUE(pred.tags.empty());
}

}  // namespace
}  // namespace p2pdt
