#ifndef P2PDT_P2PSIM_SHARDING_H_
#define P2PDT_P2PSIM_SHARDING_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/function.h"
#include "common/rng.h"

namespace p2pdt {

/// Partitioning plan for one ShardedPhase call.
struct ShardPlanOptions {
  /// Number of contiguous shards the item range is split into. 0 sizes the
  /// plan to the global concurrency (one shard per available thread).
  std::size_t shards = 0;
  /// Threads driving the shards (the ParallelFor `threads` knob: 0 = global
  /// P2PDT_THREADS setting, 1 = serial on the caller).
  std::size_t num_threads = 0;
  /// Base seed for the per-shard RNG streams: shard s computes with
  /// Rng(DeriveSeed(seed, s)). Fixed shard count => fixed streams, whatever
  /// the thread count. Work that must be bit-identical across *shard*
  /// counts too must key its randomness on item identity instead and leave
  /// the shard stream untouched (every classifier in this repo does).
  uint64_t seed = 0;
};

/// Shard count a plan resolves to for `num_items` items (>= 1; never more
/// than the item count).
std::size_t ResolveShards(std::size_t num_items, const ShardPlanOptions& options);

/// Runs a compute/commit phase over `num_items` items, sharded across the
/// global thread pool.
///
/// The item range [0, num_items) is split into `shards` contiguous shards;
/// each shard runs on one pool task and calls `work(item, shard_rng)` for
/// its items in ascending order. `work` does the *compute* — it must touch
/// only per-item state (its own output slot) — and returns a *commit*
/// action (possibly empty) holding everything with cross-item effects:
/// simulator scheduling, network sends, shared-container writes.
///
/// After every shard finishes, the commit actions execute on the calling
/// thread in item order 0..num_items-1 — exactly the order a serial loop
/// would have issued them. That ordering is independent of both the shard
/// count and the thread count, which is what makes sharded runs
/// bit-identical to serial ones: the simulator sees one deterministic
/// sequence of calls either way.
///
/// Commits are UniqueFunction, so a commit may own move-only payloads (a
/// trained model moved from the worker into the closure, never copied).
///
/// Returns the resolved shard count (diagnostics).
std::size_t ShardedPhase(
    std::size_t num_items, const ShardPlanOptions& options,
    const std::function<UniqueFunction(std::size_t item, Rng& shard_rng)>& work);

}  // namespace p2pdt

#endif  // P2PDT_P2PSIM_SHARDING_H_
