#ifndef P2PDT_ML_METRICS_H_
#define P2PDT_ML_METRICS_H_

#include <string>
#include <vector>

#include "ml/dataset.h"

namespace p2pdt {

/// Standard multi-label evaluation metrics over (true tag set, predicted
/// tag set) pairs. "Tagging accuracy" in the paper maps to these; we report
/// the full family so experiment shapes can be compared robustly.
struct MultiLabelMetrics {
  std::size_t num_examples = 0;
  TagId num_tags = 0;

  /// Micro-averaged precision/recall/F1 (pooled over all (doc, tag) pairs).
  double micro_precision = 0.0;
  double micro_recall = 0.0;
  double micro_f1 = 0.0;

  /// Macro-averaged F1 (unweighted mean of per-tag F1 over tags that occur).
  double macro_f1 = 0.0;

  /// Fraction of (doc, tag) decisions that are wrong.
  double hamming_loss = 0.0;

  /// Fraction of documents whose predicted tag set matches exactly.
  double subset_accuracy = 0.0;

  /// Example-based Jaccard accuracy: mean |T ∩ P| / |T ∪ P|.
  double jaccard_accuracy = 0.0;

  /// Per-tag (precision, recall, F1, support) rows, indexed by tag.
  struct PerTag {
    double precision = 0.0;
    double recall = 0.0;
    double f1 = 0.0;
    std::size_t support = 0;
  };
  std::vector<PerTag> per_tag;

  std::string ToString() const;
};

/// Computes all metrics. `truth[i]` and `predicted[i]` must be sorted
/// unique tag lists for document i; both vectors must be the same length.
/// `num_tags` bounds the tag universe for Hamming loss.
MultiLabelMetrics EvaluateMultiLabel(
    const std::vector<std::vector<TagId>>& truth,
    const std::vector<std::vector<TagId>>& predicted, TagId num_tags);

/// Binary-classification convenience: accuracy of sign predictions over
/// {-1,+1}-labeled examples.
double BinaryAccuracy(const std::vector<double>& truth,
                      const std::vector<double>& predicted);

}  // namespace p2pdt

#endif  // P2PDT_ML_METRICS_H_
