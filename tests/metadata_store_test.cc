#include "core/metadata_store.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

class MetadataStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/p2pdt_meta_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

Document Doc(DocId id) {
  Document d;
  d.id = id;
  d.tags.push_back({"research", TagSource::kManual, 1.0});
  d.tags.push_back({"p2p", TagSource::kAuto, 0.8125});
  d.tags.push_back({"vldb", TagSource::kSuggested, 0.5});
  return d;
}

TEST_F(MetadataStoreTest, SaveLoadRoundTrip) {
  MetadataStore store(dir_);
  ASSERT_TRUE(store.Save(Doc(7)).ok());
  Result<std::vector<TagAssignment>> loaded = store.Load(7);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[0].tag, "research");
  EXPECT_EQ((*loaded)[0].source, TagSource::kManual);
  EXPECT_DOUBLE_EQ((*loaded)[0].confidence, 1.0);
  EXPECT_EQ((*loaded)[1].source, TagSource::kAuto);
  EXPECT_DOUBLE_EQ((*loaded)[1].confidence, 0.8125);
  EXPECT_EQ((*loaded)[2].source, TagSource::kSuggested);
}

TEST_F(MetadataStoreTest, LoadMissingIsNotFound) {
  MetadataStore store(dir_);
  EXPECT_EQ(store.Load(42).status().code(), StatusCode::kNotFound);
}

TEST_F(MetadataStoreTest, SaveReplacesExisting) {
  MetadataStore store(dir_);
  ASSERT_TRUE(store.Save(Doc(1)).ok());
  Document updated;
  updated.id = 1;
  updated.tags.push_back({"only", TagSource::kManual, 1.0});
  ASSERT_TRUE(store.Save(updated).ok());
  Result<std::vector<TagAssignment>> loaded = store.Load(1);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].tag, "only");
}

TEST_F(MetadataStoreTest, EraseRemovesSidecar) {
  MetadataStore store(dir_);
  ASSERT_TRUE(store.Save(Doc(2)).ok());
  ASSERT_TRUE(store.Erase(2).ok());
  EXPECT_FALSE(store.Load(2).ok());
  EXPECT_TRUE(store.Erase(2).ok());  // idempotent
}

TEST_F(MetadataStoreTest, ListDocumentsSorted) {
  MetadataStore store(dir_);
  ASSERT_TRUE(store.Save(Doc(5)).ok());
  ASSERT_TRUE(store.Save(Doc(1)).ok());
  ASSERT_TRUE(store.Save(Doc(9)).ok());
  Result<std::vector<DocId>> docs = store.ListDocuments();
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs.value(), (std::vector<DocId>{1, 5, 9}));
}

TEST_F(MetadataStoreTest, ListOnMissingDirectoryIsEmpty) {
  MetadataStore store(dir_ + "/never_created");
  Result<std::vector<DocId>> docs = store.ListDocuments();
  ASSERT_TRUE(docs.ok());
  EXPECT_TRUE(docs->empty());
}

TEST_F(MetadataStoreTest, SaveLeavesNoTempFile) {
  MetadataStore store(dir_);
  ASSERT_TRUE(store.Save(Doc(4)).ok());
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/4.tags.tmp"));
}

TEST_F(MetadataStoreTest, TornSidecarLineIsSkippedNotFatal) {
  MetadataStore store(dir_);
  ASSERT_TRUE(store.Save(Doc(6)).ok());
  {
    // A crash mid-append (pre-atomic writer / external editor) leaves a
    // partial line: field separator but an empty tag.
    std::ofstream f(dir_ + "/6.tags", std::ios::app);
    f << "\tau";  // torn: no tag, truncated source, no newline
  }
  std::size_t skipped = 0;
  Result<std::vector<TagAssignment>> loaded = store.Load(6, &skipped);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);  // the valid assignments survive
  EXPECT_EQ(skipped, 1u);
}

TEST_F(MetadataStoreTest, EmptyTagListProducesEmptySidecar) {
  MetadataStore store(dir_);
  Document d;
  d.id = 3;
  ASSERT_TRUE(store.Save(d).ok());
  Result<std::vector<TagAssignment>> loaded = store.Load(3);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace p2pdt
