#include "ml/kernel_svm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/cost_ledger.h"
#include "common/profile.h"

namespace p2pdt {

double KernelSvmModel::Decision(const SparseVector& x) const {
  PhaseScope profile("kernel_decision");
  double sum = bias_;
  for (const auto& sv : svs_) {
    sum += sv.alpha * sv.y * kernel_(sv.x, x);
  }
  return sum;
}

std::size_t KernelSvmModel::WireSize() const {
  // Each SV ships its vector plus label and alpha; one double for the bias
  // and a small kernel descriptor.
  std::size_t bytes = 8 + 16;
  for (const auto& sv : svs_) bytes += sv.x.WireSize() + 16;
  return bytes;
}

Result<KernelSvmModel> TrainKernelSvm(const std::vector<Example>& data,
                                      const KernelSvmOptions& options) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot train kernel SVM on empty data");
  }
  if (options.c <= 0.0) {
    return Status::InvalidArgument("kernel SVM requires C > 0");
  }
  const std::size_t n = data.size();

  std::vector<double> y(n);
  bool has_pos = false, has_neg = false;
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = data[i].y >= 0.0 ? 1.0 : -1.0;
    (y[i] > 0 ? has_pos : has_neg) = true;
  }
  // Degenerate single-class data: constant decision at the class sign.
  if (!has_pos || !has_neg) {
    return KernelSvmModel(options.kernel, {}, has_pos ? 1.0 : -1.0);
  }

  // Materialized kernel matrix Q_ij = y_i y_j K(x_i, x_j).
  std::vector<double> q(n * n);
  {
    PhaseScope profile("kernel_matrix");
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        double k = options.kernel(data[i].x, data[j].x);
        q[i * n + j] = y[i] * y[j] * k;
        q[j * n + i] = q[i * n + j];
      }
    }
  }

  // SMO solving min ½αᵀQα − eᵀα, 0 ≤ α ≤ C, yᵀα = 0, with
  // maximal-violating-pair selection.
  PhaseScope profile("smo_solve");
  std::vector<double> alpha(n, 0.0);
  std::vector<double> grad(n, -1.0);  // G_i = (Qα)_i − 1
  const double c = options.c;
  const double tau = 1e-12;

  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Select i: max over I_up of −y_i G_i; j: min over I_down of −y_j G_j.
    int i_sel = -1, j_sel = -1;
    double g_max = -std::numeric_limits<double>::infinity();
    double g_min = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      bool in_up = (y[t] > 0 && alpha[t] < c) || (y[t] < 0 && alpha[t] > 0);
      bool in_down = (y[t] > 0 && alpha[t] > 0) || (y[t] < 0 && alpha[t] < c);
      double v = -y[t] * grad[t];
      if (in_up && v > g_max) {
        g_max = v;
        i_sel = static_cast<int>(t);
      }
      if (in_down && v < g_min) {
        g_min = v;
        j_sel = static_cast<int>(t);
      }
    }
    if (i_sel < 0 || j_sel < 0 || g_max - g_min < options.tolerance) break;

    const std::size_t i = static_cast<std::size_t>(i_sel);
    const std::size_t j = static_cast<std::size_t>(j_sel);

    // Solve the two-variable subproblem analytically.
    double quad = q[i * n + i] + q[j * n + j] - 2.0 * y[i] * y[j] * q[i * n + j];
    if (quad <= 0.0) quad = tau;
    double delta = (-y[i] * grad[i] + y[j] * grad[j]) / quad;

    // Clip to the feasible box along the constraint line yᵀα = const.
    double ai_old = alpha[i], aj_old = alpha[j];
    double ai = ai_old + y[i] * delta;
    double aj = aj_old - y[j] * delta;
    // Project back into [0, C] on both coordinates, preserving the line.
    double sum = y[i] * ai_old + y[j] * aj_old;
    ai = std::clamp(ai, 0.0, c);
    aj = y[j] * (sum - y[i] * ai);
    aj = std::clamp(aj, 0.0, c);
    ai = y[i] * (sum - y[j] * aj);
    ai = std::clamp(ai, 0.0, c);

    double dai = ai - ai_old, daj = aj - aj_old;
    if (std::fabs(dai) < tau && std::fabs(daj) < tau) break;
    alpha[i] = ai;
    alpha[j] = aj;
    for (std::size_t t = 0; t < n; ++t) {
      grad[t] += q[t * n + i] * dai + q[t * n + j] * daj;
    }
  }
  if (CostLedger::enabled()) {
    CostLedger::Tls().smo_iterations += static_cast<uint64_t>(iter);
  }

  // Bias: average of y_i − Σ α_j y_j K(x_j, x_i) over free SVs; fall back to
  // the midpoint of the KKT bounds when no free SVs exist.
  double b_sum = 0.0;
  int b_count = 0;
  double ub = std::numeric_limits<double>::infinity();
  double lb = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    double yg = y[i] * grad[i];  // y_i (Qα)_i − y_i = y_i f(x_i) − y_i − b...
    // grad_i = Σ_j Q_ij α_j − 1 = y_i (Σ_j α_j y_j K_ij) − 1
    // ⇒ Σ_j α_j y_j K_ij = y_i (grad_i + 1); b = y_i − that value.
    double decision_no_bias = y[i] * (grad[i] + 1.0);
    double bi = y[i] - decision_no_bias;
    if (alpha[i] > tau && alpha[i] < c - tau) {
      b_sum += bi;
      ++b_count;
    } else if ((alpha[i] <= tau && y[i] > 0) ||
               (alpha[i] >= c - tau && y[i] < 0)) {
      ub = std::min(ub, bi);
    } else {
      lb = std::max(lb, bi);
    }
    (void)yg;
  }
  double bias;
  if (b_count > 0) {
    bias = b_sum / b_count;
  } else if (std::isfinite(ub) && std::isfinite(lb)) {
    bias = (ub + lb) / 2.0;
  } else if (std::isfinite(ub)) {
    bias = ub;
  } else if (std::isfinite(lb)) {
    bias = lb;
  } else {
    bias = 0.0;
  }

  std::vector<SupportVector> svs;
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > tau) svs.push_back({data[i].x, y[i], alpha[i]});
  }
  return KernelSvmModel(options.kernel, std::move(svs), bias);
}

namespace {

// Pools the support vectors of `models` into a training set, deduplicating
// identical (vector, label) pairs so repeated cascade levels do not inflate
// the problem.
std::vector<Example> PoolSupportVectors(
    const std::vector<const KernelSvmModel*>& models) {
  std::vector<Example> pool;
  for (const KernelSvmModel* m : models) {
    for (const auto& sv : m->support_vectors()) {
      bool duplicate = false;
      for (const auto& ex : pool) {
        if (ex.y == sv.y && ex.x == sv.x) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) pool.push_back({sv.x, sv.y});
    }
  }
  return pool;
}

}  // namespace

Result<KernelSvmModel> CascadeMerge(
    const std::vector<const KernelSvmModel*>& models,
    const KernelSvmOptions& options) {
  if (models.empty()) {
    return Status::InvalidArgument("cascade merge of zero models");
  }
  if (models.size() == 1) {
    return KernelSvmModel(*models[0]);
  }
  std::vector<Example> pool = PoolSupportVectors(models);
  if (pool.empty()) {
    // All inputs were degenerate constant models; majority of their biases.
    double s = 0.0;
    for (const KernelSvmModel* m : models) s += m->bias() >= 0 ? 1.0 : -1.0;
    return KernelSvmModel(options.kernel, {}, s >= 0 ? 1.0 : -1.0);
  }
  return TrainKernelSvm(pool, options);
}

Result<KernelSvmModel> CascadeTree(
    const std::vector<const KernelSvmModel*>& models,
    const KernelSvmOptions& options, std::size_t fan_in) {
  if (models.empty()) {
    return Status::InvalidArgument("cascade tree of zero models");
  }
  if (fan_in < 2) {
    return Status::InvalidArgument("cascade fan-in must be >= 2");
  }
  // Level-by-level merge; own the intermediate models.
  std::vector<KernelSvmModel> current;
  current.reserve(models.size());
  for (const KernelSvmModel* m : models) current.push_back(*m);

  while (current.size() > 1) {
    std::vector<KernelSvmModel> next;
    for (std::size_t i = 0; i < current.size(); i += fan_in) {
      std::vector<const KernelSvmModel*> group;
      for (std::size_t j = i; j < std::min(i + fan_in, current.size()); ++j) {
        group.push_back(&current[j]);
      }
      Result<KernelSvmModel> merged = CascadeMerge(group, options);
      if (!merged.ok()) return merged.status();
      next.push_back(std::move(merged).value());
    }
    current = std::move(next);
  }
  return std::move(current[0]);
}

}  // namespace p2pdt
