#include "p2psim/network.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(NetworkTest, AddNodesStartOnline) {
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(5);
  EXPECT_EQ(net.num_nodes(), 5u);
  EXPECT_EQ(net.num_online(), 5u);
  for (NodeId n = 0; n < 5; ++n) EXPECT_TRUE(net.IsOnline(n));
}

TEST(NetworkTest, OnlineToggleTracksCount) {
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(3);
  net.SetOnline(1, false);
  EXPECT_EQ(net.num_online(), 2u);
  net.SetOnline(1, false);  // idempotent
  EXPECT_EQ(net.num_online(), 2u);
  net.SetOnline(1, true);
  EXPECT_EQ(net.num_online(), 3u);
}

TEST(NetworkTest, LatencyWithinConfiguredBounds) {
  Simulator sim;
  PhysicalNetworkOptions opt;
  opt.min_latency = 0.02;
  opt.max_latency = 0.2;
  PhysicalNetwork net(sim, opt);
  net.AddNodes(20);
  for (NodeId a = 0; a < 20; ++a) {
    for (NodeId b = 0; b < 20; ++b) {
      double lat = net.Latency(a, b);
      if (a == b) {
        EXPECT_DOUBLE_EQ(lat, 0.0);
      } else {
        EXPECT_GE(lat, 0.02);
        EXPECT_LE(lat, 0.2);
        EXPECT_DOUBLE_EQ(lat, net.Latency(b, a));  // symmetric
      }
    }
  }
}

TEST(NetworkTest, DeliveryAfterLatencyPlusTransmission) {
  Simulator sim;
  PhysicalNetworkOptions opt;
  opt.min_latency = 0.05;
  opt.max_latency = 0.05;  // constant latency
  opt.bandwidth_bytes_per_sec = 1000.0;
  PhysicalNetwork net(sim, opt);
  net.AddNodes(2);
  double delivered_at = -1;
  net.Send(0, 1, 500, MessageType::kDataTransfer,
           [&] { delivered_at = sim.Now(); });
  sim.RunAll();
  EXPECT_NEAR(delivered_at, 0.05 + 0.5, 1e-9);
  EXPECT_EQ(net.stats().messages_delivered(), 1u);
  EXPECT_EQ(net.stats().bytes_sent(), 500u);
}

TEST(NetworkTest, SenderOfflineDropsImmediately) {
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(2);
  net.SetOnline(0, false);
  bool delivered = false, dropped = false;
  net.Send(0, 1, 10, MessageType::kLookup, [&] { delivered = true; },
           [&] { dropped = true; });
  sim.RunAll();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(dropped);
  EXPECT_EQ(net.stats().messages_dropped(), 1u);
}

TEST(NetworkTest, ReceiverOfflineAtArrivalDrops) {
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(2);
  bool delivered = false, dropped = false;
  net.Send(0, 1, 10, MessageType::kLookup, [&] { delivered = true; },
           [&] { dropped = true; });
  // The receiver fails while the message is in flight.
  sim.Schedule(0.001, [&] { net.SetOnline(1, false); });
  sim.RunAll();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(dropped);
}

TEST(NetworkTest, ReceiverBackOnlineBeforeArrivalDelivers) {
  Simulator sim;
  PhysicalNetworkOptions opt;
  opt.min_latency = opt.max_latency = 0.1;
  PhysicalNetwork net(sim, opt);
  net.AddNodes(2);
  net.SetOnline(1, false);
  bool delivered = false;
  net.Send(0, 1, 10, MessageType::kLookup, [&] { delivered = true; });
  sim.Schedule(0.01, [&] { net.SetOnline(1, true); });
  sim.RunAll();
  EXPECT_TRUE(delivered);
}

TEST(NetworkTest, LossRateDropsApproximately) {
  Simulator sim;
  PhysicalNetworkOptions opt;
  opt.loss_rate = 0.25;
  PhysicalNetwork net(sim, opt);
  net.AddNodes(2);
  int delivered = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    net.Send(0, 1, 8, MessageType::kGossip, [&] { ++delivered; });
  }
  sim.RunAll();
  EXPECT_NEAR(delivered / static_cast<double>(n), 0.75, 0.03);
  EXPECT_EQ(net.stats().messages_sent(), static_cast<uint64_t>(n));
}

TEST(NetworkTest, StatsBreakdownByType) {
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(2);
  net.Send(0, 1, 100, MessageType::kModelUpload, nullptr);
  net.Send(0, 1, 50, MessageType::kModelUpload, nullptr);
  net.Send(1, 0, 10, MessageType::kLookup, nullptr);
  sim.RunAll();
  EXPECT_EQ(net.stats().messages_sent(MessageType::kModelUpload), 2u);
  EXPECT_EQ(net.stats().bytes_sent(MessageType::kModelUpload), 150u);
  EXPECT_EQ(net.stats().messages_sent(MessageType::kLookup), 1u);
  EXPECT_EQ(net.stats().messages_sent(), 3u);
}

TEST(NetworkTest, StatsResetClears) {
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(2);
  net.Send(0, 1, 100, MessageType::kGossip, nullptr);
  sim.RunAll();
  net.stats().Reset();
  EXPECT_EQ(net.stats().messages_sent(), 0u);
  EXPECT_EQ(net.stats().bytes_sent(), 0u);
}

TEST(NetworkTest, StatsToStringListsActiveTypes) {
  Simulator sim;
  PhysicalNetwork net(sim);
  net.AddNodes(2);
  net.Send(0, 1, 100, MessageType::kModelBroadcast, nullptr);
  sim.RunAll();
  std::string s = net.stats().ToString();
  EXPECT_NE(s.find("model_broadcast"), std::string::npos);
  EXPECT_EQ(s.find("lookup"), std::string::npos);
}

TEST(NetworkTest, SelfSendDeliversWithZeroLatency) {
  Simulator sim;
  PhysicalNetworkOptions opt;
  opt.bandwidth_bytes_per_sec = 1e12;
  PhysicalNetwork net(sim, opt);
  net.AddNodes(1);
  double at = -1;
  net.Send(0, 0, 8, MessageType::kLookup, [&] { at = sim.Now(); });
  sim.RunAll();
  EXPECT_NEAR(at, 0.0, 1e-9);
}

}  // namespace
}  // namespace p2pdt
