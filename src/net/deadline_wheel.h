#ifndef P2PDT_NET_DEADLINE_WHEEL_H_
#define P2PDT_NET_DEADLINE_WHEEL_H_

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <vector>

namespace p2pdt {

/// Hashed timing wheel for coarse connection deadlines (idle reaping,
/// drain timeouts). Timers land in slot (deadline / tick) % slots; Advance
/// walks the slots between the last processed tick and `now`, firing every
/// entry whose deadline has passed. Entries more than one rotation out
/// simply stay in their slot until a pass where they are actually due.
///
/// Precision is one tick — exactly what reaping wants: cheap arm/cancel
/// (O(1) amortized) at thousands of connections, with deadlines that only
/// need to be roughly right. Event-queue-grade ordering lives in
/// CalendarQueue; this wheel is the socket-daemon sibling tuned for
/// wall-clock timeouts, not simulation determinism.
///
/// Single-threaded: owned and driven by the event loop thread.
class DeadlineWheel {
 public:
  using TimerId = uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  explicit DeadlineWheel(double tick_seconds = 0.05, std::size_t slots = 256);

  /// Arms a timer at absolute time `deadline` (same clock as Advance).
  TimerId Arm(double deadline, std::function<void()> callback);

  /// Cancels a pending timer. Returns false when it already fired or was
  /// never armed.
  bool Cancel(TimerId id);

  /// Fires every timer with deadline <= now. Callbacks may arm or cancel
  /// other timers freely.
  void Advance(double now);

  /// Earliest pending deadline, or +infinity when no timer is armed.
  double NextDeadline() const;

  std::size_t armed() const { return entries_.size(); }

 private:
  struct Entry {
    double deadline = 0.0;
    std::size_t slot = 0;
    std::function<void()> callback;
  };

  std::size_t SlotFor(double deadline) const;

  double tick_;
  std::vector<std::vector<TimerId>> slots_;
  std::unordered_map<TimerId, Entry> entries_;
  /// Pending deadlines, for NextDeadline(); multiset because deadlines
  /// collide (every idle conn re-arms at now + idle_timeout).
  std::multiset<double> deadlines_;
  TimerId next_id_ = 1;
  /// Last tick index Advance processed through.
  int64_t last_tick_ = -1;
};

}  // namespace p2pdt

#endif  // P2PDT_NET_DEADLINE_WHEEL_H_
