#ifndef P2PDT_NET_DAEMON_H_
#define P2PDT_NET_DAEMON_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/metrics.h"
#include "common/status.h"
#include "net/conn.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "p2pml/p2p_classifier.h"
#include "p2psim/serve_queue.h"

namespace p2pdt {

struct DaemonOptions {
  /// Listen address. Port 0 binds an ephemeral port (read it back via
  /// port() after Start — how the tests and bench avoid collisions).
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;
  int listen_backlog = 128;
  /// Accept cap; connections beyond it get a typed kTooManyConnections
  /// error frame (best effort) and an immediate close.
  std::size_t max_connections = 256;
  std::size_t max_frame_payload = kMaxFramePayload;
  /// Connections with no read/write progress for this long are reaped —
  /// the slowloris defense. <= 0 disables reaping.
  double idle_timeout = 30.0;
  /// Grace period for RequestDrain() to finish in-flight work and flush.
  double drain_timeout = 10.0;
  /// Write-buffer watermarks: above high, the connection's reads pause
  /// (backpressure); above the hard cap it is closed as a dead consumer.
  std::size_t write_high_watermark = 1u << 20;
  std::size_t write_hard_cap = 4u << 20;
  /// Wall-clock admission control (the PR 8 serving-queue discipline lifted
  /// onto real time): when enabled+admission_control, excess predict
  /// requests get a typed kOverload frame with retry-after instead of
  /// queueing without bound.
  ServeOptions serve;
  /// Modulo domain mapping the wire's requester id onto serving queues.
  std::size_t admission_nodes = 64;
  /// Optional metrics sink (counters + service latency histogram).
  MetricsRegistry* metrics = nullptr;
};

/// Crash-tolerance counters, readable after Run() returns (and internally
/// consistent at any point from the loop thread).
struct DaemonStats {
  uint64_t accepted = 0;
  uint64_t refused = 0;  // over max_connections
  uint64_t closed = 0;
  uint64_t reaped_idle = 0;
  uint64_t read_errors = 0;  // ECONNRESET and friends (abrupt RST)
  uint64_t malformed_frames = 0;   // header-level rejects
  uint64_t malformed_payloads = 0; // frame parsed, payload did not
  uint64_t oversized_frames = 0;
  uint64_t unexpected_type = 0;
  uint64_t requests = 0;
  uint64_t served_ok = 0;
  uint64_t served_degraded = 0;
  uint64_t served_failed = 0;
  uint64_t shed = 0;
  uint64_t pings = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t slow_consumer_closed = 0;
  uint64_t drain_forced_close = 0;
  /// True when a drain finished inside drain_timeout with every in-flight
  /// response flushed.
  bool drain_completed = false;
};

/// `p2pdtd` — the epoll service daemon. Serves the CEMPaR/PACE predict
/// path over real TCP sockets using the frame codec; single-threaded by
/// design (the classifier and simulator are driver-thread-only, and the
/// event loop IS that driver thread).
///
/// Robustness contract, exercised by SocketFaultInjector:
///  - malformed / oversized / zero frames answered with a typed error
///    frame, then flush-and-close; lengths are checked before allocation
///  - abrupt peer resets and mid-frame EOFs only close that connection
///  - idle and mid-frame-stalled (slowloris) connections are reaped on the
///    deadline wheel within idle_timeout (+ one wheel tick)
///  - connect floods beyond max_connections are refused with a typed error
///  - slow consumers are flow-controlled (read pause above the write
///    high-watermark, EPOLLOUT re-armed until drained) and cut at the cap
///  - RequestDrain (SIGTERM path): stop accepting, serve every request
///    already received, flush, close, Run() returns with
///    stats().drain_completed == true
class ServiceDaemon {
 public:
  /// Dispatch runs on the loop thread and answers one predict request —
  /// the bridge into CEMPaR/PACE (see ServiceHost). It must not block on
  /// the network; it may compute (that wall time is the honest service
  /// latency the histogram records).
  using Dispatch = std::function<P2PPrediction(NodeId, const SparseVector&)>;

  ServiceDaemon(DaemonOptions options, Dispatch dispatch);
  ~ServiceDaemon();

  /// Binds, listens, registers with the loop. Fills port().
  Status Start();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  /// Serves until a drain completes (or is forced at the deadline).
  /// Call from the thread that owns the classifier.
  void Run();

  /// Begins a graceful drain; safe from any thread and from signal
  /// handlers (self-pipe). Idempotent.
  void RequestDrain();

  const DaemonStats& stats() const { return stats_; }
  std::size_t open_connections() const { return conns_.size(); }
  bool draining() const { return draining_; }

 private:
  void HandleAccept(uint32_t events);
  void HandleConnEvent(int fd, uint32_t events);
  void HandleReadable(Connection& conn);
  void HandleWritable(Connection& conn);
  /// Decodes + dispatches every complete frame buffered on `conn`.
  /// Returns false when the connection was closed.
  bool DrainFrames(Connection& conn);
  void DispatchFrame(Connection& conn, const Frame& frame);
  void ServePredict(Connection& conn, const Frame& frame);
  void SendFrame(Connection& conn, FrameType type, const std::string& payload);
  void SendError(Connection& conn, uint64_t id, WireError code,
                 const std::string& message);
  /// Recomputes the epoll interest mask from buffer state (EPOLLOUT armed
  /// only while bytes are queued; EPOLLIN dropped while paused/closing).
  void UpdateInterest(Connection& conn);
  void CloseConn(int fd);
  void ArmIdleTimer(Connection& conn);
  void BeginDrain();
  void FinishDrainIfIdle();
  void Count(const char* name, uint64_t n = 1);

  DaemonOptions options_;
  Dispatch dispatch_;
  EpollLoop loop_;
  ServeQueueSet serve_queue_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool draining_ = false;
  double drain_started_ = 0.0;
  DeadlineWheel::TimerId drain_timer_ = DeadlineWheel::kInvalidTimer;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  DaemonStats stats_;
  Histogram* latency_hist_ = nullptr;
};

}  // namespace p2pdt

#endif  // P2PDT_NET_DAEMON_H_
