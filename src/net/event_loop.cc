#include "net/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace p2pdt {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

EpollLoop::EpollLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  int pipe_fds[2] = {-1, -1};
  if (pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) == 0) {
    wake_read_ = pipe_fds[0];
    wake_write_ = pipe_fds[1];
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = wake_read_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_, &ev);
  }
}

EpollLoop::~EpollLoop() {
  if (wake_read_ >= 0) close(wake_read_);
  if (wake_write_ >= 0) close(wake_write_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status EpollLoop::Add(int fd, uint32_t events, FdHandler handler) {
  if (fd < 0) return Status::InvalidArgument("EpollLoop::Add: bad fd");
  struct epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(ADD): ") + strerror(errno));
  }
  handlers_[fd] = std::move(handler);
  return Status::OK();
}

Status EpollLoop::Modify(int fd, uint32_t events) {
  struct epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(MOD): ") + strerror(errno));
  }
  return Status::OK();
}

Status EpollLoop::Remove(int fd) {
  if (handlers_.erase(fd) == 0) {
    return Status::NotFound("EpollLoop::Remove: fd not watched");
  }
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return Status::IOError(std::string("epoll_ctl(DEL): ") + strerror(errno));
  }
  return Status::OK();
}

int EpollLoop::RunOnce(int max_wait_ms) {
  // Bound the wait by the next wheel deadline so timers fire on time even
  // when no socket traffic arrives (the slowloris case: silence is exactly
  // what must trigger the reaper).
  int timeout_ms = max_wait_ms;
  const double next = wheel_.NextDeadline();
  if (std::isfinite(next)) {
    const double until = std::max(next - Now(), 0.0) * 1e3;
    const int wheel_ms = static_cast<int>(until) + 1;
    if (timeout_ms < 0 || wheel_ms < timeout_ms) timeout_ms = wheel_ms;
  }

  struct epoll_event events[64];
  int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
  if (n < 0 && errno != EINTR) {
    P2PDT_LOG(Error) << "epoll_wait failed: " << strerror(errno);
    stopped_ = true;
    return 0;
  }
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_read_) {
      char drain[64];
      while (read(wake_read_, drain, sizeof(drain)) > 0) {
      }
      if (wakeup_handler_) wakeup_handler_();
      continue;
    }
    // The handler of an earlier event in this batch may have closed and
    // deregistered this fd; skip stale entries.
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;
    // Copy: the handler may Remove(fd) (erasing the map slot) mid-call.
    FdHandler handler = it->second;
    handler(events[i].events);
    ++dispatched;
  }
  wheel_.Advance(Now());
  return dispatched;
}

void EpollLoop::Run() {
  stopped_ = false;
  while (!stopped_) {
    RunOnce(/*max_wait_ms=*/-1);
  }
}

void EpollLoop::Wakeup() {
  if (wake_write_ < 0) return;
  const char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t rc = write(wake_write_, &byte, 1);
}

}  // namespace p2pdt
