#include "p2pdmt/experiment.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <numeric>

#include <memory>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "p2pdmt/evaluation.h"
#include "p2pdmt/run_report.h"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace p2pdt {

const char* AlgorithmTypeToString(AlgorithmType t) {
  switch (t) {
    case AlgorithmType::kCempar:
      return "cempar";
    case AlgorithmType::kPace:
      return "pace";
    case AlgorithmType::kCentralized:
      return "centralized";
    case AlgorithmType::kLocalOnly:
      return "local_only";
    case AlgorithmType::kModelAvg:
      return "model_avg";
  }
  return "unknown";
}

CorpusSplit SplitCorpus(const VectorizedCorpus& corpus, double train_fraction,
                        uint64_t seed) {
  CorpusSplit split;
  split.train.set_num_tags(corpus.dataset.num_tags());
  split.test.set_num_tags(corpus.dataset.num_tags());
  Rng rng(seed);
  std::vector<std::size_t> order(corpus.dataset.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  std::size_t n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(order.size()) + 0.5);
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::size_t idx = order[i];
    if (i < n_train) {
      split.train.Add(corpus.dataset[idx]);
      split.train_user.push_back(corpus.doc_user[idx]);
    } else {
      split.test.Add(corpus.dataset[idx]);
      split.test_user.push_back(corpus.doc_user[idx]);
    }
  }
  return split;
}

Result<std::unique_ptr<P2PClassifier>> MakeClassifier(
    Environment& env, const ExperimentOptions& options) {
  switch (options.algorithm) {
    case AlgorithmType::kCempar: {
      if (env.chord() == nullptr) {
        return Status::FailedPrecondition(
            "CEMPaR requires a DHT (Chord) overlay");
      }
      CemparOptions cempar = options.cempar;
      if (options.sim_shards != 0) cempar.sim_shards = options.sim_shards;
      return std::unique_ptr<P2PClassifier>(std::make_unique<Cempar>(
          env.sim(), env.net(), *env.chord(), cempar));
    }
    case AlgorithmType::kPace: {
      PaceOptions pace = options.pace;
      if (options.sim_shards != 0) pace.sim_shards = options.sim_shards;
      return std::unique_ptr<P2PClassifier>(std::make_unique<Pace>(
          env.sim(), env.net(), env.overlay(), pace));
    }
    case AlgorithmType::kCentralized:
      return std::unique_ptr<P2PClassifier>(
          std::make_unique<CentralizedClassifier>(env.sim(), env.net(),
                                                  options.centralized));
    case AlgorithmType::kLocalOnly:
      return std::unique_ptr<P2PClassifier>(
          std::make_unique<LocalOnlyClassifier>(env.sim(), env.net(),
                                                options.local_only));
    case AlgorithmType::kModelAvg:
      return std::unique_ptr<P2PClassifier>(
          std::make_unique<ModelAveragingClassifier>(
              env.sim(), env.net(), env.overlay(), options.model_avg));
  }
  return Status::InvalidArgument("unknown algorithm");
}

namespace {

struct StatsSnapshot {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t maintenance_messages = 0;
  uint64_t maintenance_bytes = 0;

  static StatsSnapshot Take(const NetworkStats& stats) {
    StatsSnapshot s;
    s.messages = stats.messages_sent();
    s.bytes = stats.bytes_sent();
    s.maintenance_messages =
        stats.messages_sent(MessageType::kOverlayMaintenance);
    s.maintenance_bytes = stats.bytes_sent(MessageType::kOverlayMaintenance);
    return s;
  }
};

/// Unique per-run scratch directory for auto-managed checkpoints; pid +
/// counter keep `ctest -j` processes and same-process sweeps apart.
std::string MakeCheckpointScratchDir(uint64_t seed) {
  static std::atomic<uint64_t> counter{0};
#ifdef _WIN32
  int pid = _getpid();
#else
  int pid = getpid();
#endif
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("p2pdt-ckpt-" + std::to_string(pid) + "-" + std::to_string(seed) +
       "-" + std::to_string(counter.fetch_add(1)));
  return dir.string();
}

/// Removes an auto-created scratch directory on every exit path.
struct ScratchDirGuard {
  std::string dir;
  ~ScratchDirGuard() {
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
};

/// Restores the process-wide ledger enable bit on every exit path.
struct LedgerGuard {
  bool active = false;
  bool prev = false;
  void Enable() {
    prev = CostLedger::SetEnabled(true);
    active = true;
  }
  ~LedgerGuard() {
    if (active) CostLedger::SetEnabled(prev);
  }
};

/// Flushes one phase's ledger delta into the metrics registry as counters
/// (`cost_ops{classifier,op,phase}` for scalar operation counts,
/// `wire_messages` / `wire_bytes{classifier,msg_type,phase}` for the
/// per-message-type wire accounting). Counters are additive, so the flush
/// joins the same serial==sharded bit-identity contract as the ledger.
void FlushCostDelta(MetricsRegistry* metrics, const std::string& classifier,
                    const char* phase, const CostCounts& delta) {
  if (metrics == nullptr) return;
  for (const auto& [op, value] : delta.Scalars()) {
    if (value == 0) continue;
    metrics
        ->GetCounter("cost_ops",
                     {{"classifier", classifier}, {"op", op}, {"phase", phase}})
        .Increment(value);
  }
  for (std::size_t t = 0; t < static_cast<std::size_t>(MessageType::kCount);
       ++t) {
    if (delta.wire_messages_by_type[t] == 0 &&
        delta.wire_bytes_by_type[t] == 0) {
      continue;
    }
    const char* msg_type = MessageTypeToString(static_cast<MessageType>(t));
    metrics
        ->GetCounter("wire_messages", {{"classifier", classifier},
                                       {"msg_type", msg_type},
                                       {"phase", phase}})
        .Increment(delta.wire_messages_by_type[t]);
    metrics
        ->GetCounter("wire_bytes", {{"classifier", classifier},
                                    {"msg_type", msg_type},
                                    {"phase", phase}})
        .Increment(delta.wire_bytes_by_type[t]);
  }
}

}  // namespace

Result<ExperimentResult> RunExperiment(const VectorizedCorpus& corpus,
                                       const ExperimentOptions& options) {
  Stopwatch wall;
  ExperimentResult result;
  result.algorithm = AlgorithmTypeToString(options.algorithm);
  result.overlay = OverlayTypeToString(options.env.overlay);
  result.churn = ChurnTypeToString(options.env.churn);
  result.num_peers = options.env.num_peers;

  // 1. Split and distribute.
  CorpusSplit split =
      SplitCorpus(corpus, options.train_fraction, options.seed);
  result.train_documents = split.train.size();
  // The training corpus becomes one shared immutable block; every peer gets
  // a flyweight index view into it (same RNG draws, hence the same
  // assignment, as the old copy-out DistributeData).
  auto train_corpus =
      std::make_shared<const MultiLabelDataset>(std::move(split.train));
  Result<std::vector<DatasetShard>> peers = DistributeDataShared(
      train_corpus, options.env.num_peers, options.distribution,
      &split.train_user);
  if (!peers.ok()) return peers.status();
  result.distribution =
      SummarizeDistribution(peers.value(), corpus.dataset.num_tags());

  // 2. Environment + algorithm.
  Result<std::unique_ptr<Environment>> env_result =
      Environment::Create(options.env);
  if (!env_result.ok()) return env_result.status();
  Environment& env = *env_result.value();
  Result<std::unique_ptr<P2PClassifier>> algo_result =
      MakeClassifier(env, options);
  if (!algo_result.ok()) return algo_result.status();
  P2PClassifier& algo = *algo_result.value();
  P2PDT_RETURN_IF_ERROR(
      algo.SetupShards(std::move(peers).value(), corpus.dataset.num_tags()));

  env.StartDynamics();
  if (options.warmup_sim_seconds > 0.0) {
    env.sim().RunUntil(env.sim().Now() + options.warmup_sim_seconds);
  }

  // Deterministic cost accounting: the ledger's thread-local counters are
  // cumulative for the process, so each phase is a Collect() delta taken at
  // pool quiesce points.
  LedgerGuard ledger;
  if (options.env.observe.cost_ledger) {
    ledger.Enable();
    result.cost_ledger_enabled = true;
  }

  // 3. Train.
  if (env.profiler() != nullptr) env.profiler()->SetPhase("train");
  CostCounts before_train_cost = CostLedger::Collect();
  StatsSnapshot before_train = StatsSnapshot::Take(env.net().stats());
  bool train_done = false;
  Status train_status = Status::OK();
  algo.Train([&](Status s) {
    train_status = s;
    train_done = true;
  });
  result.train_sim_seconds =
      env.RunUntilFlag(train_done, options.max_train_sim_seconds);
  if (!train_done) {
    return Status::Internal("training protocol did not quiesce in " +
                            std::to_string(options.max_train_sim_seconds) +
                            " simulated seconds");
  }
  P2PDT_RETURN_IF_ERROR(train_status);
  if (result.cost_ledger_enabled) {
    result.train_cost = CostLedger::Collect() - before_train_cost;
  }
  StatsSnapshot after_train = StatsSnapshot::Take(env.net().stats());
  result.train_messages = (after_train.messages - before_train.messages) -
                          (after_train.maintenance_messages -
                           before_train.maintenance_messages);
  result.train_bytes =
      (after_train.bytes - before_train.bytes) -
      (after_train.maintenance_bytes - before_train.maintenance_bytes);

  // 3b. Durability: checkpoint the trained peers, then recover every peer
  // that churns out and back during the post-training exposure window.
  std::unique_ptr<CheckpointManager> checkpoints;
  std::unique_ptr<RecoveryCoordinator> recovery;
  ScratchDirGuard scratch;
  if (options.recovery.enabled) {
    if (!algo.SupportsDurability()) {
      return Status::FailedPrecondition(
          std::string(AlgorithmTypeToString(options.algorithm)) +
          " does not support durable peer state");
    }
    std::string dir = options.recovery.checkpoint_dir;
    if (dir.empty()) {
      scratch.dir = MakeCheckpointScratchDir(options.seed);
      dir = scratch.dir;
    }
    checkpoints = std::make_unique<CheckpointManager>(dir);
    recovery = std::make_unique<RecoveryCoordinator>(
        env.sim(), env.net(), env.churn(), algo, *checkpoints,
        options.recovery);
    P2PDT_RETURN_IF_ERROR(recovery->CheckpointAll());
    recovery->Attach();
  }
  if (options.post_train_sim_seconds > 0.0) {
    bool never = false;
    env.RunUntilFlag(never, options.post_train_sim_seconds);
    // Recovery/resync traffic in this window is neither training nor
    // prediction cost; restart the prediction delta from here.
    after_train = StatsSnapshot::Take(env.net().stats());
  }

  // 4. Evaluate: sample test documents, predict from random online peers.
  if (env.profiler() != nullptr) env.profiler()->SetPhase("predict");
  CostCounts before_predict_cost = CostLedger::Collect();
  Rng eval_rng(options.seed ^ 0xE7A1);
  std::vector<std::size_t> test_idx(split.test.size());
  std::iota(test_idx.begin(), test_idx.end(), 0);
  eval_rng.Shuffle(test_idx);
  if (options.max_test_documents > 0 &&
      test_idx.size() > options.max_test_documents) {
    test_idx.resize(options.max_test_documents);
  }
  result.test_documents = test_idx.size();

  std::vector<std::vector<TagId>> truth(test_idx.size());
  std::vector<std::vector<TagId>> predicted(test_idx.size());
  std::size_t outstanding = test_idx.size();
  bool predict_done = (outstanding == 0);
  std::size_t failed = 0;
  std::size_t degraded = 0;

  // Sampled evaluation: with max_eval_peers set, requesters are drawn from
  // a deterministic subsample of the network instead of all of it (same
  // pool for every run/thread/shard count). Empty = legacy full-network
  // draw, with the RNG call sequence untouched.
  std::vector<std::size_t> eval_peers;
  if (options.max_eval_peers > 0 &&
      options.max_eval_peers < env.net().num_nodes()) {
    eval_peers = DeterministicSample(env.net().num_nodes(),
                                     options.max_eval_peers,
                                     options.seed ^ 0x5A3F);
  }
  auto pick_requester = [&]() -> NodeId {
    // Prefer an online peer; bounded retries keep this deterministic.
    if (!eval_peers.empty()) {
      for (int attempt = 0; attempt < 64; ++attempt) {
        NodeId n = static_cast<NodeId>(
            eval_peers[eval_rng.NextU64(eval_peers.size())]);
        if (env.net().IsOnline(n)) return n;
      }
      return static_cast<NodeId>(
          eval_peers[eval_rng.NextU64(eval_peers.size())]);
    }
    for (int attempt = 0; attempt < 64; ++attempt) {
      NodeId n = eval_rng.NextU64(env.net().num_nodes());
      if (env.net().IsOnline(n)) return n;
    }
    return eval_rng.NextU64(env.net().num_nodes());
  };

  for (std::size_t i = 0; i < test_idx.size(); ++i) {
    const MultiLabelExample& ex = split.test[test_idx[i]];
    truth[i] = ex.tags;
    NodeId requester = pick_requester();
    algo.Predict(requester, ex.x, [&, i](P2PPrediction p) {
      if (!p.success) ++failed;
      if (p.degraded) ++degraded;
      predicted[i] = std::move(p.tags);
      if (--outstanding == 0) predict_done = true;
    });
  }
  result.predict_sim_seconds =
      env.RunUntilFlag(predict_done, options.max_predict_sim_seconds);
  if (!predict_done) {
    return Status::Internal("prediction phase did not quiesce");
  }
  if (result.cost_ledger_enabled) {
    result.predict_cost = CostLedger::Collect() - before_predict_cost;
  }
  StatsSnapshot after_predict = StatsSnapshot::Take(env.net().stats());
  result.predict_messages =
      (after_predict.messages - after_train.messages) -
      (after_predict.maintenance_messages - after_train.maintenance_messages);
  result.predict_bytes = (after_predict.bytes - after_train.bytes) -
                         (after_predict.maintenance_bytes -
                          after_train.maintenance_bytes);
  result.maintenance_messages = after_predict.maintenance_messages;
  result.maintenance_bytes = after_predict.maintenance_bytes;
  result.failed_predictions = failed;
  result.degraded_predictions = degraded;

  const NetworkStats& stats = env.net().stats();
  result.delivery_rate = stats.delivery_rate();
  result.dropped_messages = stats.messages_dropped();
  result.injected_drops = stats.dropped(DropReason::kInjectedFault);
  result.retransmits = stats.retransmits();
  result.acks_received = stats.acks_received();
  result.give_ups = stats.give_ups();
  ReliableTransport* transport = nullptr;
  if (auto* pace = dynamic_cast<Pace*>(&algo)) {
    result.model_coverage = pace->ModelCoverage();
    transport = pace->transport();
  } else if (auto* cempar = dynamic_cast<Cempar*>(&algo)) {
    transport = cempar->transport();
  }
  if (transport != nullptr) {
    for (NodeId n = 0; n < env.net().num_nodes(); ++n) {
      if (transport->IsSuspected(n)) ++result.suspected_peers;
    }
  }
  const DefenseStats defense = algo.defense_stats();
  result.models_rejected = defense.models_rejected;
  result.votes_discarded = defense.votes_discarded;
  result.quarantined_pairs = defense.quarantined;
  result.trust_observations = defense.trust_observations;
  result.churn_failures = env.churn().num_failures();
  result.churn_rejoins = env.churn().num_rejoins();
  result.warm_rejoins = env.churn().num_warm_rejoins();
  result.cold_rejoins = env.churn().num_cold_rejoins();
  if (recovery != nullptr) {
    const RecoveryStats& rs = recovery->stats();
    result.corrupt_checkpoints = rs.corrupt_checkpoints;
    result.retrain_examples = rs.retrain_examples;
    result.checkpoint_bytes = rs.snapshot_bytes;
    result.mean_rejoin_latency_sec = rs.mean_rejoin_latency_sec();
    result.max_rejoin_latency_sec = rs.max_rejoin_latency_sec;
  }

  result.metrics =
      EvaluateMultiLabel(truth, predicted, corpus.dataset.num_tags());
  result.wall_seconds = wall.ElapsedSeconds();

  // 5. Observability artifacts. Ledger deltas flush into the registry
  // before the snapshot so cost counters ride every export (and the scale
  // determinism fingerprint) for free.
  if (result.cost_ledger_enabled) {
    FlushCostDelta(env.metrics(), result.algorithm, "train",
                   result.train_cost);
    FlushCostDelta(env.metrics(), result.algorithm, "predict",
                   result.predict_cost);
  }
  if (env.metrics() != nullptr) {
    result.observability = env.metrics()->Snapshot();
  }
  if (!options.metrics_path.empty()) {
    if (env.metrics() == nullptr) {
      return Status::InvalidArgument(
          "metrics_path set but env.observe.metrics is off");
    }
    P2PDT_RETURN_IF_ERROR(env.metrics()->WriteJson(options.metrics_path));
  }
  if (!options.trace_path.empty()) {
    if (env.tracer() == nullptr) {
      return Status::InvalidArgument(
          "trace_path set but env.observe.tracing is off");
    }
    P2PDT_RETURN_IF_ERROR(env.tracer()->WriteChromeTrace(options.trace_path));
  }
  if (!options.profile_path.empty()) {
    if (env.profiler() == nullptr) {
      return Status::InvalidArgument(
          "profile_path set but env.observe.profiling is off");
    }
    P2PDT_RETURN_IF_ERROR(
        env.profiler()->WriteCollapsed(options.profile_path));
  }
  if (!options.report_path.empty()) {
    P2PDT_RETURN_IF_ERROR(RunReport::Write(options.report_path, result,
                                           result.observability));
  }
  if (env.metrics() != nullptr || env.tracer() != nullptr) {
    LogStructured(
        LogLevel::kInfo, "observability",
        {{"algorithm", result.algorithm},
         {"metrics",
          std::to_string(env.metrics() ? env.metrics()->num_metrics() : 0)},
         {"spans",
          std::to_string(env.tracer() ? env.tracer()->num_spans() : 0)},
         {"report", options.report_path}});
  }
  return result;
}

std::string ExperimentResult::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%-12s peers=%-5zu overlay=%-12s churn=%-11s microF1=%.4f "
      "jaccard=%.4f train=%.2fMiB (%.1fKiB/peer) predict=%.2fMiB "
      "failed=%zu/%zu degraded=%zu deliv=%.3f retx=%llu",
      algorithm.c_str(), num_peers, overlay.c_str(), churn.c_str(),
      metrics.micro_f1, metrics.jaccard_accuracy,
      static_cast<double>(train_bytes) / (1024.0 * 1024.0),
      train_bytes_per_peer() / 1024.0,
      static_cast<double>(predict_bytes) / (1024.0 * 1024.0),
      failed_predictions, test_documents, degraded_predictions,
      delivery_rate, static_cast<unsigned long long>(retransmits));
  return buf;
}

}  // namespace p2pdt
