#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace p2pdt {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t DeriveSeed(uint64_t base, uint64_t key_a, uint64_t key_b) {
  uint64_t state = base;
  uint64_t mixed = SplitMix64(state);
  state ^= mixed + 0x9E3779B97F4A7C15ULL * key_a;
  mixed = SplitMix64(state);
  state ^= mixed + 0xBF58476D1CE4E5B9ULL * key_b;
  return SplitMix64(state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  // xoshiro256**
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextU64(uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full range
  return lo + static_cast<int64_t>(NextU64(span));
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  // Box–Muller; draws two uniforms per normal. u1 in (0, 1].
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u = 1.0 - NextDouble();  // (0, 1]
  return -mean * std::log(u);
}

double Rng::Pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = 1.0 - NextDouble();  // (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.Sample(*this);
}

double Rng::Gamma(double shape) {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape >= 1 (Marsaglia–Tsang trick).
    double u = NextDouble();
    while (u <= 0.0) u = NextDouble();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = NextDouble();
    if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::Dirichlet(std::size_t dim, double alpha) {
  assert(dim > 0 && alpha > 0.0);
  std::vector<double> out(dim);
  double sum = 0.0;
  for (auto& x : out) {
    x = Gamma(alpha);
    sum += x;
  }
  if (sum <= 0.0) {
    // Numerically degenerate draw: fall back to uniform.
    for (auto& x : out) x = 1.0 / static_cast<double>(dim);
    return out;
  }
  for (auto& x : out) x /= sum;
  return out;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return weights.size();
  double target = NextDouble() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating-point slack: return the last positive-weight index.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size();
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher–Yates: only the first k positions need randomizing.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(NextU64(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0x5851F42D4C957F2DULL); }

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  assert(n > 0 && s >= 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  // Binary search for the first CDF entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::Pmf(uint64_t k) const {
  assert(k < n_);
  if (k == 0) return cdf_[0];
  return cdf_[k] - cdf_[k - 1];
}

}  // namespace p2pdt
