#include "core/doc_tagger.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

// Tiny two-topic corpus with distinctive vocabulary.
const char* kCookingDocs[] = {
    "Simmer the garlic butter sauce with fresh basil and pasta tonight",
    "Roast the chicken with rosemary garlic and lemon butter glaze",
    "Knead the dough and bake crusty sourdough bread with flour",
    "Whisk eggs with cream for a fluffy omelette breakfast recipe",
};
const char* kNetworkDocs[] = {
    "Routing packets across the overlay network with latency bounds",
    "Distributed hash tables route lookup queries between peers",
    "Bandwidth and churn define peer network reliability metrics",
    "Gossip protocols broadcast updates across distributed peers",
};

DocTagger SeededTagger() {
  DocTagger tagger;
  for (const char* text : kCookingDocs) tagger.AddDocument("cook", text);
  for (const char* text : kNetworkDocs) tagger.AddDocument("net", text);
  for (DocId id = 0; id < 4; ++id) {
    EXPECT_TRUE(tagger.ManualTag(id, {"cooking"}).ok());
  }
  for (DocId id = 4; id < 8; ++id) {
    EXPECT_TRUE(tagger.ManualTag(id, {"networking"}).ok());
  }
  return tagger;
}

TEST(DocTaggerTest, AddAndGetDocuments) {
  DocTagger tagger;
  DocId id = tagger.AddDocument("title", "Some document text here");
  EXPECT_EQ(id, 0u);
  Result<const Document*> doc = tagger.GetDocument(id);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->title, "title");
  EXPECT_FALSE((*doc)->vector.empty());
  EXPECT_FALSE(tagger.GetDocument(99).ok());
}

TEST(DocTaggerTest, ManualTagValidation) {
  DocTagger tagger;
  DocId id = tagger.AddDocument("t", "words in here");
  EXPECT_EQ(tagger.ManualTag(99, {"x"}).code(), StatusCode::kNotFound);
  EXPECT_EQ(tagger.ManualTag(id, {}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(tagger.ManualTag(id, {""}).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(tagger.ManualTag(id, {"valid"}).ok());
  EXPECT_EQ(tagger.library().num_documents(), 1u);
}

TEST(DocTaggerTest, UntaggedDocumentsListed) {
  DocTagger tagger = SeededTagger();
  DocId extra = tagger.AddDocument("x", "garlic pasta sauce dinner");
  std::vector<DocId> untagged = tagger.UntaggedDocuments();
  EXPECT_EQ(untagged, (std::vector<DocId>{extra}));
}

TEST(DocTaggerTest, TrainRequiresTaggedDocs) {
  DocTagger tagger;
  tagger.AddDocument("t", "words");
  EXPECT_EQ(tagger.TrainLocal().code(), StatusCode::kFailedPrecondition);
}

TEST(DocTaggerTest, SuggestRequiresModel) {
  DocTagger tagger;
  DocId id = tagger.AddDocument("t", "words");
  EXPECT_EQ(tagger.SuggestTags(id).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(tagger.AutoTag(id).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DocTaggerTest, TrainSuggestAndAutoTag) {
  DocTagger tagger = SeededTagger();
  ASSERT_TRUE(tagger.TrainLocal().ok());
  EXPECT_TRUE(tagger.has_local_model());

  DocId cooking_doc =
      tagger.AddDocument("new", "Garlic butter sauce with pasta and basil");
  Result<std::vector<TagSuggestion>> suggestions =
      tagger.SuggestTags(cooking_doc);
  ASSERT_TRUE(suggestions.ok());
  // Suggestions are alphabetical; find the confident one.
  double cooking_conf = 0, networking_conf = 0;
  for (const TagSuggestion& s : suggestions.value()) {
    if (s.tag == "cooking") cooking_conf = s.confidence;
    if (s.tag == "networking") networking_conf = s.confidence;
  }
  EXPECT_GT(cooking_conf, networking_conf);
  EXPECT_GT(cooking_conf, 0.5);

  Result<std::vector<std::string>> assigned = tagger.AutoTag(cooking_doc);
  ASSERT_TRUE(assigned.ok());
  EXPECT_EQ(assigned.value(), (std::vector<std::string>{"cooking"}));
  const Document& doc = *tagger.GetDocument(cooking_doc).value();
  ASSERT_EQ(doc.tags.size(), 1u);
  EXPECT_EQ(doc.tags[0].source, TagSource::kAuto);
}

TEST(DocTaggerTest, ConfidenceSliderFiltersSuggestions) {
  DocTagger tagger = SeededTagger();
  ASSERT_TRUE(tagger.TrainLocal().ok());
  DocId id = tagger.AddDocument("n", "routing lookup peers overlay");
  std::size_t all =
      tagger.SuggestTags(id, 0.0).value().size();
  std::size_t confident =
      tagger.SuggestTags(id, 0.6).value().size();
  EXPECT_GE(all, confident);
  EXPECT_GE(confident, 1u);
}

TEST(DocTaggerTest, AutoTagAllTagsEverythingTaggable) {
  DocTagger tagger = SeededTagger();
  ASSERT_TRUE(tagger.TrainLocal().ok());
  tagger.AddDocument("a", "bake bread dough with flour and butter");
  tagger.AddDocument("b", "peers route packets across the network");
  Result<std::size_t> tagged = tagger.AutoTagAll();
  ASSERT_TRUE(tagged.ok());
  EXPECT_EQ(tagged.value(), 2u);
  EXPECT_TRUE(tagger.UntaggedDocuments().empty());
}

TEST(DocTaggerTest, AutoTagPreservesManualTags) {
  DocTagger tagger = SeededTagger();
  ASSERT_TRUE(tagger.TrainLocal().ok());
  DocId id = tagger.AddDocument("m", "garlic pasta sauce");
  ASSERT_TRUE(tagger.ManualTag(id, {"keepme"}).ok());
  ASSERT_TRUE(tagger.AutoTag(id).ok());
  const Document& doc = *tagger.GetDocument(id).value();
  EXPECT_TRUE(doc.HasTag("keepme"));
}

TEST(DocTaggerTest, RefineUpdatesModelAndTags) {
  DocTagger tagger = SeededTagger();
  ASSERT_TRUE(tagger.TrainLocal().ok());
  DocId id = tagger.AddDocument(
      "fusion", "Garlic pasta recipes shared across peer networks");
  ASSERT_TRUE(tagger.AutoTag(id).ok());

  // The user corrects the tags; repeated corrections shift suggestions.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(tagger.Refine(id, {"networking"}).ok());
  }
  const Document& doc = *tagger.GetDocument(id).value();
  EXPECT_EQ(doc.TagNames(), (std::vector<std::string>{"networking"}));

  double cooking_conf = 0, networking_conf = 0;
  Result<std::vector<TagSuggestion>> refined_suggestions =
      tagger.SuggestTags(id);
  ASSERT_TRUE(refined_suggestions.ok());
  for (const TagSuggestion& s : refined_suggestions.value()) {
    if (s.tag == "cooking") cooking_conf = s.confidence;
    if (s.tag == "networking") networking_conf = s.confidence;
  }
  EXPECT_GT(networking_conf, cooking_conf);
}

TEST(DocTaggerTest, RefineRegistersNewTags) {
  DocTagger tagger = SeededTagger();
  DocId id = 0;
  ASSERT_TRUE(tagger.Refine(id, {"brand-new-tag"}).ok());
  EXPECT_NE(std::find(tagger.tag_names().begin(), tagger.tag_names().end(),
                      "brand-new-tag"),
            tagger.tag_names().end());
}

TEST(DocTaggerTest, GlobalScorerDrivesSuggestions) {
  DocTagger tagger;
  DocId id = tagger.AddDocument("t", "whatever words inside");
  // Global model says: tag "remote" positive, "other" negative.
  tagger.AttachGlobalScorer(
      [](const SparseVector&) {
        return std::vector<double>{2.0, -2.0};
      },
      {"remote", "other"});
  EXPECT_TRUE(tagger.has_global_scorer());
  Result<std::vector<std::string>> assigned = tagger.AutoTag(id);
  ASSERT_TRUE(assigned.ok());
  EXPECT_EQ(assigned.value(), (std::vector<std::string>{"remote"}));
}

TEST(DocTaggerTest, GlobalAndLocalScoresBlend) {
  DocTaggerOptions options;
  options.global_weight = 0.5;
  DocTagger tagger(options);
  for (const char* text : kCookingDocs) tagger.AddDocument("c", text);
  for (DocId id = 0; id < 4; ++id) {
    ASSERT_TRUE(tagger.ManualTag(id, {"cooking"}).ok());
  }
  tagger.AddDocument("other", "routing network peers");  // negative example
  ASSERT_TRUE(tagger.ManualTag(4, {"networking"}).ok());
  ASSERT_TRUE(tagger.TrainLocal().ok());

  // Global scorer contradicts the local model on "cooking".
  tagger.AttachGlobalScorer(
      [](const SparseVector&) {
        return std::vector<double>{-4.0};
      },
      {"cooking"});
  DocId id = tagger.AddDocument("q", "garlic butter pasta");
  double cooking_conf = 0;
  Result<std::vector<TagSuggestion>> blended = tagger.SuggestTags(id);
  ASSERT_TRUE(blended.ok());
  for (const TagSuggestion& s : blended.value()) {
    if (s.tag == "cooking") cooking_conf = s.confidence;
  }
  // The blended score is dragged below pure-local confidence.
  EXPECT_LT(cooking_conf, 0.5);
}

TEST(DocTaggerTest, TagCloudFromLibrary) {
  DocTagger tagger = SeededTagger();
  DocId id = tagger.AddDocument("both", "garlic pasta routing peers");
  ASSERT_TRUE(tagger.ManualTag(id, {"cooking", "networking"}).ok());
  TagCloud cloud = tagger.BuildTagCloud();
  ASSERT_EQ(cloud.nodes().size(), 2u);
  ASSERT_EQ(cloud.edges().size(), 1u);
  EXPECT_EQ(cloud.edges()[0].weight, 1u);
}

TEST(DocTaggerTest, SensitiveWordsExcludedFromVectors) {
  DocTaggerOptions options;
  options.preprocessor.sensitive_words = {"secretword"};
  DocTagger tagger(options);
  DocId with = tagger.AddDocument("a", "public content secretword");
  DocId without = tagger.AddDocument("b", "public content");
  EXPECT_EQ(tagger.GetDocument(with).value()->vector,
            tagger.GetDocument(without).value()->vector);
}

}  // namespace
}  // namespace p2pdt
