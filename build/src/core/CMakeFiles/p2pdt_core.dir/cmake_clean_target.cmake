file(REMOVE_RECURSE
  "libp2pdt_core.a"
)
