#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace p2pdt {
namespace {

TEST(TokenizerTest, SplitsOnPunctuationAndWhitespace) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("Hello, world! foo-bar"),
            (std::vector<std::string>{"hello", "world", "foo", "bar"}));
}

TEST(TokenizerTest, LowercasesByDefault) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("MiXeD CaSe"),
            (std::vector<std::string>{"mixed", "case"}));
}

TEST(TokenizerTest, PreservesCaseWhenDisabled) {
  TokenizerOptions opt;
  opt.lowercase = false;
  Tokenizer t(opt);
  EXPECT_EQ(t.Tokenize("MiXeD"), (std::vector<std::string>{"MiXeD"}));
}

TEST(TokenizerTest, DropsShortTokens) {
  Tokenizer t;  // min length 2
  EXPECT_EQ(t.Tokenize("a to x of it"),
            (std::vector<std::string>{"to", "of", "it"}));
}

TEST(TokenizerTest, DropsOverlongTokens) {
  TokenizerOptions opt;
  opt.max_token_length = 5;
  Tokenizer t(opt);
  EXPECT_EQ(t.Tokenize("short toolongtoken ok"),
            (std::vector<std::string>{"short", "ok"}));
}

TEST(TokenizerTest, StripsIntraWordApostrophes) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("don't can't"),
            (std::vector<std::string>{"dont", "cant"}));
}

TEST(TokenizerTest, KeepsAlphanumericByDefault) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("win32 b2b 2010"),
            (std::vector<std::string>{"win32", "b2b", "2010"}));
}

TEST(TokenizerTest, DropsDigitTokensWhenDisabled) {
  TokenizerOptions opt;
  opt.keep_alphanumeric = false;
  Tokenizer t(opt);
  EXPECT_EQ(t.Tokenize("win32 hello 2010"),
            (std::vector<std::string>{"hello"}));
}

TEST(TokenizerTest, EmptyAndPurePunctuation) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("... !!! ---").empty());
}

TEST(TokenizerTest, TrailingTokenFlushed) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("end"), (std::vector<std::string>{"end"}));
}

TEST(TokenizerTest, NonAsciiBytesActAsSeparators) {
  Tokenizer t;
  // UTF-8 multibyte sequences are treated as separators (ASCII pipeline).
  std::vector<std::string> tokens = t.Tokenize("caf\xC3\xA9 shop");
  EXPECT_EQ(tokens, (std::vector<std::string>{"caf", "shop"}));
}

}  // namespace
}  // namespace p2pdt
